//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace's property tests.
//!
//! The build container cannot reach crates.io, so the real `proptest`
//! cannot be fetched. This shim keeps every `proptest!` test compiling
//! and running: strategies generate deterministic pseudo-random cases
//! (seeded per test name), `prop_assert*` report the failing case, and
//! `prop_assume!` rejects a case without failing the test.
//!
//! Deliberate simplifications versus upstream: no shrinking (a failing
//! case is reported as generated), no persisted regression files (the
//! seed is fixed, so runs are already reproducible), and only the
//! strategy combinators this repo exercises — ranges, tuples,
//! `collection::vec`, `any`, `sample::{select, Index}` and `Just`.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Items most tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut rng,
                            );
                        )+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}/{}: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!(
                        "assertion failed: {} ({})",
                        stringify!($cond),
                        format!($($fmt)+)
                    ),
                ),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("{:?} != {:?}", left, right),
                ),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("{:?} != {:?} ({})", left, right, format!($($fmt)+)),
                ),
            );
        }
    }};
}

/// Fails the current case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("{:?} == {:?}", left, right),
                ),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("{:?} == {:?} ({})", left, right, format!($($fmt)+)),
                ),
            );
        }
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
