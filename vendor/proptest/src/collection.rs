//! Collection strategies (subset: `collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive bound on generated collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is uniform over the size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = vec(0u8..10, 3..7);
        let mut rng = TestRng::from_name("vec");
        let mut seen = [false; 7];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|x| *x < 10));
        }
        assert!(seen[3] && seen[6], "both length extremes reachable");
    }
}
