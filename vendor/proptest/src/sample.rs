//! Sampling strategies (subset: `select` and `Index`).

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly among a fixed set of options.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Picks one of `options` per case.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

/// A positional sample: resolves to an index once a collection size is
/// known, like upstream `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this sample onto `0..size`; `size` must be nonzero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "cannot index an empty collection");
        ((self.0 as u128 * size as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn select_only_yields_options() {
        let s = select(vec![4u8, 8, 16]);
        let mut rng = TestRng::from_name("select");
        for _ in 0..100 {
            assert!([4u8, 8, 16].contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn index_is_always_in_range() {
        let mut rng = TestRng::from_name("index");
        for size in [1usize, 2, 7, 1000] {
            for _ in 0..100 {
                let i = any::<Index>().generate(&mut rng);
                assert!(i.index(size) < size);
            }
        }
    }
}
