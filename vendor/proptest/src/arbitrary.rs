//! `any::<T>()` over a small set of [`Arbitrary`] types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
