//! The [`Strategy`] trait and the range/tuple/constant strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Produces one value per generated case.
///
/// Unlike upstream there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start
                    .wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span =
                    (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (1usize..12, -2.0f32..2.0, 0u64..=5).generate(&mut rng);
            assert!((1..12).contains(&v.0));
            assert!((-2.0..2.0).contains(&v.1));
            assert!(v.2 <= 5);
        }
    }

    #[test]
    fn just_repeats_its_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }
}
