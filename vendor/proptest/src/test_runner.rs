//! Case scheduling: configuration, RNG and the per-case error type.

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the case; it is skipped, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the whole suite fast while
        // still sweeping each strategy well.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name, so
/// every run of a given test explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}
