//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benchmarks.
//!
//! The build container cannot reach crates.io. This shim keeps every
//! bench target compiling and produces real (if statistically simple)
//! measurements: each benchmark is warmed up, then timed over an
//! adaptively chosen iteration count, and the median per-iteration time
//! is printed. No HTML reports, outlier analysis or comparison state.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form, scoped by the enclosing group.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one closure over many iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    median_ns: f64,
}

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    /// Runs `f` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to warm caches and pick an iteration count.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (MEASURE_BUDGET.as_nanos() / 5 / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / f64::from(per_sample)
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / median_ns * 1e9 / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {median_ns:>14.1} ns/iter{rate}");
}

/// A named set of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput recorded for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.median_ns,
            self.throughput,
        );
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.median_ns,
            self.throughput,
        );
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single named closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, b.median_ns, None);
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
