//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: `StdRng::seed_from_u64`, `Rng::gen_range` over integer and
//! float ranges, and `Rng::gen_bool`.
//!
//! The build container has no access to crates.io, so the real `rand`
//! cannot be fetched; this shim keeps the same call sites compiling with
//! a deterministic, decent-quality generator (SplitMix64). Streams are
//! reproducible for a given seed but intentionally *not* identical to
//! upstream `rand`'s — callers in this repo only rely on seeded
//! determinism and uniformity, never on exact upstream streams.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface (a subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (a subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface (a subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 explicit mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNGs (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Pre-mix so that small consecutive seeds do not yield
                // correlated first draws.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn floats_fill_the_range_uniformly() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
