//! Dynamic tensor shapes.

use std::fmt;

/// A dynamically-ranked tensor shape.
///
/// The Cambricon-S paper works with 2-D fully-connected weight matrices
/// `(N_in, N_out)` and 4-D convolutional weight tensors
/// `(N_fin, N_fout, K_x, K_y)`, so convenience constructors for those ranks
/// are provided.
///
/// # Example
///
/// ```
/// use cs_tensor::Shape;
///
/// let s = Shape::d4(3, 8, 5, 5);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.len(), 3 * 8 * 5 * 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// A rank-1 shape.
    pub fn d1(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape `(rows, cols)`.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// A rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape(vec![a, b, c])
    }

    /// A rank-4 shape, e.g. a convolution weight `(n_fin, n_fout, kx, ky)`.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Shape(vec![a, b, c, d])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all dimensions).
    ///
    /// An empty (rank-0) shape has one element, matching the scalar
    /// convention.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` when the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// All dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use cs_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx` has the wrong rank or any
    /// coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(idx[i] < self.0[i], "index out of bounds");
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        assert_eq!(Shape::d1(5).len(), 5);
        assert_eq!(Shape::d2(3, 4).len(), 12);
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::d4(2, 3, 4, 5).rank(), 4);
        assert_eq!(Shape::new(vec![]).len(), 1);
    }

    #[test]
    fn offsets_are_row_major() {
        let s = Shape::d2(3, 4);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 3]), 3);
        assert_eq!(s.offset(&[1, 0]), 4);
        assert_eq!(s.offset(&[2, 3]), 11);

        let s4 = Shape::d4(2, 3, 4, 5);
        assert_eq!(s4.offset(&[0, 0, 0, 1]), 1);
        assert_eq!(s4.offset(&[0, 0, 1, 0]), 5);
        assert_eq!(s4.offset(&[0, 1, 0, 0]), 20);
        assert_eq!(s4.offset(&[1, 0, 0, 0]), 60);
    }

    #[test]
    fn strides_match_offsets() {
        let s = Shape::d3(2, 3, 4);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(
                        s.offset(&[i, j, k]),
                        i * strides[0] + j * strides[1] + k * strides[2]
                    );
                }
            }
        }
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::d2(3, 4).to_string(), "(3, 4)");
        assert_eq!(Shape::d1(7).to_string(), "(7)");
    }

    #[test]
    fn zero_dim_shape_is_empty() {
        assert!(Shape::d2(0, 4).is_empty());
        assert!(!Shape::d2(1, 4).is_empty());
    }
}
