//! The dense tensor type.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::TensorError;
use crate::shape::Shape;

/// A dense, row-major tensor of `f32` values.
///
/// This is the reference data container for the whole workspace: network
/// weights, activations and the inputs fed to the accelerator simulators are
/// all `Tensor`s. Sparse/compressed representations live in `cs-compress`
/// and convert to/from dense `Tensor`s.
///
/// # Example
///
/// ```
/// use cs_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::d2(2, 2));
/// t[&[0, 1][..]] = 3.5;
/// assert_eq!(t.get(&[0, 1]), 3.5);
/// assert_eq!(t.as_slice(), &[0.0, 3.5, 0.0, 0.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from existing row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` does not
    /// equal `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds
    /// (debug builds; release builds panic on the final bounds check).
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::get`].
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts
    /// differ.
    pub fn reshape(self, shape: Shape) -> Result<Self, TensorError> {
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Number of elements equal to exactly `0.0`.
    ///
    /// Dynamic neuron sparsity in the paper is defined by exact zeros
    /// produced by pruning or the ReLU activation, so exact comparison is
    /// intended here.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Fraction of non-zero elements, the paper's notion of "sparsity"
    /// (ratio of *remaining* values to total values).
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.count_zeros() as f64 / self.data.len() as f64
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:?}, ... ; {} elements]",
                &self.data[..8],
                self.data.len()
            )
        }
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;

    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[self.shape.offset(idx)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|v| *v == 0.0));
        let f = Tensor::full(Shape::d1(4), 2.5);
        assert!(f.as_slice().iter().all(|v| *v == 2.5));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::d3(2, 3, 4));
        t.set(&[1, 2, 3], 9.0);
        assert_eq!(t.get(&[1, 2, 3]), 9.0);
        assert_eq!(t.as_slice()[12 + 2 * 4 + 3], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape(Shape::d1(6)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape::d2(7, 1)).is_err());
    }

    #[test]
    fn density_counts_exact_zeros() {
        let t = Tensor::from_vec(Shape::d1(4), vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(t.count_zeros(), 2);
        assert!((t.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_and_max_abs() {
        let t = Tensor::from_vec(Shape::d1(3), vec![-3.0, 1.0, 2.0]).unwrap();
        assert_eq!(t.max_abs(), 3.0);
        let relu = t.map(|v| v.max(0.0));
        assert_eq!(relu.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn index_operators() {
        let mut t = Tensor::zeros(Shape::d2(2, 2));
        t[&[1, 1][..]] = 7.0;
        assert_eq!(t[&[1, 1][..]], 7.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(Shape::d2(8, 8));
        assert!(!format!("{t:?}").is_empty());
    }
}
