//! Error type for tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Error returned by fallible tensor constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count of the provided data does not match the shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have shapes that the operation cannot combine.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
        /// Name of the failed operation.
        op: &'static str,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Rank of the provided tensor.
        actual: usize,
        /// Name of the failed operation.
        op: &'static str,
    },
    /// A convolution/pooling geometry is invalid (e.g. kernel larger than
    /// the padded input, or zero stride).
    InvalidGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left} vs {right}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: Shape::d2(2, 3),
                right: Shape::d2(4, 5),
                op: "matmul",
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 4,
                op: "matmul",
            },
            TensorError::InvalidGeometry("zero stride".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(char::is_numeric));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
