//! Dense reference kernels: matmul, im2col convolution, pooling.
//!
//! These are deliberately straightforward implementations; they serve as
//! the functional ground truth that the accelerator simulators are checked
//! against, and as the compute engine for the small trainable models used
//! in the accuracy experiments.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Kernel height (`K_x` in the paper).
    pub kx: usize,
    /// Kernel width (`K_y` in the paper).
    pub ky: usize,
    /// Vertical stride.
    pub stride_x: usize,
    /// Horizontal stride.
    pub stride_y: usize,
    /// Symmetric zero padding on height.
    pub pad_x: usize,
    /// Symmetric zero padding on width.
    pub pad_y: usize,
}

impl Conv2dGeometry {
    /// A square kernel with the given size, stride and padding.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        Conv2dGeometry {
            kx: k,
            ky: k,
            stride_x: stride,
            stride_y: stride,
            pad_x: pad,
            pad_y: pad,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the stride is zero or
    /// the padded input is smaller than the kernel.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        if self.stride_x == 0 || self.stride_y == 0 {
            return Err(TensorError::InvalidGeometry("zero stride".into()));
        }
        let ph = h + 2 * self.pad_x;
        let pw = w + 2 * self.pad_y;
        if ph < self.kx || pw < self.ky {
            return Err(TensorError::InvalidGeometry(format!(
                "padded input ({ph}x{pw}) smaller than kernel ({}x{})",
                self.kx, self.ky
            )));
        }
        Ok((
            (ph - self.kx) / self.stride_x + 1,
            (pw - self.ky) / self.stride_y + 1,
        ))
    }
}

/// Dense matrix multiplication `C = A (m×k) · B (k×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D operands and
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cs_tensor::{ops, Shape, Tensor};
/// # fn main() -> Result<(), cs_tensor::TensorError> {
/// let a = Tensor::from_vec(Shape::d2(1, 2), vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(Shape::d2(2, 1), vec![3.0, 4.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.as_slice(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = matmul_dims(a, b)?;
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for (i, orow) in out.chunks_mut(n).enumerate() {
        matmul_row(&av[i * k..(i + 1) * k], bv, orow);
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// Parallel dense matrix multiplication, bit-identical to [`matmul`]:
/// output rows are independent, so each pool task computes a disjoint
/// row range with exactly the serial kernel.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_pooled(
    a: &Tensor,
    b: &Tensor,
    pool: &cs_parallel::ThreadPool,
) -> Result<Tensor, TensorError> {
    let (m, k, n) = matmul_dims(a, b)?;
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    let rows_per = pool.default_chunk(m);
    pool.parallel_chunks_mut(&mut out, rows_per * n, |ci, window| {
        let row0 = ci * rows_per;
        for (ri, orow) in window.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            matmul_row(&av[i * k..(i + 1) * k], bv, orow);
        }
    });
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// One output row of the dense kernel: `orow += arow · B`, accumulating
/// over the inner dimension in ascending order. Deliberately *truly*
/// dense — every term contributes, so non-finite operands propagate the
/// way IEEE arithmetic dictates (`0.0 * NaN = NaN`). Zero-skipping is
/// the sparse kernels' job, where skipped terms are structural zeros on
/// finite inputs and therefore bit-neutral.
fn matmul_row(arow: &[f32], bv: &[f32], orow: &mut [f32]) {
    let n = orow.len();
    for (p, &aip) in arow.iter().enumerate() {
        let brow = &bv[p * n..(p + 1) * n];
        for (o, &bpj) in orow.iter_mut().zip(brow) {
            *o += aip * bpj;
        }
    }
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.shape().rank(),
            op: "matmul",
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.shape().rank(),
            op: "matmul",
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
            op: "matmul",
        });
    }
    Ok((m, k, n))
}

/// Transposes a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.shape().rank(),
            op: "transpose",
        });
    }
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    let av = a.as_slice();
    Ok(Tensor::from_fn(Shape::d2(n, m), |i| {
        let r = i / m;
        let c = i % m;
        av[c * n + r]
    }))
}

/// Element-wise addition.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
            op: "add",
        });
    }
    Ok(Tensor::from_fn(a.shape().clone(), |i| {
        a.as_slice()[i] + b.as_slice()[i]
    }))
}

/// Lowers convolution input windows into a matrix (the classic im2col).
///
/// The input is `(c, h, w)`; the output matrix has one row per output
/// spatial position and `c * kx * ky` columns, so that convolution becomes
/// `im2col(x) · W` with `W` of shape `(c*kx*ky, n_fout)`.
///
/// # Errors
///
/// Propagates geometry errors from [`Conv2dGeometry::output_size`], and
/// returns [`TensorError::RankMismatch`] for a non-3-D input.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
            op: "im2col",
        });
    }
    let (c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let (oh, ow) = geom.output_size(h, w)?;
    let cols = c * geom.kx * geom.ky;
    let mut out = vec![0.0f32; oh * ow * cols];
    let data = input.as_slice();
    for (row, orow) in out.chunks_mut(cols).enumerate() {
        im2col_row(data, c, h, w, geom, row, ow, orow);
    }
    Tensor::from_vec(Shape::d2(oh * ow, cols), out)
}

/// Parallel [`im2col`], bit-identical to the serial version: each output
/// row depends only on the input, so rows are filled by disjoint tasks.
///
/// # Errors
///
/// Same conditions as [`im2col`].
pub fn im2col_pooled(
    input: &Tensor,
    geom: &Conv2dGeometry,
    pool: &cs_parallel::ThreadPool,
) -> Result<Tensor, TensorError> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
            op: "im2col",
        });
    }
    let (c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let (oh, ow) = geom.output_size(h, w)?;
    let cols = c * geom.kx * geom.ky;
    let mut out = vec![0.0f32; oh * ow * cols];
    let data = input.as_slice();
    let rows_per = pool.default_chunk(oh * ow);
    pool.parallel_chunks_mut(&mut out, rows_per * cols, |ci, window| {
        let row0 = ci * rows_per;
        for (ri, orow) in window.chunks_mut(cols).enumerate() {
            im2col_row(data, c, h, w, geom, row0 + ri, ow, orow);
        }
    });
    Tensor::from_vec(Shape::d2(oh * ow, cols), out)
}

/// Fills one im2col output row (one output spatial position).
#[allow(clippy::too_many_arguments)]
fn im2col_row(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: &Conv2dGeometry,
    row: usize,
    ow: usize,
    orow: &mut [f32],
) {
    let oy = row / ow;
    let ox = row % ow;
    let base_x = (oy * geom.stride_x) as isize - geom.pad_x as isize;
    let base_y = (ox * geom.stride_y) as isize - geom.pad_y as isize;
    for ci in 0..c {
        for kx in 0..geom.kx {
            let ix = base_x + kx as isize;
            for ky in 0..geom.ky {
                let iy = base_y + ky as isize;
                let col = (ci * geom.kx + kx) * geom.ky + ky;
                let v = if ix >= 0 && iy >= 0 && (ix as usize) < h && (iy as usize) < w {
                    data[(ci * h + ix as usize) * w + iy as usize]
                } else {
                    0.0
                };
                orow[col] = v;
            }
        }
    }
}

/// Dense 2-D convolution over a `(c, h, w)` input with weights
/// `(n_fin=c, n_fout, kx, ky)`, producing `(n_fout, oh, ow)`.
///
/// # Errors
///
/// Returns shape/geometry errors when the operands are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    geom: &Conv2dGeometry,
) -> Result<Tensor, TensorError> {
    conv2d_impl(input, weights, bias, geom, None)
}

/// Parallel [`conv2d`], bit-identical to the serial version: the im2col
/// lowering and the matmul both parallelise over disjoint output rows.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_pooled(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    geom: &Conv2dGeometry,
    pool: &cs_parallel::ThreadPool,
) -> Result<Tensor, TensorError> {
    conv2d_impl(input, weights, bias, geom, Some(pool))
}

fn conv2d_impl(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    geom: &Conv2dGeometry,
    pool: Option<&cs_parallel::ThreadPool>,
) -> Result<Tensor, TensorError> {
    if weights.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weights.shape().rank(),
            op: "conv2d",
        });
    }
    let (n_fin, n_fout, kx, ky) = (
        weights.shape().dim(0),
        weights.shape().dim(1),
        weights.shape().dim(2),
        weights.shape().dim(3),
    );
    if input.shape().rank() != 3 || input.shape().dim(0) != n_fin {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weights.shape().clone(),
            op: "conv2d",
        });
    }
    if kx != geom.kx || ky != geom.ky {
        return Err(TensorError::InvalidGeometry(format!(
            "weight kernel ({kx}x{ky}) disagrees with geometry ({}x{})",
            geom.kx, geom.ky
        )));
    }
    let (h, w) = (input.shape().dim(1), input.shape().dim(2));
    let (oh, ow) = geom.output_size(h, w)?;

    // Lower to matmul: (oh*ow, c*kx*ky) x (c*kx*ky, n_fout).
    let cols = match pool {
        Some(p) => im2col_pooled(input, geom, p)?,
        None => im2col(input, geom)?,
    };
    let wmat = Tensor::from_fn(Shape::d2(n_fin * kx * ky, n_fout), |i| {
        let row = i / n_fout;
        let fo = i % n_fout;
        let fi = row / (kx * ky);
        let rem = row % (kx * ky);
        weights.get(&[fi, fo, rem / ky, rem % ky])
    });
    let prod = match pool {
        Some(p) => matmul_pooled(&cols, &wmat, p)?,
        None => matmul(&cols, &wmat)?,
    };
    // Transpose (oh*ow, n_fout) -> (n_fout, oh, ow), adding bias.
    let pv = prod.as_slice();
    let out = Tensor::from_fn(Shape::d3(n_fout, oh, ow), |i| {
        let fo = i / (oh * ow);
        let pos = i % (oh * ow);
        let b = bias.map_or(0.0, |bs| bs[fo]);
        pv[pos * n_fout + fo] + b
    });
    Ok(out)
}

/// Max pooling over a `(c, h, w)` input.
///
/// # Errors
///
/// Returns geometry errors for invalid windows.
pub fn max_pool2d(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    pool2d(input, geom, true)
}

/// Average pooling over a `(c, h, w)` input.
///
/// # Errors
///
/// Returns geometry errors for invalid windows.
pub fn avg_pool2d(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    pool2d(input, geom, false)
}

fn pool2d(input: &Tensor, geom: &Conv2dGeometry, take_max: bool) -> Result<Tensor, TensorError> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
            op: "pool2d",
        });
    }
    let (c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let (oh, ow) = geom.output_size(h, w)?;
    let data = input.as_slice();
    let out = Tensor::from_fn(Shape::d3(c, oh, ow), |i| {
        let ci = i / (oh * ow);
        let oy = (i / ow) % oh;
        let ox = i % ow;
        let mut acc = if take_max { f32::NEG_INFINITY } else { 0.0 };
        let mut count = 0usize;
        for kx in 0..geom.kx {
            let ix = (oy * geom.stride_x + kx) as isize - geom.pad_x as isize;
            for ky in 0..geom.ky {
                let iy = (ox * geom.stride_y + ky) as isize - geom.pad_y as isize;
                if ix >= 0 && iy >= 0 && (ix as usize) < h && (iy as usize) < w {
                    let v = data[(ci * h + ix as usize) * w + iy as usize];
                    if take_max {
                        acc = acc.max(v);
                    } else {
                        acc += v;
                    }
                    count += 1;
                }
            }
        }
        if take_max {
            if count == 0 {
                0.0
            } else {
                acc
            }
        } else if count == 0 {
            0.0
        } else {
            acc / count as f32
        }
    });
    Ok(out)
}

/// Rectified linear unit applied element-wise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Numerically-stable softmax over the last dimension of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
pub fn softmax(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.shape().rank(),
            op: "softmax",
        });
    }
    let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
    let xs = x.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &xs[r * cols..(r + 1) * cols];
        let m = row.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
        let mut sum = 0.0;
        for (o, v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *o = (v - m).exp();
            sum += *o;
        }
        for o in &mut out[r * cols..(r + 1) * cols] {
            *o /= sum;
        }
    }
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Logistic sigmoid applied element-wise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Hyperbolic tangent applied element-wise.
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(rows, cols), v).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t2(2, 2, vec![1., 2., 3., 4.]);
        let i = t2(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t2(2, 3, vec![0.; 6]);
        let b = t2(2, 3, vec![0.; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::zeros(Shape::d1(3));
        assert!(matches!(
            matmul(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn conv2d_matches_hand_computation() {
        // 1 input channel 3x3, 1 output map, 2x2 kernel, stride 1, no pad.
        let input =
            Tensor::from_vec(Shape::d3(1, 3, 3), vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]).unwrap();
        let w = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 0., 0., 1.]).unwrap();
        let geom = Conv2dGeometry::square(2, 1, 0);
        let out = conv2d(&input, &w, None, &geom).unwrap();
        assert_eq!(out.shape(), &Shape::d3(1, 2, 2));
        // windows: [1,2;4,5]->1+5, [2,3;5,6]->2+6, [4,5;7,8]->4+8, [5,6;8,9]->5+9
        assert_eq!(out.as_slice(), &[6., 8., 12., 14.]);
    }

    #[test]
    fn conv2d_with_padding_and_bias() {
        let input = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let w = Tensor::from_vec(
            Shape::d4(1, 1, 3, 3),
            vec![0., 0., 0., 0., 1., 0., 0., 0., 0.],
        )
        .unwrap();
        let geom = Conv2dGeometry::square(3, 1, 1);
        let out = conv2d(&input, &w, Some(&[10.0]), &geom).unwrap();
        // Identity kernel + bias 10.
        assert_eq!(out.as_slice(), &[11., 12., 13., 14.]);
    }

    #[test]
    fn conv2d_multi_channel() {
        // 2 in channels, 2 out maps, 1x1 kernels: a per-pixel matmul.
        let input = Tensor::from_vec(Shape::d3(2, 1, 2), vec![1., 2., 3., 4.]).unwrap();
        // w[fi][fo]: fi0->(1,10), fi1->(100,1000)
        let w = Tensor::from_vec(Shape::d4(2, 2, 1, 1), vec![1., 10., 100., 1000.]).unwrap();
        let geom = Conv2dGeometry::square(1, 1, 0);
        let out = conv2d(&input, &w, None, &geom).unwrap();
        // out[fo=0] = 1*in0 + 100*in1 = [301, 402]
        // out[fo=1] = 10*in0 + 1000*in1 = [3010, 4020]
        assert_eq!(out.as_slice(), &[301., 402., 3010., 4020.]);
    }

    #[test]
    fn pooling_max_and_avg() {
        let input =
            Tensor::from_vec(Shape::d3(1, 4, 4), (1..=16).map(|v| v as f32).collect()).unwrap();
        let geom = Conv2dGeometry::square(2, 2, 0);
        let mx = max_pool2d(&input, &geom).unwrap();
        assert_eq!(mx.as_slice(), &[6., 8., 14., 16.]);
        let av = avg_pool2d(&input, &geom).unwrap();
        assert_eq!(av.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn geometry_errors() {
        let g = Conv2dGeometry::square(5, 1, 0);
        assert!(g.output_size(3, 3).is_err());
        let z = Conv2dGeometry {
            stride_x: 0,
            ..Conv2dGeometry::square(2, 1, 0)
        };
        assert!(z.output_size(4, 4).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t2(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax(&x).unwrap();
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(s.as_slice()[0] < s.as_slice()[1]);
        assert!(s.as_slice()[1] < s.as_slice()[2]);
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 1.0]);
        let s = sigmoid(&x);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        let t = tanh(&x);
        assert!((t.as_slice()[0] + t.as_slice()[2]).abs() < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape(), &Shape::d2(3, 2));
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(transpose(&t).unwrap(), a);
    }

    #[test]
    fn matmul_propagates_non_finite_operands() {
        // Regression: the dense kernel used to skip `a[i][p] == 0.0` terms,
        // silently turning `0.0 * NaN` and `0.0 * inf` into 0.0. Dense
        // semantics must follow IEEE arithmetic; zero-skipping belongs only
        // in the sparse kernels (where it is bit-neutral on finite inputs).
        let a = t2(1, 2, vec![0.0, 1.0]);
        let b = t2(2, 1, vec![f32::NAN, 2.0]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.as_slice()[0].is_nan(), "0.0 * NaN must yield NaN");

        let b_inf = t2(2, 1, vec![f32::INFINITY, 2.0]);
        let c_inf = matmul(&a, &b_inf).unwrap();
        assert!(
            c_inf.as_slice()[0].is_nan(),
            "0.0 * inf must yield NaN, got {}",
            c_inf.as_slice()[0]
        );

        // A genuinely infinite contribution survives too.
        let a2 = t2(1, 2, vec![1.0, 1.0]);
        let c2 = matmul(&a2, &b_inf).unwrap();
        assert_eq!(c2.as_slice()[0], f32::INFINITY);
    }

    fn pseudo(i: usize) -> f32 {
        // Deterministic, sign-varying, non-trivial values.
        let x = (i as u32).wrapping_mul(2654435761) >> 8;
        (x as f32 / 8388608.0) - 1.0
    }

    #[test]
    fn matmul_pooled_is_bit_identical_to_serial() {
        let pool = cs_parallel::ThreadPool::new(4);
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 5), (33, 16, 17), (64, 32, 48)] {
            let a = Tensor::from_fn(Shape::d2(m, k), pseudo);
            let b = Tensor::from_fn(Shape::d2(k, n), |i| pseudo(i + 1000));
            let serial = matmul(&a, &b).unwrap();
            let pooled = matmul_pooled(&a, &b, &pool).unwrap();
            assert_eq!(serial, pooled, "mismatch at shape ({m},{k},{n})");
        }
    }

    #[test]
    fn im2col_pooled_is_bit_identical_to_serial() {
        let pool = cs_parallel::ThreadPool::new(3);
        let input = Tensor::from_fn(Shape::d3(3, 9, 7), pseudo);
        for geom in [
            Conv2dGeometry::square(3, 1, 1),
            Conv2dGeometry::square(2, 2, 0),
        ] {
            let serial = im2col(&input, &geom).unwrap();
            let pooled = im2col_pooled(&input, &geom, &pool).unwrap();
            assert_eq!(serial, pooled);
        }
    }

    #[test]
    fn conv2d_pooled_is_bit_identical_to_serial() {
        let pool = cs_parallel::ThreadPool::new(4);
        let input = Tensor::from_fn(Shape::d3(2, 8, 8), pseudo);
        let w = Tensor::from_fn(Shape::d4(2, 4, 3, 3), |i| pseudo(i + 77));
        let bias = [0.5, -0.25, 0.0, 1.5];
        let geom = Conv2dGeometry::square(3, 1, 1);
        let serial = conv2d(&input, &w, Some(&bias), &geom).unwrap();
        let pooled = conv2d_pooled(&input, &w, Some(&bias), &geom, &pool).unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn im2col_shapes() {
        let input = Tensor::zeros(Shape::d3(3, 8, 8));
        let geom = Conv2dGeometry::square(3, 1, 1);
        let cols = im2col(&input, &geom).unwrap();
        assert_eq!(cols.shape(), &Shape::d2(64, 27));
    }
}
