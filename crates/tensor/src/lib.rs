//! Dense tensor substrate for the Cambricon-S reproduction.
//!
//! This crate provides the minimal numerical foundation the rest of the
//! workspace builds on: a row-major [`Tensor`] of `f32` values with a
//! dynamic [`Shape`], plus the dense linear-algebra kernels (matrix
//! multiplication, im2col convolution, pooling) that the neural-network
//! substrate uses as its *reference* implementation. The accelerator
//! simulators in `cs-accel`/`cs-baselines` are validated for functional
//! correctness against these kernels.
//!
//! # Example
//!
//! ```
//! use cs_tensor::{Tensor, Shape};
//!
//! # fn main() -> Result<(), cs_tensor::TensorError> {
//! let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::from_vec(Shape::d2(3, 2), vec![1., 0., 0., 1., 1., 1.])?;
//! let c = cs_tensor::ops::matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), &[4., 5., 10., 11.]);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
