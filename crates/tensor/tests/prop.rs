//! Property-based tests for the tensor kernels.

use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn tensor2(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Tensor::from_fn(Shape::d2(rows, cols), |_| {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    })
}

proptest! {
    /// `(A·B)·C == A·(B·C)` within floating-point tolerance.
    #[test]
    fn matmul_is_associative(m in 1usize..12, k in 1usize..12,
                             n in 1usize..12, p in 1usize..12, seed in 0u64..100) {
        let a = tensor2(m, k, seed);
        let b = tensor2(k, n, seed + 1);
        let c = tensor2(n, p, seed + 2);
        let left = ops::matmul(&ops::matmul(&a, &b).unwrap(), &c).unwrap();
        let right = ops::matmul(&a, &ops::matmul(&b, &c).unwrap()).unwrap();
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{} vs {}", l, r);
        }
    }

    /// Multiplying by the identity is a no-op.
    #[test]
    fn matmul_identity(m in 1usize..16, n in 1usize..16, seed in 0u64..100) {
        let a = tensor2(m, n, seed);
        let id = Tensor::from_fn(Shape::d2(n, n), |i| {
            if i / n == i % n { 1.0 } else { 0.0 }
        });
        let out = ops::matmul(&a, &id).unwrap();
        prop_assert_eq!(out.as_slice(), a.as_slice());
    }

    /// `transpose(transpose(A)) == A` and `(A·B)^T == B^T · A^T`.
    #[test]
    fn transpose_laws(m in 1usize..12, k in 1usize..12, n in 1usize..12,
                      seed in 0u64..100) {
        let a = tensor2(m, k, seed);
        let b = tensor2(k, n, seed + 1);
        prop_assert_eq!(ops::transpose(&ops::transpose(&a).unwrap()).unwrap(), a.clone());
        let lhs = ops::transpose(&ops::matmul(&a, &b).unwrap()).unwrap();
        let rhs = ops::matmul(&ops::transpose(&b).unwrap(), &ops::transpose(&a).unwrap()).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    /// Convolution is linear in the input.
    #[test]
    fn conv2d_is_linear(c in 1usize..3, h in 4usize..8, fo in 1usize..4,
                        alpha in -2.0f32..2.0, seed in 0u64..50) {
        let x = Tensor::from_fn(Shape::d3(c, h, h), {
            let mut s = seed | 1;
            move |_| { s = s.wrapping_mul(48271); ((s >> 16) % 100) as f32 * 0.01 }
        });
        let w = Tensor::from_fn(Shape::d4(c, fo, 3, 3), {
            let mut s = (seed + 7) | 1;
            move |_| { s = s.wrapping_mul(48271); ((s >> 16) % 100) as f32 * 0.01 - 0.5 }
        });
        let geom = Conv2dGeometry::square(3, 1, 1);
        let y1 = ops::conv2d(&x, &w, None, &geom).unwrap();
        let xs = x.map(|v| v * alpha);
        let y2 = ops::conv2d(&xs, &w, None, &geom).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * alpha - b).abs() < 1e-2 * (1.0 + a.abs()),
                         "{} vs {}", a * alpha, b);
        }
    }

    /// Max pooling never invents values: every output equals some input.
    #[test]
    fn max_pool_outputs_are_inputs(c in 1usize..3, h in 4usize..10, seed in 0u64..50) {
        let x = Tensor::from_fn(Shape::d3(c, h, h), {
            let mut s = seed | 1;
            move |_| { s = s.wrapping_mul(48271); ((s >> 16) % 1000) as f32 * 0.001 }
        });
        let geom = Conv2dGeometry::square(2, 2, 0);
        let y = ops::max_pool2d(&x, &geom).unwrap();
        for v in y.as_slice() {
            prop_assert!(x.as_slice().contains(v));
        }
    }

    /// Reshape round-trips and preserves data.
    #[test]
    fn reshape_preserves_data(m in 1usize..16, n in 1usize..16, seed in 0u64..100) {
        let a = tensor2(m, n, seed);
        let flat = a.clone().reshape(Shape::d1(m * n)).unwrap();
        prop_assert_eq!(flat.as_slice(), a.as_slice());
        let back = flat.reshape(Shape::d2(m, n)).unwrap();
        prop_assert_eq!(back, a);
    }

    /// Softmax outputs are a probability distribution per row.
    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..8, cols in 1usize..16,
                                      seed in 0u64..100) {
        let a = tensor2(rows, cols, seed).map(|v| v * 5.0);
        let s = ops::softmax(&a).unwrap();
        for r in 0..rows {
            let row = &s.as_slice()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
