//! DianNao timing model: dense 16×16 accelerator, no sparsity support.
//!
//! DianNao computes every synapse (pruned or not) against every neuron
//! (zero or not) and fetches dense 16-bit weights. Two further effects
//! separate it from an idealized dense machine:
//!
//! * its small NBin (2 KB) cannot persist input feature maps across the
//!   output-map tile loop, so convolutional inputs are re-streamed once
//!   per 16-output-map tile;
//! * its monolithic pipeline reaches substantially lower sustained
//!   utilization than the decoupled select/compute pipeline of the
//!   Cambricon family. We model this with a calibrated
//!   `PIPELINE_EFFICIENCY = 0.45`, which reproduces the cross-paper
//!   consistency `ours/DianNao ≈ 13.1× = 1.71× (ours/Cambricon-X) ×
//!   7.23× (Cambricon-X/DianNao)` reported in the two papers.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{LayerTiming, TimingRun};
use cs_sim::{DramModel, OverlapScheduler, SimStats};

/// Calibrated sustained-pipeline efficiency (see module docs).
pub const PIPELINE_EFFICIENCY: f64 = 0.45;

/// DianNao's structural configuration: same 256 MACs, smaller buffers.
pub fn config() -> AccelConfig {
    AccelConfig {
        nbin_bytes: 2 * 1024,
        nbout_bytes: 2 * 1024,
        sb_bytes: 32 * 1024,
        sib_bytes: 0,
        ib_bytes: 1024,
        ..AccelConfig::paper_default()
    }
}

/// Simulates one layer on DianNao (dense execution).
pub fn simulate_layer(layer: &LayerTiming) -> TimingRun {
    let cfg = config();
    let dram = DramModel::paper_default();
    let groups = layer.n_out.div_ceil(cfg.tn);

    // Dense compute: ceil(n_in / Tm) cycles per group of Tn outputs.
    let per_group = layer.n_in.div_ceil(cfg.tm) as u64;
    let raw_compute = per_group * groups as u64 * layer.positions as u64;
    let compute_cycles = (raw_compute as f64 / PIPELINE_EFFICIENCY).round() as u64;

    // Dense DMA: all weights at 16-bit; conv inputs re-streamed once per
    // output-map tile (NBin too small to persist them).
    let weight_bytes = (layer.n_in * layer.n_out * 2) as u64;
    let input_refetch = if layer.positions > 1 {
        groups as u64
    } else {
        1
    };
    let in_bytes = (layer.input_neurons * cfg.neuron_bytes) as u64 * input_refetch;
    let out_bytes = (layer.output_neurons * cfg.neuron_bytes) as u64;
    let load_cycles = dram.stream_cycles(weight_bytes + in_bytes);
    let store_cycles = dram.stream_cycles(out_bytes);

    let mut sched = OverlapScheduler::new();
    let tiles = 16u64;
    for _ in 0..tiles {
        sched.tile(
            load_cycles / tiles,
            compute_cycles / tiles,
            store_cycles / tiles,
        );
    }
    let cycles = sched.finish() + dram.latency_cycles;

    let macs = layer.dense_macs();
    TimingRun {
        stats: SimStats {
            cycles,
            macs,
            dram_read_bytes: weight_bytes + in_bytes,
            dram_write_bytes: out_bytes,
            nbin_bytes: (layer.positions * groups * layer.n_in * 2) as u64,
            nbout_bytes: 2 * (layer.positions * layer.n_out * 2) as u64,
            sb_bytes: macs * 2,
            sib_bytes: 0,
            nsm_selections: 0,
            ssm_selections: 0,
            wdm_decodes: 0,
            compute_busy_cycles: sched.compute_busy_cycles(),
            dram_stall_cycles: cycles.saturating_sub(sched.compute_busy_cycles()),
            nbin_peak_bytes: in_bytes.div_ceil(tiles),
        },
        compute_cycles,
        dma_cycles: load_cycles + store_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_accel::timing::{simulate_layer as ours, LayerTiming};

    #[test]
    fn dense_fc_dominated_by_weight_traffic() {
        let l = LayerTiming::fc(9216, 4096, 0.1, 0.6, 4);
        let run = simulate_layer(&l);
        // 75.5 MB of dense weights at 256 B/cycle.
        assert!(run.dma_cycles > 290_000);
        assert!(run.stats.cycles >= run.dma_cycles);
    }

    #[test]
    fn ours_beats_diannao_by_order_of_magnitude_on_sparse_conv() {
        let l = LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 0.35, 0.55, 8);
        let dn = simulate_layer(&l);
        let us = ours(&AccelConfig::paper_default(), &l);
        let speedup = dn.stats.cycles as f64 / us.stats.cycles as f64;
        assert!(
            (6.0..25.0).contains(&speedup),
            "speedup over DianNao: {speedup}"
        );
    }

    #[test]
    fn diannao_ignores_sparsity() {
        let dense = LayerTiming::fc(1024, 1024, 1.0, 1.0, 16);
        let sparse = LayerTiming::fc(1024, 1024, 0.1, 0.5, 4);
        let a = simulate_layer(&dense);
        let b = simulate_layer(&sparse);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.macs, b.stats.macs);
    }

    #[test]
    fn conv_inputs_are_refetched_per_tile() {
        let l = LayerTiming::conv(64, 256, 3, 14, 14, 14, 14, 1.0, 1.0, 16);
        let run = simulate_layer(&l);
        let one_pass = (l.input_neurons * 2) as u64;
        assert!(run.stats.dram_read_bytes > one_pass * 10);
    }
}
