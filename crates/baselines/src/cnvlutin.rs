//! Cnvlutin timing model: dynamic *neuron* sparsity only (Table I).
//!
//! Cnvlutin (ISCA'16) skips zero-valued activations — its value-and-index
//! encoding removes ineffectual neuron products — but every synapse,
//! pruned or not, is still fetched and scheduled; static synapse sparsity
//! buys it nothing. The paper quotes a 1.37× improvement over a dense
//! accelerator at 4.49% area overhead.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{LayerTiming, TimingRun};
use cs_sim::{DramModel, OverlapScheduler, SimStats};

/// Cnvlutin's area overhead over the dense baseline (its dispatch and
/// offset logic), from the published 4.49%.
pub const AREA_OVERHEAD: f64 = 0.0449;

/// Simulates one layer on Cnvlutin.
pub fn simulate_layer(layer: &LayerTiming) -> TimingRun {
    let cfg = AccelConfig::paper_default();
    let dram = DramModel::paper_default();
    let groups = layer.n_out.div_ceil(cfg.tn);

    // Compute skips zero neurons only: every (dense) synapse of a
    // non-zero neuron is multiplied.
    let effective = (layer.n_in as f64 * layer.dynamic_density).ceil() as usize;
    let per_group = (effective.div_ceil(cfg.tm) as u64).max(1);
    let compute_cycles = per_group * groups as u64 * layer.positions as u64;

    // DMA: dense 16-bit weights; activations carry offsets (~1 extra
    // byte per non-zero value in the ZFNAf-style encoding).
    let weight_bytes = (layer.n_in * layer.n_out * 2) as u64;
    let in_values = (layer.input_neurons as f64 * layer.dynamic_density) as u64;
    let in_bytes = in_values * (cfg.neuron_bytes as u64 + 1);
    let out_bytes = (layer.output_neurons * cfg.neuron_bytes) as u64;
    let load_cycles = dram.stream_cycles(weight_bytes + in_bytes);
    let store_cycles = dram.stream_cycles(out_bytes);

    let mut sched = OverlapScheduler::new();
    let tiles = 16u64;
    for _ in 0..tiles {
        sched.tile(
            load_cycles / tiles,
            compute_cycles / tiles,
            store_cycles / tiles,
        );
    }
    let macs = (layer.dense_macs() as f64 * layer.dynamic_density).round() as u64;
    TimingRun {
        stats: SimStats {
            cycles: sched.finish() + dram.latency_cycles,
            macs,
            dram_read_bytes: weight_bytes + in_bytes,
            dram_write_bytes: out_bytes,
            nbin_bytes: (layer.positions * groups * layer.n_in * 2) as u64,
            nbout_bytes: 2 * (layer.positions * layer.n_out * 2) as u64,
            sb_bytes: macs * 2,
            sib_bytes: 0,
            nsm_selections: macs,
            ssm_selections: 0,
            wdm_decodes: 0,
            compute_busy_cycles: sched.compute_busy_cycles(),
            dram_stall_cycles: (sched.finish() + dram.latency_cycles)
                .saturating_sub(sched.compute_busy_cycles()),
            nbin_peak_bytes: in_bytes.div_ceil(tiles),
        },
        compute_cycles,
        dma_cycles: load_cycles + store_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diannao;

    #[test]
    fn exploits_dynamic_but_not_static_sparsity() {
        let with_static = LayerTiming::conv(256, 256, 3, 13, 13, 13, 13, 0.1, 0.6, 8);
        let without_static = LayerTiming::conv(256, 256, 3, 13, 13, 13, 13, 1.0, 0.6, 8);
        let a = simulate_layer(&with_static);
        let b = simulate_layer(&without_static);
        assert_eq!(a.compute_cycles, b.compute_cycles);
        let denser = LayerTiming::conv(256, 256, 3, 13, 13, 13, 13, 1.0, 1.0, 8);
        let c = simulate_layer(&denser);
        assert!(a.compute_cycles < c.compute_cycles);
    }

    #[test]
    fn improvement_over_dense_tracks_published_ratio() {
        // Paper: Cnvlutin gains 1.37x from neuron sparsity on average.
        // At ~55% DNS the compute-side gain is ~1/0.55 = 1.8x, diluted by
        // memory to the published ballpark.
        let l = LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 1.0, 0.55, 16);
        let cn = simulate_layer(&l);
        let dn = diannao::simulate_layer(&l);
        let gain = dn.stats.cycles as f64 / cn.stats.cycles as f64;
        assert!((1.1..4.5).contains(&gain), "gain {gain}");
    }
}
