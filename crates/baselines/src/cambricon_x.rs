//! Cambricon-X timing model: synapse sparsity via per-PE Indexing
//! Modules, no dynamic neuron sparsity, no weight quantization.
//!
//! Cambricon-X's IM selects the input neurons named by each PE's *own*
//! fine-grained synapse index (one bit per synapse) and feeds only those
//! to the PE — so compute scales with *static* sparsity, but zero-valued
//! neurons are still multiplied, weights stay 16-bit, and every PE
//! carries its own index stream (no sharing). These are exactly the three
//! gaps Cambricon-S closes (Section V-A).

use cs_accel::config::AccelConfig;
use cs_accel::timing::{LayerTiming, TimingRun};
use cs_sim::{DramModel, OverlapScheduler, SimStats};

/// Cambricon-X's structural configuration (same 256-MAC NFU; its 2 KB
/// NBin and per-PE IMs are reflected in timing/energy, not here).
pub fn config() -> AccelConfig {
    AccelConfig::paper_default()
}

/// Simulates one layer on Cambricon-X.
pub fn simulate_layer(layer: &LayerTiming) -> TimingRun {
    let cfg = config();
    let dram = DramModel::paper_default();
    let groups = layer.n_out.div_ceil(cfg.tn);
    let static_surv = (layer.n_in as f64 * layer.static_density).round() as usize;

    // The IM scans 256 candidates/cycle and each PE retires Tm MACs per
    // cycle over the *static survivors* (zero neurons are not skipped).
    let scan = layer.n_in.div_ceil(cfg.nsm_window()) as u64;
    let mac = (static_surv.div_ceil(cfg.tm) as u64).max(1);
    let per_group = scan.max(mac);
    let compute_cycles = per_group * groups as u64 * layer.positions as u64;

    // DMA: surviving weights at 16-bit; fine-grained direct indexes are
    // one bit per (dense) synapse and are not shared across PEs.
    let weight_bytes = layer.surviving_weights() * 2;
    let index_bytes = ((layer.n_in * layer.n_out) as u64).div_ceil(8);
    let in_bytes = (layer.input_neurons * cfg.neuron_bytes) as u64;
    let out_bytes = (layer.output_neurons * cfg.neuron_bytes) as u64;
    let load_cycles = dram.stream_cycles(weight_bytes + index_bytes + in_bytes);
    let store_cycles = dram.stream_cycles(out_bytes);

    let mut sched = OverlapScheduler::new();
    let tiles = 16u64;
    for _ in 0..tiles {
        sched.tile(
            load_cycles / tiles,
            compute_cycles / tiles,
            store_cycles / tiles,
        );
    }
    let cycles = sched.finish() + dram.latency_cycles;

    let macs = (layer.dense_macs() as f64 * layer.static_density).round() as u64;
    TimingRun {
        stats: SimStats {
            cycles,
            macs,
            dram_read_bytes: weight_bytes + index_bytes + in_bytes,
            dram_write_bytes: out_bytes,
            nbin_bytes: (layer.positions * groups * layer.n_in * 2) as u64,
            nbout_bytes: 2 * (layer.positions * layer.n_out * 2) as u64,
            sb_bytes: macs * 2,
            // Indexes stream through every PE's private IM.
            sib_bytes: (layer.positions as u64) * (layer.n_out as u64) * (layer.n_in as u64) / 8,
            nsm_selections: macs, // IM selections, counted for energy
            ssm_selections: 0,
            wdm_decodes: 0,
            compute_busy_cycles: sched.compute_busy_cycles(),
            dram_stall_cycles: cycles.saturating_sub(sched.compute_busy_cycles()),
            nbin_peak_bytes: in_bytes.div_ceil(tiles),
        },
        compute_cycles,
        dma_cycles: load_cycles + store_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_accel::timing::simulate_layer as ours;

    #[test]
    fn exploits_static_but_not_dynamic_sparsity() {
        let no_dyn = LayerTiming::fc(4096, 4096, 0.1, 1.0, 16);
        let with_dyn = LayerTiming::fc(4096, 4096, 0.1, 0.4, 16);
        let a = simulate_layer(&no_dyn);
        let b = simulate_layer(&with_dyn);
        assert_eq!(a.stats.cycles, b.stats.cycles, "dynamic sparsity ignored");
        let dense = simulate_layer(&LayerTiming::fc(4096, 4096, 1.0, 1.0, 16));
        assert!(dense.stats.cycles > 3 * a.stats.cycles);
    }

    #[test]
    fn ours_beats_x_on_conv_via_dynamic_sparsity() {
        // Paper: 1.66x in conv layers from the SSMs.
        let l = LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 0.35, 0.55, 8);
        let x = simulate_layer(&l);
        let us = ours(&AccelConfig::paper_default(), &l);
        let speedup = x.stats.cycles as f64 / us.stats.cycles as f64;
        assert!((1.2..3.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn ours_beats_x_on_fc_via_quantization_and_index_sharing() {
        // Paper: 2.15x in FC layers (1.77x quantization + 1.21x indexes).
        let l = LayerTiming::fc(9216, 4096, 0.1, 0.6, 4);
        let x = simulate_layer(&l);
        let us = ours(&AccelConfig::paper_default(), &l);
        let speedup = x.stats.cycles as f64 / us.stats.cycles as f64;
        assert!((1.3..5.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn index_traffic_is_fine_grained() {
        let l = LayerTiming::fc(1024, 1024, 0.1, 1.0, 16);
        let run = simulate_layer(&l);
        // 1 bit per dense synapse.
        assert!(run.stats.dram_read_bytes >= (1024 * 1024 / 8) as u64);
    }
}
