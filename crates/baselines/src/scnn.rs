//! SCNN timing model: both sparsities, but with coordinate overheads
//! (Table I's "extra costs for coordinates").
//!
//! SCNN (ISCA'17) computes only non-zero × non-zero products by streaming
//! compressed activations and weights through a multiplier array, then
//! scatters the partial products through a coordinate-computation crossbar
//! into accumulator banks. The scatter step is the cost: output
//! coordinates must be computed and bank conflicts resolved per product.
//! The paper reports SCNN reaching only 79% of a dense accelerator's
//! performance on *dense* networks and gaining 2.7×/2.3× overall.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{LayerTiming, TimingRun};
use cs_sim::{DramModel, OverlapScheduler, SimStats};

/// Crossbar/accumulator efficiency on sparse products (bank conflicts
/// plus coordinate computation), calibrated to the published "79% of
/// dense performance when processing dense networks".
pub const SCATTER_EFFICIENCY: f64 = 0.79;

/// Per-product coordinate-storage overhead in bytes (compressed-sparse
/// encodings carry ~4-bit coordinates per non-zero weight/activation).
pub const COORD_BYTES_PER_VALUE: f64 = 0.5;

/// Simulates one layer on SCNN.
pub fn simulate_layer(layer: &LayerTiming) -> TimingRun {
    let cfg = AccelConfig::paper_default();
    let dram = DramModel::paper_default();

    // Compute only the effectual products, at reduced array efficiency.
    let macs = layer.sparse_macs().max(1);
    let raw = macs.div_ceil(cfg.peak_macs_per_cycle() as u64);
    let compute_cycles = (raw as f64 / SCATTER_EFFICIENCY).round() as u64;

    // DMA: surviving 16-bit weights + coordinates; non-zero activations
    // + coordinates.
    let surv = layer.surviving_weights();
    let weight_bytes = surv * 2 + (surv as f64 * COORD_BYTES_PER_VALUE) as u64;
    let in_values = (layer.input_neurons as f64 * layer.dynamic_density) as u64;
    let in_bytes = in_values * 2 + (in_values as f64 * COORD_BYTES_PER_VALUE) as u64;
    let out_bytes = (layer.output_neurons * cfg.neuron_bytes) as u64;
    let load_cycles = dram.stream_cycles(weight_bytes + in_bytes);
    let store_cycles = dram.stream_cycles(out_bytes);

    let mut sched = OverlapScheduler::new();
    let tiles = 16u64;
    for _ in 0..tiles {
        sched.tile(
            load_cycles / tiles,
            compute_cycles / tiles,
            store_cycles / tiles,
        );
    }
    TimingRun {
        stats: SimStats {
            cycles: sched.finish() + dram.latency_cycles,
            macs,
            dram_read_bytes: weight_bytes + in_bytes,
            dram_write_bytes: out_bytes,
            nbin_bytes: in_bytes,
            nbout_bytes: 2 * out_bytes,
            sb_bytes: weight_bytes,
            sib_bytes: 0,
            nsm_selections: macs, // coordinate computations
            ssm_selections: 0,
            wdm_decodes: 0,
            compute_busy_cycles: sched.compute_busy_cycles(),
            dram_stall_cycles: (sched.finish() + dram.latency_cycles)
                .saturating_sub(sched.compute_busy_cycles()),
            nbin_peak_bytes: in_bytes.div_ceil(tiles),
        },
        compute_cycles,
        dma_cycles: load_cycles + store_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diannao;
    use cs_accel::timing::simulate_layer as ours;
    use cs_accel::AccelConfig;

    #[test]
    fn slower_than_dense_hardware_on_dense_networks() {
        // The published weakness: 79% of dense performance at 100%/100%.
        let l = LayerTiming::conv(256, 256, 3, 13, 13, 13, 13, 1.0, 1.0, 16);
        let scnn = simulate_layer(&l);
        let dense_ours = cs_accel::timing::simulate_layer_dense(&AccelConfig::paper_default(), &l);
        assert!(
            scnn.compute_cycles > dense_ours.compute_cycles,
            "scnn {} vs dense {}",
            scnn.compute_cycles,
            dense_ours.compute_cycles
        );
    }

    #[test]
    fn gains_from_both_sparsities_but_less_than_ours() {
        let l = LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 0.35, 0.55, 8);
        let scnn = simulate_layer(&l);
        let dn = diannao::simulate_layer(&l);
        let us = ours(&AccelConfig::paper_default(), &l);
        let scnn_gain = dn.stats.cycles as f64 / scnn.stats.cycles as f64;
        assert!(scnn_gain > 1.5, "SCNN gain {scnn_gain}");
        // Coordinate overhead keeps it behind Cambricon-S.
        assert!(us.stats.cycles < scnn.stats.cycles);
    }

    #[test]
    fn coordinates_inflate_weight_traffic() {
        let l = LayerTiming::fc(4096, 4096, 0.1, 1.0, 16);
        let scnn = simulate_layer(&l);
        let plain_sparse_bytes = l.surviving_weights() * 2;
        assert!(scnn.stats.dram_read_bytes > plain_sparse_bytes);
    }
}
