//! Baseline platforms the paper compares Cambricon-S against.
//!
//! * [`diannao`] — DianNao: a dense 256-MAC accelerator with no sparsity
//!   support (weights and zero activations are all fetched and computed).
//! * [`cambricon_x`] — Cambricon-X: per-PE Indexing Modules exploit
//!   *synapse* sparsity with fine-grained indexes, but dynamic neuron
//!   sparsity and weight quantization are not supported.
//! * [`eie`] — EIE: a fully-connected-layer accelerator keeping all
//!   synapses in on-chip SRAM (Table VII comparison).
//! * [`cnvlutin`] — Cnvlutin: dynamic neuron sparsity only.
//! * [`scnn`] — SCNN: both sparsities, with coordinate-computation
//!   overheads (79% of dense performance on dense networks).
//! * [`cpu_gpu`] — analytic roofline models for CPU-Caffe / CPU-Sparse /
//!   GPU-Caffe / GPU-cuBLAS / GPU-cuSparse (see DESIGN.md substitution
//!   #4: constants are calibrated to the paper's reported gaps, since the
//!   original Caffe/cuBLAS runs are not reproducible offline).
//!
//! All accelerator baselines consume the same [`cs_accel::timing::LayerTiming`]
//! summaries as Cambricon-S itself, so comparisons are apples-to-apples.

pub mod cambricon_x;
pub mod cnvlutin;
pub mod cpu_gpu;
pub mod diannao;
pub mod eie;
pub mod scnn;

pub use cambricon_x::simulate_layer as cambricon_x_layer;
pub use diannao::simulate_layer as diannao_layer;
