//! EIE comparison model (the paper's Table VII).
//!
//! EIE keeps every synapse of a fully-connected layer in on-chip SRAM
//! (40.8 mm² for AlexNet's FC layers — 5.07× our accelerator) and
//! processes CSC columns of non-zero activations with 64 PEs at 800 MHz,
//! one MAC per PE per cycle. For the comparison the paper grants our
//! accelerator the same all-synapses-on-chip assumption and compares pure
//! computation time; [`our_fc_micros`] reproduces that setup.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{group_cycles, LayerTiming};

/// EIE's published per-layer latencies in microseconds (Table VII).
pub const PAPER_LATENCIES: [(&str, f64); 6] = [
    ("alexnet/fc6", 30.30),
    ("alexnet/fc7", 12.20),
    ("alexnet/fc8", 9.90),
    ("vgg16/fc6", 34.40),
    ("vgg16/fc7", 8.70),
    ("vgg16/fc8", 7.50),
];

/// EIE structural model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EieModel {
    /// Number of PEs.
    pub pes: usize,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Average load-imbalance efficiency across PEs (EIE reports ~0.8
    /// with their queueing).
    pub efficiency: f64,
}

impl EieModel {
    /// The published 64-PE, 800 MHz configuration.
    pub fn paper_default() -> Self {
        EieModel {
            pes: 64,
            freq_ghz: 0.8,
            efficiency: 0.8,
        }
    }

    /// Analytic latency of one FC layer in microseconds: EIE performs one
    /// MAC per PE per cycle over the synapses of *non-zero* activations.
    pub fn fc_micros(&self, layer: &LayerTiming) -> f64 {
        let macs = layer.sparse_macs() as f64;
        let cycles = macs / (self.pes as f64 * self.efficiency);
        cycles / (self.freq_ghz * 1000.0)
    }
}

impl Default for EieModel {
    fn default() -> Self {
        EieModel::paper_default()
    }
}

/// Our accelerator's FC latency in microseconds under the Table VII
/// assumption (all synapses on-chip, computation time only).
pub fn our_fc_micros(cfg: &AccelConfig, layer: &LayerTiming) -> f64 {
    let groups = layer.n_out.div_ceil(cfg.tn);
    let static_surv = (layer.n_in as f64 * layer.static_density).round() as usize;
    let needed = (static_surv as f64 * layer.dynamic_density).round() as usize;
    let per_group = group_cycles(cfg, layer.n_in, static_surv, needed, layer.weight_bits);
    let cycles = per_group * groups as u64 * layer.positions as u64;
    cycles as f64 / (cfg.freq_ghz * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_fc6_latency_beats_eie() {
        // AlexNet fc6 with the paper's sparsity (~9% kept, DNS ~64%).
        let l = LayerTiming::fc(9216, 4096, 0.09, 0.64, 4);
        let cfg = AccelConfig::paper_default();
        let ours = our_fc_micros(&cfg, &l);
        let eie = EieModel::paper_default().fc_micros(&l);
        assert!(ours < eie, "ours {ours}us vs EIE {eie}us");
        let speedup = eie / ours;
        assert!((1.0..6.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn eie_model_matches_published_order_of_magnitude() {
        // EIE on AlexNet fc6 (9% weights, ~35% activations non-zero in
        // their setup) is ~30us.
        let l = LayerTiming::fc(9216, 4096, 0.09, 0.36, 4);
        let eie = EieModel::paper_default().fc_micros(&l);
        assert!((5.0..60.0).contains(&eie), "EIE fc6 {eie}us");
    }

    #[test]
    fn paper_table_has_six_layers() {
        assert_eq!(PAPER_LATENCIES.len(), 6);
        assert!(PAPER_LATENCIES.iter().all(|(_, v)| *v > 0.0));
    }
}
