//! Analytic CPU/GPU baselines.
//!
//! The paper benchmarks Caffe on a 6-core 2.1 GHz CPU and an Nvidia K20M
//! (3.52 TFLOPS peak), plus sparseBLAS/cuSparse for sparse
//! representations. Those software stacks are not reproducible offline,
//! so these are throughput models: `time = 2·MACs / (peak · efficiency)`,
//! with efficiencies calibrated to the relative gaps the paper reports
//! (DESIGN.md substitution #4). Two qualitative behaviours are
//! preserved: *CPU/GPU sparse execution is slower than dense* unless
//! density is very low (the irregularity observation of Section II-B),
//! and batch-1 inference reaches only a few percent of peak.

use cs_accel::timing::LayerTiming;

/// One modelled software platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformModel {
    /// Platform name as used in the figures.
    pub name: &'static str,
    /// Peak throughput in GOP/s.
    pub peak_gops: f64,
    /// Sustained fraction of peak on this workload class.
    pub efficiency: f64,
    /// Whether only surviving (static-sparse) MACs are executed.
    pub sparse_execution: bool,
    /// Board/package power in watts (for energy comparisons).
    pub power_watts: f64,
}

impl PlatformModel {
    /// Time to execute one layer, in seconds.
    pub fn layer_seconds(&self, layer: &LayerTiming) -> f64 {
        let macs = if self.sparse_execution {
            (layer.dense_macs() as f64 * layer.static_density).max(1.0)
        } else {
            layer.dense_macs() as f64
        };
        2.0 * macs / (self.peak_gops * 1e9 * self.efficiency)
    }

    /// Energy for one layer, in joules.
    pub fn layer_joules(&self, layer: &LayerTiming) -> f64 {
        self.layer_seconds(layer) * self.power_watts
    }
}

/// CPU running dense Caffe (6 cores × 2.1 GHz, AVX FMA ≈ 201.6 GOP/s
/// peak; Caffe batch-1 sustains a few percent).
pub fn cpu_caffe() -> PlatformModel {
    PlatformModel {
        name: "CPU-Caffe",
        peak_gops: 201.6,
        efficiency: 0.048,
        sparse_execution: false,
        power_watts: 95.0,
    }
}

/// CPU running sparseBLAS: only surviving MACs execute, but CSR overhead
/// makes the effective rate ~12× worse — at ≥10% density this is slower
/// than the dense run, matching the paper's observation.
pub fn cpu_sparse() -> PlatformModel {
    PlatformModel {
        name: "CPU-Sparse",
        peak_gops: 201.6,
        efficiency: 0.004,
        sparse_execution: true,
        power_watts: 95.0,
    }
}

/// K20M running dense Caffe.
pub fn gpu_caffe() -> PlatformModel {
    PlatformModel {
        name: "GPU-Caffe",
        peak_gops: 3520.0,
        efficiency: 0.021,
        sparse_execution: false,
        power_watts: 170.0,
    }
}

/// K20M running cuBLAS directly (slightly better than Caffe's plumbing).
pub fn gpu_cublas() -> PlatformModel {
    PlatformModel {
        name: "GPU-cuBLAS",
        peak_gops: 3520.0,
        efficiency: 0.024,
        sparse_execution: false,
        power_watts: 170.0,
    }
}

/// K20M running cuSparse (CSR): sparse execution at heavily reduced
/// efficiency.
pub fn gpu_cusparse() -> PlatformModel {
    PlatformModel {
        name: "GPU-cuSparse",
        peak_gops: 3520.0,
        efficiency: 0.0042,
        sparse_execution: true,
        power_watts: 170.0,
    }
}

/// All five software baselines.
pub fn all() -> [PlatformModel; 5] {
    [
        cpu_caffe(),
        cpu_sparse(),
        gpu_caffe(),
        gpu_cublas(),
        gpu_cusparse(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc6() -> LayerTiming {
        LayerTiming::fc(9216, 4096, 0.1, 0.6, 4)
    }

    #[test]
    fn sparse_cpu_is_slower_than_dense_at_moderate_density() {
        // The paper's observation: sparse libraries lose to dense ones.
        let l = fc6();
        assert!(cpu_sparse().layer_seconds(&l) > cpu_caffe().layer_seconds(&l));
    }

    #[test]
    fn sparse_cpu_wins_at_extreme_sparsity() {
        let l = LayerTiming::fc(9216, 4096, 0.005, 1.0, 4);
        assert!(cpu_sparse().layer_seconds(&l) < cpu_caffe().layer_seconds(&l));
    }

    #[test]
    fn gpu_is_faster_than_cpu() {
        let l = fc6();
        assert!(gpu_caffe().layer_seconds(&l) < cpu_caffe().layer_seconds(&l));
        assert!(gpu_cublas().layer_seconds(&l) <= gpu_caffe().layer_seconds(&l));
    }

    #[test]
    fn energy_scales_with_time_and_power() {
        let l = fc6();
        let m = gpu_caffe();
        assert!((m.layer_joules(&l) - m.layer_seconds(&l) * 170.0).abs() < 1e-12);
    }

    #[test]
    fn all_platforms_produce_positive_times() {
        let l = fc6();
        for m in all() {
            assert!(m.layer_seconds(&l) > 0.0, "{}", m.name);
        }
    }
}
