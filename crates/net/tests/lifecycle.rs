//! Wire-level model-lifecycle integration tests, run once per
//! transport (threaded and reactor): a server that starts with nothing
//! resident is driven entirely through control frames — hot-load from
//! an on-disk registry, canary a second version, promote it, and evict
//! the old primary under a memory budget — while data-plane requests
//! stay bit-exact throughout. Plus the failure sides: a divergent
//! canary must auto-demote, and per-tenant overload rejections must
//! carry the tenant label back across the wire.

use std::path::{Path, PathBuf};

use cs_net::transport::{read_frame, write_frame};
use cs_net::wire::{ErrorCode, Frame};
use cs_net::{Client, NetConfig, NetError, NetServer, Transport};
use cs_nn::spec::Scale;
use cs_registry::{ModelArtifact, RegistryStore};
use cs_serve::loadgen::request_input;
use cs_serve::{ExecBackend, ModelRegistry, ServableModel, ServeConfig, Server};

fn transports() -> [Transport; 2] {
    [Transport::Threaded, Transport::Reactor]
}

/// A fresh registry directory unique to one test leg.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs-net-lifecycle-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Saves the seeded MLP as `name@vversion`; equal seeds produce
/// bit-identical weights, which is what makes a zero-divergence canary
/// provable rather than probable.
fn save_model(store: &RegistryStore, name: &str, version: u32, seed: u64) -> u64 {
    let model = ServableModel::mlp(Scale::Reduced(8), seed).expect("build model");
    let artifact = ModelArtifact {
        name: name.to_string(),
        version,
        layers: model.layers,
    };
    store.save(&artifact).expect("save artifact");
    artifact.resident_bytes()
}

/// An empty serving runtime wired to `dir` as its model registry.
fn start_empty(transport: Transport, dir: &Path, budget: u64) -> NetServer {
    let serve = Server::start(
        ModelRegistry::new(),
        ServeConfig {
            workers: 2,
            backend: ExecBackend::Sparse,
            memory_budget_bytes: budget,
            ..ServeConfig::default()
        },
    )
    .expect("serve start");
    let net = NetServer::start(
        serve,
        NetConfig {
            transport,
            registry_dir: Some(dir.display().to_string()),
            ..NetConfig::default()
        },
    )
    .expect("net start");
    #[cfg(target_os = "linux")]
    assert_eq!(net.transport(), transport, "transport fell back");
    net
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn hot_load_canary_promote_and_evict_over_the_wire() {
    for (leg, transport) in transports().into_iter().enumerate() {
        let dir = scratch_dir(&format!("lifecycle-{leg}"));
        let store = RegistryStore::open(&dir).expect("open store");
        // v1 and v2 share a seed: bit-identical weights, so the canary
        // must report zero divergences. `aux` exists to push the
        // budget over once v1 is demoted from primary.
        let b1 = save_model(&store, "mlp", 1, 7);
        let b2 = save_model(&store, "mlp", 2, 7);
        let aux = save_model(&store, "aux", 1, 9);
        // Fits v1+v2 (the canary phase) and v2+aux, but not all three:
        // loading aux must evict exactly v1.
        let budget = b1 + b2 + aux / 2;

        let net = start_empty(transport, &dir, budget);
        let addr = net.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        let n_in = ServableModel::mlp(Scale::Reduced(8), 7)
            .expect("model")
            .n_in;

        // Nothing resident yet: the data plane rejects by name.
        let err = client
            .request("mlp", &request_input(n_in, 0, 42))
            .expect_err("empty server");
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::UnknownModel,
                    ..
                }
            ),
            "{transport}: expected UnknownModel, got {err:?}"
        );

        // Hot-load v1 over the wire; the ModelList ack doubles as the
        // post-load listing.
        let statuses = client.load_model("mlp", 1, 0).expect("load v1");
        assert_eq!(statuses.len(), 1, "{transport}");
        assert!(
            statuses[0].primary && statuses[0].version == 1,
            "{transport}"
        );

        // Baseline outputs on v1.
        let baseline: Vec<Vec<u32>> = (0..8)
            .map(|i| {
                let out = client
                    .request("mlp", &request_input(n_in, i, 42))
                    .expect("v1 request");
                bits(&out.outputs)
            })
            .collect();

        // Canary v2 at 25%. Every request must stay bit-identical to
        // the v1 baseline no matter which version served it, and the
        // shadow comparison must never fire.
        let statuses = client.load_model("mlp", 2, 25).expect("canary v2");
        let v2 = statuses.iter().find(|s| s.version == 2).expect("v2 listed");
        assert_eq!(v2.canary_pct, Some(25), "{transport}");
        for round in 0..5 {
            for i in 0..8u64 {
                let out = client
                    .request("mlp", &request_input(n_in, i, 42))
                    .expect("canary-phase request");
                assert_eq!(
                    bits(&out.outputs),
                    baseline[i as usize],
                    "{transport}: canary phase diverged (round {round}, input {i})"
                );
            }
        }
        let report = net
            .server()
            .canary_report("mlp")
            .expect("canary report exists");
        assert!(report.routed > 0, "{transport}: canary saw no traffic");
        assert_eq!(report.divergences, 0, "{transport}");
        assert!(!report.demoted, "{transport}");

        // Promote v2, then load `aux`: the budget no longer fits v1,
        // and it is the only evictable version.
        let statuses = client.load_model("mlp", 2, 0).expect("promote v2");
        let v2 = statuses.iter().find(|s| s.version == 2).expect("v2 listed");
        assert!(v2.primary, "{transport}: v2 not promoted");
        let statuses = client.load_model("aux", 1, 0).expect("load aux");
        let names: Vec<(String, u32)> = statuses
            .iter()
            .map(|s| (s.name.clone(), s.version))
            .collect();
        assert_eq!(
            names,
            vec![("aux".to_string(), 1), ("mlp".to_string(), 2)],
            "{transport}: v1 not evicted"
        );
        assert_eq!(net.server().stats().evictions, 1, "{transport}");

        // Unload over the wire and list.
        let statuses = client.unload_model("aux", 1).expect("unload aux");
        assert_eq!(statuses.len(), 1, "{transport}");
        let listed = client.list_models().expect("list");
        assert_eq!(listed, statuses, "{transport}: list disagrees with ack");

        // Post-evict traffic still serves bit-identically on v2.
        for i in 0..8u64 {
            let out = client
                .request("mlp", &request_input(n_in, i, 42))
                .expect("post-evict request");
            assert_eq!(bits(&out.outputs), baseline[i as usize], "{transport}");
        }

        // Telemetry reconciles: every admitted request completed, none
        // were lost across the load/evict churn.
        let snap = net.server().stats();
        assert_eq!(snap.submitted, 8 + 40 + 8, "{transport}");
        assert_eq!(snap.completed, snap.submitted, "{transport}");
        assert_eq!(snap.rejected, 0, "{transport}");
        assert_eq!(snap.failed, 0, "{transport}");

        net.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn divergent_canary_auto_demotes_over_the_wire() {
    for (leg, transport) in transports().into_iter().enumerate() {
        let dir = scratch_dir(&format!("demote-{leg}"));
        let store = RegistryStore::open(&dir).expect("open store");
        save_model(&store, "mlp", 1, 7);
        // v3 is built from a different seed: same shape, different
        // weights — the injected fault the canary gate must catch.
        save_model(&store, "mlp", 3, 8);

        let net = start_empty(transport, &dir, 0);
        let addr = net.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        let n_in = ServableModel::mlp(Scale::Reduced(8), 7)
            .expect("model")
            .n_in;

        client.load_model("mlp", 1, 0).expect("load v1");
        let baseline: Vec<u32> = bits(
            &client
                .request("mlp", &request_input(n_in, 0, 42))
                .expect("baseline")
                .outputs,
        );

        // Canary v3 at 100%: the next request is routed to it, shadow-
        // compared against v1, diverges, and trips the demotion
        // threshold (1) — exactly once.
        client.load_model("mlp", 3, 100).expect("canary v3");
        let diverged = client
            .request("mlp", &request_input(n_in, 0, 42))
            .expect("divergent request serves");
        assert_ne!(
            bits(&diverged.outputs),
            baseline,
            "{transport}: seeds 7 and 8 must differ for this test to bite"
        );

        // After demotion every request routes to the primary again.
        for _ in 0..4 {
            let out = client
                .request("mlp", &request_input(n_in, 0, 42))
                .expect("post-demotion request");
            assert_eq!(bits(&out.outputs), baseline, "{transport}");
        }
        let listed = client.list_models().expect("list");
        let v3 = listed.iter().find(|s| s.version == 3).expect("v3 listed");
        assert!(v3.demoted, "{transport}: canary not demoted");
        assert_eq!(v3.canary_pct, None, "{transport}");
        let report = net.server().canary_report("mlp").expect("report");
        assert!(report.demoted, "{transport}");
        assert!(report.divergences >= 1, "{transport}");
        assert_eq!(net.server().stats().canary_demotions, 1, "{transport}");

        net.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tenant_overload_rejections_echo_the_tenant_on_the_wire() {
    for transport in transports() {
        // Single-request batches on a deliberately slow emulated
        // accelerator: the dispatch pipeline fills within a few
        // submissions, after which the "acme" lane backs up and its
        // 2-slot quota must reject.
        let model = ServableModel::mlp(Scale::Reduced(8), 7).expect("model");
        let n_in = model.n_in;
        let mut models = ModelRegistry::new();
        models.register(model).expect("register");
        let serve = Server::start(
            models,
            ServeConfig {
                workers: 1,
                queue_depth: 64,
                tenant_quota: 2,
                max_batch: 1,
                emulate_hw_time: true,
                freq_ghz: 1e-3,
                ..ServeConfig::default()
            },
        )
        .expect("serve start");
        let net = NetServer::start(
            serve,
            NetConfig {
                transport,
                ..NetConfig::default()
            },
        )
        .expect("net start");

        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        let total = 16u64;
        for id in 0..total {
            let frame = Frame::Request {
                id,
                model: "mlp".to_string(),
                tenant: "acme".to_string(),
                input: request_input(n_in, id, 21),
            };
            write_frame(&mut stream, &frame).expect("write");
        }
        let mut served = 0u64;
        let mut rejected = 0u64;
        for _ in 0..total {
            match read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
                .expect("read")
                .expect("frame")
            {
                Frame::Response { .. } => served += 1,
                Frame::Error {
                    code: ErrorCode::Overloaded,
                    tenant,
                    ..
                } => {
                    assert_eq!(
                        tenant, "acme",
                        "{transport}: overload rejection lost its tenant label"
                    );
                    rejected += 1;
                }
                other => panic!("{transport}: unexpected reply {other:?}"),
            }
        }
        assert_eq!(served + rejected, total, "{transport}");
        assert!(
            rejected > 0,
            "{transport}: the tenant quota never rejected ({served} served)"
        );
        net.shutdown();
    }
}
