//! Loopback TCP integration tests: every test binds an ephemeral port
//! so runs are parallel-safe and deterministic, and output checks are
//! bit-exact (`f32::to_bits`) — the network path must not perturb a
//! single mantissa bit relative to an in-process submission.
//!
//! Every test that stands up a [`NetServer`] runs its whole body once
//! per [`Transport`] — the portable thread-per-connection plane and the
//! Linux epoll reactor must be observationally identical: same frames,
//! same FIFO order, same typed errors, same exact telemetry counts.
//! (On non-Linux hosts the reactor leg transparently re-runs the
//! threaded plane; see `Transport` docs.)

use std::sync::Arc;
use std::time::Duration;

use cs_net::transport::{read_frame, write_frame};
use cs_net::wire::{ErrorCode, Frame};
use cs_net::{Client, ClientConfig, NetConfig, NetError, NetServer, RetryPolicy, Transport};
use cs_nn::spec::Scale;
use cs_serve::loadgen::request_input;
use cs_serve::{ExecBackend, InferRequest, ModelRegistry, ServableModel, ServeConfig, Server};
use cs_telemetry::{MonotonicClock, Registry};

/// Both data planes; each parameterized test runs once per entry with a
/// fresh server and registry so exact counter assertions hold per leg.
fn transports() -> [Transport; 2] {
    [Transport::Threaded, Transport::Reactor]
}

fn start_net(transport: Transport, backend: ExecBackend, workers: usize) -> (NetServer, usize) {
    let (net, n_in, _) = start_net_with_registry(transport, backend, workers, NetConfig::default());
    (net, n_in)
}

fn start_net_with_registry(
    transport: Transport,
    backend: ExecBackend,
    workers: usize,
    net_cfg: NetConfig,
) -> (NetServer, usize, Arc<Registry>) {
    let serve_cfg = ServeConfig {
        workers,
        backend,
        ..ServeConfig::default()
    };
    start_net_custom(transport, serve_cfg, net_cfg)
}

/// Full-control variant: explicit serve config (slow emulated workers,
/// tiny queues) plus the net config, with `transport` stamped in.
fn start_net_custom(
    transport: Transport,
    serve_cfg: ServeConfig,
    mut net_cfg: NetConfig,
) -> (NetServer, usize, Arc<Registry>) {
    net_cfg.transport = transport;
    let registry = Arc::new(Registry::new());
    let model = ServableModel::mlp(Scale::Reduced(8), 7).expect("model");
    let n_in = model.n_in;
    let mut models = ModelRegistry::new();
    models.register(model).expect("register");
    let serve = Server::start_with_recorder(
        models,
        serve_cfg,
        Arc::new(MonotonicClock::new()),
        registry.clone(),
    )
    .expect("serve start");
    let net = NetServer::start_with_recorder(serve, net_cfg, registry.clone()).expect("net start");
    // On Linux the requested plane must actually be the one serving —
    // a silent fallback would turn every reactor leg into a no-op.
    #[cfg(target_os = "linux")]
    assert_eq!(net.transport(), transport, "transport fell back");
    (net, n_in, registry)
}

/// Reads a counter, waiting up to `deadline` for it to reach `want`
/// (reactor bookkeeping runs on the loop thread; threaded on the
/// writer), then returns the settled value for an exact assertion.
fn settle_counter(registry: &Registry, name: &'static str, want: u64, deadline: Duration) -> u64 {
    let ctr = registry.find_counter(name, &[]).expect("counter");
    let until = std::time::Instant::now() + deadline;
    while ctr.get() < want && std::time::Instant::now() < until {
        std::thread::sleep(Duration::from_millis(1));
    }
    ctr.get()
}

#[test]
fn network_outputs_are_bit_identical_to_direct_submission() {
    for transport in transports() {
        for backend in [ExecBackend::Sparse, ExecBackend::Dense] {
            let (net, n_in) = start_net(transport, backend, 2);
            let addr = net.local_addr().to_string();
            let mut client = Client::connect(&addr).expect("connect");
            for request_id in 0..8u64 {
                let input = request_input(n_in, request_id, 42);
                let direct = net
                    .server()
                    .submit(InferRequest::new("mlp", input.clone()))
                    .expect("submit")
                    .wait()
                    .expect("direct response");
                let over_wire = client.request("mlp", &input).expect("net response");
                let direct_bits: Vec<u32> = direct.outputs.iter().map(|v| v.to_bits()).collect();
                let wire_bits: Vec<u32> = over_wire.outputs.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    direct_bits, wire_bits,
                    "{transport} backend {backend:?} request {request_id}: \
                     network and direct outputs diverge"
                );
                assert_eq!(over_wire.model, "mlp");
                assert!(over_wire.batch_size >= 1);
            }
            net.shutdown();
        }
    }
}

#[test]
fn pipelined_requests_come_back_in_fifo_order() {
    for transport in transports() {
        let (net, n_in) = start_net(transport, ExecBackend::Sparse, 2);
        let addr = net.local_addr();
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");

        // Write a burst of requests without reading a single reply, then
        // read all replies: ids must come back in submission order even
        // though batching executes them together and across workers.
        let ids: Vec<u64> = (10..26).collect();
        for &id in &ids {
            let frame = Frame::Request {
                id,
                model: "mlp".to_string(),
                tenant: String::new(),
                input: request_input(n_in, id, 7),
            };
            write_frame(&mut stream, &frame).expect("write");
        }
        for &id in &ids {
            let reply = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
                .expect("read")
                .expect("frame");
            match reply {
                Frame::Response { id: rid, .. } => {
                    assert_eq!(rid, id, "{transport}: reply out of order");
                }
                other => panic!("{transport}: expected response for {id}, got {other:?}"),
            }
        }
        net.shutdown();
    }
}

#[test]
fn server_errors_arrive_as_typed_codes() {
    for transport in transports() {
        let (net, n_in) = start_net(transport, ExecBackend::Sparse, 1);
        let addr = net.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");

        let err = client
            .request("nope", &[0.0; 4])
            .expect_err("unknown model");
        assert!(matches!(
            err,
            NetError::Remote {
                code: ErrorCode::UnknownModel,
                ..
            }
        ));

        let err = client
            .request("mlp", &vec![0.0; n_in + 1])
            .expect_err("shape mismatch");
        assert!(matches!(
            err,
            NetError::Remote {
                code: ErrorCode::ShapeMismatch,
                ..
            }
        ));

        // The connection survives typed errors: a well-formed request
        // afterwards still succeeds.
        let out = client
            .request("mlp", &request_input(n_in, 1, 7))
            .expect("recovery");
        assert!(!out.outputs.is_empty());
        net.shutdown();
    }
}

#[test]
fn ping_and_model_query_work() {
    for transport in transports() {
        let (net, n_in) = start_net(transport, ExecBackend::Sparse, 1);
        let mut client = Client::connect(&net.local_addr().to_string()).expect("connect");
        client.ping().expect("ping");
        let (qn_in, qn_out) = client.model_info("mlp").expect("info");
        assert_eq!(qn_in as usize, n_in);
        assert!(qn_out > 0);
        let err = client.model_info("ghost").expect_err("unknown");
        assert!(matches!(
            err,
            NetError::Remote {
                code: ErrorCode::UnknownModel,
                ..
            }
        ));
        net.shutdown();
    }
}

#[test]
fn connection_cap_rejects_with_a_typed_frame() {
    for transport in transports() {
        let (net, _n_in, registry) = start_net_with_registry(
            transport,
            ExecBackend::Sparse,
            1,
            NetConfig {
                max_connections: 2,
                ..NetConfig::default()
            },
        );
        let addr = net.local_addr().to_string();
        let _a = Client::connect(&addr).expect("conn 1");
        let mut b = Client::connect(&addr).expect("conn 2");
        // Make sure both connections are fully admitted before probing
        // the cap (accept bookkeeping runs off the connecting thread).
        b.ping().expect("ping");

        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("tcp connect");
        let reply = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::ConnectionLimit,
                    ..
                }
            ),
            "{transport}: expected ConnectionLimit, got {reply:?}"
        );
        let rejected = registry
            .find_counter("net_connections_rejected_total", &[])
            .expect("metric")
            .get();
        assert_eq!(rejected, 1, "{transport}");
        // A capped-out connection must count ONLY as rejected: the
        // accepted counter stays at the two admitted connections, so
        // accepted - rejected is always the number actually served.
        let accepted = registry
            .find_counter("net_connections_accepted_total", &[])
            .expect("accepted metric")
            .get();
        assert_eq!(
            accepted, 2,
            "{transport}: cap rejection leaked into net_connections_accepted_total"
        );
        net.shutdown();
    }
}

#[test]
fn malformed_bytes_bump_the_decode_counter_and_close_the_connection() {
    for transport in transports() {
        let (net, _n_in, registry) =
            start_net_with_registry(transport, ExecBackend::Sparse, 1, NetConfig::default());
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");

        use std::io::Write;
        // Valid magic, hostile 4 GiB length prefix.
        let mut bytes = Frame::Ping { id: 1 }.encode();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&bytes).expect("write");

        let reply = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(
                reply,
                Frame::Error {
                    id: 0,
                    code: ErrorCode::Malformed,
                    ..
                }
            ),
            "{transport}: expected Malformed, got {reply:?}"
        );
        // The server hangs up after a protocol violation.
        assert_eq!(
            read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD).expect("eof"),
            None,
            "{transport}"
        );
        assert_eq!(
            registry
                .find_counter("net_decode_errors_total", &[])
                .expect("metric")
                .get(),
            1,
            "{transport}"
        );
        net.shutdown();
    }
}

#[test]
fn client_to_server_frame_direction_is_enforced() {
    for transport in transports() {
        let (net, _n_in) = start_net(transport, ExecBackend::Sparse, 1);
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        write_frame(&mut stream, &Frame::Pong { id: 9 }).expect("write");
        let reply = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(
                reply,
                Frame::Error {
                    id: 9,
                    code: ErrorCode::Malformed,
                    ..
                }
            ),
            "{transport}: expected Malformed for id 9, got {reply:?}"
        );
        net.shutdown();
    }
}

#[test]
fn shutdown_control_frame_drains_and_stops_the_server() {
    for transport in transports() {
        let (net, n_in) = start_net(transport, ExecBackend::Sparse, 2);
        let addr = net.local_addr().to_string();

        // Park some requests in flight on a second connection, then
        // issue the control-frame shutdown; the ack must arrive only
        // after every parked request is answered.
        let worker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let mut ok = 0u32;
                for i in 0..16u64 {
                    if c.request("mlp", &request_input(n_in, i, 5)).is_ok() {
                        ok += 1;
                    }
                }
                ok
            })
        };

        let mut controller = Client::connect(&addr).expect("connect");
        controller.shutdown_server().expect("shutdown ack");

        net.wait_for_shutdown();
        let snapshot = net.shutdown();
        assert_eq!(
            snapshot.submitted,
            snapshot.completed + snapshot.failed,
            "{transport}: drain left requests unanswered"
        );
        // The parked client either completed requests or saw clean typed
        // shutdown errors — never a protocol failure.
        let ok = worker.join().expect("worker");
        assert!(ok <= 16);

        // The listener is gone: new connections fail or are immediately
        // closed without a reply.
        match Client::connect(&addr) {
            Err(_) => {}
            Ok(mut c) => assert!(
                c.ping().is_err(),
                "{transport}: server still answering after shutdown"
            ),
        }
    }
}

#[test]
fn oversized_client_payload_is_rejected_before_allocation() {
    for transport in transports() {
        let (net, _n_in, registry) = start_net_with_registry(
            transport,
            ExecBackend::Sparse,
            1,
            NetConfig {
                max_payload: 128,
                ..NetConfig::default()
            },
        );
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        // A syntactically valid request whose payload exceeds the
        // server's cap: rejected from the header alone.
        let frame = Frame::Request {
            id: 3,
            model: "mlp".to_string(),
            tenant: String::new(),
            input: vec![1.0; 256],
        };
        write_frame(&mut stream, &frame).expect("write");
        let reply = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::Malformed,
                    ..
                }
            ),
            "{transport}: expected Malformed, got {reply:?}"
        );
        assert_eq!(
            registry
                .find_counter("net_decode_errors_total", &[])
                .expect("metric")
                .get(),
            1,
            "{transport}"
        );
        net.shutdown();
    }
}

#[test]
fn overload_surfaces_as_the_backpressure_code() {
    for transport in transports() {
        // A tiny queue and one slow worker: a pipelined burst must trip
        // admission control, and the typed code must round-trip.
        let (net, n_in, _registry) = start_net_custom(
            transport,
            ServeConfig {
                workers: 1,
                queue_depth: 1,
                max_batch: 1,
                emulate_hw_time: true,
                freq_ghz: 0.001,
                backend: ExecBackend::Simulator,
                ..ServeConfig::default()
            },
            NetConfig::default(),
        );
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        for id in 0..24u64 {
            let frame = Frame::Request {
                id,
                model: "mlp".to_string(),
                tenant: String::new(),
                input: request_input(n_in, id, 3),
            };
            write_frame(&mut stream, &frame).expect("write");
        }
        let mut overloaded = 0u32;
        for _ in 0..24 {
            match read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
                .expect("read")
                .expect("frame")
            {
                Frame::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => overloaded += 1,
                Frame::Response { .. } => {}
                other => panic!("{transport}: unexpected reply {other:?}"),
            }
        }
        assert!(
            overloaded > 0,
            "{transport}: burst never tripped admission control"
        );
        net.shutdown();
    }
}

#[test]
fn pipelining_beyond_the_reply_window_backpressures_without_disconnect() {
    // A burst deeper than `max_pending_replies` must NOT trip the
    // slow-consumer guard while the client is (eventually) reading:
    // the server stops decoding until replies drain, then resumes, and
    // every reply still arrives in FIFO order.
    for transport in transports() {
        let (net, n_in, registry) = start_net_with_registry(
            transport,
            ExecBackend::Sparse,
            2,
            NetConfig {
                max_pending_replies: 4,
                slow_consumer_grace: Some(Duration::from_secs(10)),
                ..NetConfig::default()
            },
        );
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        let ids: Vec<u64> = (0..32).collect();
        for &id in &ids {
            let frame = Frame::Request {
                id,
                model: "mlp".to_string(),
                tenant: String::new(),
                input: request_input(n_in, id, 13),
            };
            write_frame(&mut stream, &frame).expect("write");
        }
        for &id in &ids {
            let reply = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD)
                .expect("read")
                .expect("frame");
            match reply {
                Frame::Response { id: rid, .. } => {
                    assert_eq!(
                        rid, id,
                        "{transport}: reply out of order under backpressure"
                    );
                }
                other => panic!("{transport}: expected response for {id}, got {other:?}"),
            }
        }
        assert_eq!(
            registry
                .find_counter("net_slow_consumer_disconnects_total", &[])
                .expect("metric")
                .get(),
            0,
            "{transport}: backpressured pipelining misdiagnosed as a slow consumer"
        );
        net.shutdown();
    }
}

#[test]
fn slow_consumer_is_disconnected_and_counted() {
    // A client that pipelines requests but never reads replies must be
    // disconnected once its reply window stays full past the grace
    // period — on both transports — and counted exactly once.
    //
    // Service time is pinned well above the grace so the window cannot
    // drain in time: the calibration model costs 324 simulated cycles
    // per request, so freq 2e-6 GHz emulates ~160 ms per request
    // against a 40 ms grace.
    for transport in transports() {
        let (net, n_in, registry) = start_net_custom(
            transport,
            ServeConfig {
                workers: 1,
                queue_depth: 32,
                max_batch: 1,
                emulate_hw_time: true,
                freq_ghz: 2e-6,
                backend: ExecBackend::Simulator,
                ..ServeConfig::default()
            },
            NetConfig {
                max_pending_replies: 2,
                slow_consumer_grace: Some(Duration::from_millis(40)),
                ..NetConfig::default()
            },
        );
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        for id in 0..6u64 {
            let frame = Frame::Request {
                id,
                model: "mlp".to_string(),
                tenant: String::new(),
                input: request_input(n_in, id, 17),
            };
            write_frame(&mut stream, &frame).expect("write");
        }
        // Never read. The server must hang up on its own.
        let disconnects = settle_counter(
            &registry,
            "net_slow_consumer_disconnects_total",
            1,
            Duration::from_secs(5),
        );
        assert_eq!(disconnects, 1, "{transport}");

        // The socket is actually dead: reading drains any replies that
        // raced out, then hits EOF or a reset — never a hang.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        while let Ok(Some(_)) = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD) {}
        net.shutdown();
    }
}

#[test]
fn slow_loris_partial_header_hits_the_read_deadline() {
    // A connection that sends half a frame header and stalls must be
    // closed by the read deadline without counting as a decode error
    // (the bytes were not malformed, just absent) and without
    // unbounded buffering.
    for transport in transports() {
        let (net, _n_in, registry) = start_net_with_registry(
            transport,
            ExecBackend::Sparse,
            1,
            NetConfig {
                read_timeout: Some(Duration::from_millis(100)),
                ..NetConfig::default()
            },
        );
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        use std::io::Write;
        let header_prefix = &Frame::Ping { id: 1 }.encode()[..8];
        stream.write_all(header_prefix).expect("write");

        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        // The server hangs up with no reply frame within the deadline.
        match read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD) {
            Ok(None) | Err(_) => {}
            Ok(Some(frame)) => panic!("{transport}: unexpected reply {frame:?}"),
        }
        assert_eq!(
            registry
                .find_counter("net_decode_errors_total", &[])
                .expect("metric")
                .get(),
            0,
            "{transport}: read-deadline close miscounted as a decode error"
        );
        assert_eq!(
            registry
                .find_counter("net_slow_consumer_disconnects_total", &[])
                .expect("metric")
                .get(),
            0,
            "{transport}: read-deadline close miscounted as a slow consumer"
        );
        net.shutdown();
    }
}

#[test]
fn client_read_timeout_is_a_typed_timeout() {
    // A listener that accepts and never replies.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        std::thread::sleep(std::time::Duration::from_millis(500));
        drop(stream);
    });
    let mut client = Client::connect_with(
        &addr,
        ClientConfig {
            read_timeout: Some(std::time::Duration::from_millis(50)),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let err = client.ping().expect_err("must time out");
    assert!(matches!(err, NetError::Timeout { .. }), "got {err:?}");
    hold.join().expect("hold");
}

#[test]
fn telemetry_counts_frames_and_latency() {
    for transport in transports() {
        let (net, n_in, registry) =
            start_net_with_registry(transport, ExecBackend::Sparse, 1, NetConfig::default());
        let mut client = Client::connect(&net.local_addr().to_string()).expect("connect");
        for i in 0..4u64 {
            client
                .request("mlp", &request_input(n_in, i, 11))
                .expect("request");
        }
        client.ping().expect("ping");

        // Frames-out and latency are recorded after the client has
        // already read the reply bytes (threaded: on the writer thread;
        // reactor: at flush completion on the loop), so give the
        // metrics a bounded moment to settle before asserting exactly.
        let frames_out =
            settle_counter(&registry, "net_frames_out_total", 5, Duration::from_secs(2));
        let latency_hist = registry
            .find_histogram("net_request_latency_us", &[])
            .expect("metric");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while latency_hist.count() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let frames_in = registry
            .find_counter("net_frames_in_total", &[])
            .expect("metric")
            .get();
        assert_eq!(frames_in, 5, "{transport}");
        assert_eq!(frames_out, 5, "{transport}");
        assert_eq!(
            registry
                .find_counter("net_requests_total", &[])
                .expect("metric")
                .get(),
            4,
            "{transport}"
        );
        assert_eq!(latency_hist.count(), 4, "{transport}");
        assert!(
            registry
                .find_gauge("net_connections", &[])
                .expect("metric")
                .get()
                >= 1,
            "{transport}"
        );
        net.shutdown();
    }
}

/// A stub endpoint that sheds the first `shed` requests with
/// `Overloaded`, then answers; returns how many requests it saw.
fn overload_stub(shed: u32) -> (std::net::SocketAddr, std::thread::JoinHandle<u32>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || -> u32 {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut attempts = 0u32;
        while let Ok(Some(frame)) = read_frame(&mut stream, cs_net::DEFAULT_MAX_PAYLOAD) {
            let Frame::Request {
                id, model, input, ..
            } = frame
            else {
                break;
            };
            attempts += 1;
            let reply = if attempts <= shed {
                Frame::Error {
                    id,
                    code: ErrorCode::Overloaded,
                    tenant: String::new(),
                    detail: "backpressure".to_string(),
                }
            } else {
                Frame::Response {
                    id,
                    model,
                    outputs: input,
                    cycles: 1,
                    energy_pj: 0.0,
                    batch_size: 1,
                    worker: 0,
                    latency_us: 1,
                    node: "stub".to_string(),
                }
            };
            write_frame(&mut stream, &reply).expect("reply");
            if attempts > shed {
                break;
            }
        }
        attempts
    });
    (addr, handle)
}

#[test]
fn request_with_retry_backs_off_through_overload() {
    let (addr, server) = overload_stub(2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let policy = RetryPolicy {
        max_retries: 5,
        base_us: 10,
        max_us: 200,
        seed: 1,
    };
    let resp = client
        .request_with_retry("mlp", &[1.0, 2.0], &policy)
        .expect("retried through overload");
    assert_eq!(resp.node, "stub");
    assert_eq!(resp.outputs, vec![1.0, 2.0]);
    // Two sheds plus the success: the policy retried exactly as needed.
    assert_eq!(server.join().expect("stub"), 3);
}

#[test]
fn request_with_retry_budget_is_bounded() {
    // The stub sheds more than the budget allows: the last Overloaded
    // error must surface, after exactly 1 + max_retries attempts.
    let (addr, server) = overload_stub(100);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let policy = RetryPolicy {
        max_retries: 2,
        base_us: 10,
        max_us: 200,
        seed: 9,
    };
    let err = client
        .request_with_retry("mlp", &[0.5], &policy)
        .expect_err("budget exhausted");
    assert!(err.is_overloaded());
    drop(client); // closes the stream so the stub's read loop ends
    assert_eq!(server.join().expect("stub"), 3);
}
