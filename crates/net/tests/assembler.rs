//! Chunk-boundary torture tests for [`FrameAssembler`]: the reactor's
//! incremental decoder must be byte-for-byte equivalent to whole-buffer
//! decoding no matter where the socket splits the stream — every single
//! boundary, byte-at-a-time trickles, seeded random chunkings, splits
//! inside the 16-byte header, and frames far larger than any one chunk.
//!
//! The differential oracle is [`Frame::decode_with_limit`] over the
//! complete byte stream — the exact entry point the blocking transport
//! uses — so agreement here is agreement between the two data planes.

use cs_net::wire::{ErrorCode, Frame, WireError, HEADER_LEN};
use cs_net::{FrameAssembler, DEFAULT_MAX_PAYLOAD};

/// SplitMix64 — the repo-standard deterministic generator (seeded, no
/// dependency on the conformance crate, which depends on this one).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A representative multi-frame stream: every payload shape the wire
/// carries (empty, strings, float vectors, NaN bit patterns).
fn sample_stream() -> (Vec<Frame>, Vec<u8>) {
    let frames = vec![
        Frame::Ping { id: 1 },
        Frame::Request {
            id: 2,
            model: "mlp".to_string(),
            tenant: "acme".to_string(),
            input: vec![1.5, f32::NAN, -0.0, 3.25, f32::INFINITY],
        },
        Frame::Query {
            id: 3,
            model: "worker-7".to_string(),
        },
        Frame::Error {
            id: 4,
            code: ErrorCode::Overloaded,
            tenant: "acme".to_string(),
            detail: "queue full".to_string(),
        },
        Frame::Response {
            id: 5,
            model: "mlp".to_string(),
            outputs: vec![0.0; 17],
            cycles: 12_345,
            energy_pj: 6.5,
            batch_size: 3,
            worker: 2,
            latency_us: 250,
            node: "node-a".to_string(),
        },
        Frame::Shutdown { id: 6 },
    ];
    let mut bytes = Vec::new();
    for f in &frames {
        bytes.extend_from_slice(&f.encode());
    }
    (frames, bytes)
}

/// Whole-buffer oracle: decode `bytes` with the blocking entry point.
fn oracle_decode(bytes: &[u8], max_payload: u32) -> Result<Vec<Frame>, WireError> {
    let mut frames = Vec::new();
    let mut offset = 0;
    loop {
        match Frame::decode_with_limit(&bytes[offset..], max_payload)? {
            Some((frame, used)) => {
                frames.push(frame);
                offset += used;
            }
            None => return Ok(frames),
        }
    }
}

/// Feeds `bytes` to a fresh assembler in the given chunks, draining
/// after every push; also asserts the buffered-bytes invariant at each
/// step.
fn assemble_chunked(chunks: &[&[u8]], max_payload: u32) -> Result<Vec<Frame>, WireError> {
    let mut asm = FrameAssembler::new(max_payload);
    let mut frames = Vec::new();
    for chunk in chunks {
        asm.push(chunk);
        while let Some(f) = asm.next_frame()? {
            frames.push(f);
        }
        assert!(
            asm.buffered() <= asm.buffered_bound(),
            "buffered {} exceeds bound {}",
            asm.buffered(),
            asm.buffered_bound()
        );
    }
    Ok(frames)
}

fn assert_frames_eq(got: &[Frame], want: &[Frame], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: frame count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        // Compare re-encoded bytes: exact, including NaN bit patterns.
        assert_eq!(g.encode(), w.encode(), "{context}: frame {i} differs");
    }
}

#[test]
fn every_single_split_point_reassembles_identically() {
    let (frames, bytes) = sample_stream();
    for split in 1..bytes.len() {
        let chunks = [&bytes[..split], &bytes[split..]];
        let got = assemble_chunked(&chunks, DEFAULT_MAX_PAYLOAD).expect("assemble");
        assert_frames_eq(&got, &frames, &format!("split at {split}"));
    }
}

#[test]
fn byte_at_a_time_trickle_reassembles_identically() {
    let (frames, bytes) = sample_stream();
    let chunks: Vec<&[u8]> = bytes.chunks(1).collect();
    let got = assemble_chunked(&chunks, DEFAULT_MAX_PAYLOAD).expect("assemble");
    assert_frames_eq(&got, &frames, "byte-at-a-time");
}

#[test]
fn header_straddling_chunks_reassemble_identically() {
    // 7 does not divide 16: every frame header gets split across chunks
    // somewhere in the stream.
    let (frames, bytes) = sample_stream();
    for width in [2usize, 3, 5, 7, 11, 13] {
        let chunks: Vec<&[u8]> = bytes.chunks(width).collect();
        let got = assemble_chunked(&chunks, DEFAULT_MAX_PAYLOAD).expect("assemble");
        assert_frames_eq(&got, &frames, &format!("chunk width {width}"));
    }
}

#[test]
fn seeded_random_chunkings_reassemble_identically() {
    let (frames, bytes) = sample_stream();
    let mut rng = SplitMix64(0xC0FF_EE00_2026_0808);
    for round in 0..200 {
        let mut chunks: Vec<&[u8]> = Vec::new();
        let mut offset = 0;
        while offset < bytes.len() {
            let take = 1 + rng.below(48) as usize;
            let end = (offset + take).min(bytes.len());
            chunks.push(&bytes[offset..end]);
            offset = end;
        }
        let got = assemble_chunked(&chunks, DEFAULT_MAX_PAYLOAD).expect("assemble");
        assert_frames_eq(&got, &frames, &format!("random round {round}"));
    }
}

#[test]
fn large_frame_spans_many_chunks_without_overbuffering() {
    // A 40 KiB request crossed by 4097-byte chunks (odd size, never
    // aligned with the frame): the assembler holds at most one partial
    // frame and releases the buffer once the frame completes.
    let frame = Frame::Request {
        id: 99,
        model: "big".to_string(),
        tenant: String::new(),
        input: vec![0.125; 10_000],
    };
    let mut bytes = frame.encode();
    bytes.extend_from_slice(&Frame::Ping { id: 100 }.encode());
    let chunks: Vec<&[u8]> = bytes.chunks(4097).collect();
    let got = assemble_chunked(&chunks, DEFAULT_MAX_PAYLOAD).expect("assemble");
    assert_frames_eq(&got, &[frame, Frame::Ping { id: 100 }], "4097-byte chunks");
}

#[test]
fn partial_header_stall_buffers_a_bounded_sliver() {
    // The slow-loris shape: a client sends half a header and stops.
    // The assembler must neither error nor grow — it just holds the
    // sliver until the read deadline (enforced by the server) closes
    // the connection.
    let bytes = Frame::Ping { id: 7 }.encode();
    let mut asm = FrameAssembler::new(DEFAULT_MAX_PAYLOAD);
    asm.push(&bytes[..HEADER_LEN / 2]);
    assert!(matches!(asm.next_frame(), Ok(None)));
    assert_eq!(asm.buffered(), HEADER_LEN / 2);
    assert!(asm.failure().is_none());
    // Completing the header+frame later still decodes cleanly.
    asm.push(&bytes[HEADER_LEN / 2..]);
    let frame = asm.next_frame().expect("decode").expect("frame");
    assert_eq!(frame.encode(), bytes);
    assert_eq!(asm.buffered(), 0);
}

#[test]
fn error_taxonomy_matches_whole_buffer_decode_under_chunking() {
    let good = sample_stream().1;
    // One corrupt stream per WireError variant reachable from bytes.
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    let mut bad_version = good.clone();
    bad_version[2] = 0xEE;
    let mut unknown_type = good.clone();
    unknown_type[3] = 0x7F;
    let mut oversized = good.clone();
    oversized[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    // Corruption mid-stream, after one valid frame.
    let ping_len = Frame::Ping { id: 1 }.encode().len();
    let mut mid_stream = good.clone();
    mid_stream[ping_len] ^= 0xFF;

    for (name, stream) in [
        ("bad magic", bad_magic),
        ("bad version", bad_version),
        ("unknown type", unknown_type),
        ("oversized", oversized),
        ("mid-stream corruption", mid_stream),
    ] {
        let want = oracle_decode(&stream, DEFAULT_MAX_PAYLOAD)
            .expect_err(&format!("{name}: oracle must reject"));
        for width in [1usize, 3, 16, 64] {
            let chunks: Vec<&[u8]> = stream.chunks(width).collect();
            let got = assemble_chunked(&chunks, DEFAULT_MAX_PAYLOAD)
                .expect_err(&format!("{name}: assembler must reject (width {width})"));
            assert_eq!(
                got, want,
                "{name}: chunked error differs from whole-buffer error (width {width})"
            );
        }
    }
}

#[test]
fn payload_cap_rejects_from_the_header_before_buffering_the_body() {
    // A frame whose declared length exceeds the cap is rejected the
    // moment the 16-byte header is complete — the (hostile, huge)
    // payload is never buffered, even when it trickles in afterwards.
    let frame = Frame::Request {
        id: 1,
        model: "m".to_string(),
        tenant: String::new(),
        input: vec![1.0; 512],
    };
    let bytes = frame.encode();
    let cap = 128u32;
    let want = oracle_decode(&bytes, cap).expect_err("oracle must reject");
    assert!(matches!(want, WireError::Oversized { .. }), "{want:?}");

    let mut asm = FrameAssembler::new(cap);
    asm.push(&bytes[..HEADER_LEN]);
    let got = asm.next_frame().expect_err("reject from header");
    assert_eq!(got, want);
    // Later pushes of the oversized body are discarded, not buffered.
    asm.push(&bytes[HEADER_LEN..]);
    assert_eq!(asm.buffered(), 0, "condemned stream must not buffer");
    assert_eq!(asm.next_frame().expect_err("latched"), want);
}
