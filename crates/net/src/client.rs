//! Blocking client for the cs-net protocol.
//!
//! [`Client`] owns one TCP connection and issues one request at a time
//! (the load generator opens several clients for concurrency, which
//! matches how the server scales — per-connection threads). Replies are
//! matched against the request id and frame type; anything else is a
//! [`NetError::Protocol`]. Server-side failures arrive as typed
//! [`crate::wire::ErrorCode`]s in [`NetError::Remote`], so a caller can
//! distinguish backpressure ([`NetError::is_overloaded`]) from real
//! errors.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::NetError;
use crate::transport::{read_frame, write_frame};
use crate::wire::{Frame, WireModelStatus, DEFAULT_MAX_PAYLOAD};

/// Client-side connection settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Read deadline per reply (covers queueing and execution on the
    /// server). `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Write deadline per request.
    pub write_timeout: Option<Duration>,
    /// Largest reply payload this client will accept.
    pub max_payload: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// A successful inference reply, with the server-side execution
/// metadata the response frame carries.
#[derive(Debug, Clone, PartialEq)]
pub struct NetResponse {
    /// Model that produced the outputs.
    pub model: String,
    /// Output activations.
    pub outputs: Vec<f32>,
    /// Simulated accelerator cycles for the batch this request rode in.
    pub cycles: u64,
    /// Simulated energy for the batch, picojoules.
    pub energy_pj: f64,
    /// How many requests shared the batch.
    pub batch_size: u32,
    /// Worker lane that executed the batch.
    pub worker: u32,
    /// Server-side queue+execution latency, microseconds.
    pub latency_us: u64,
    /// Identity of the serving node that executed the request
    /// ("local" for a standalone server, the registered worker name
    /// when routed through an orchestrator).
    pub node: String,
}

/// Bounded exponential-backoff policy for retrying
/// [`crate::wire::ErrorCode::Overloaded`] replies (opt-in; see
/// [`Client::request_with_retry`]). Sleep before attempt `k` (1-based)
/// is `min(base_us << (k - 1), max_us)` plus a jitter drawn uniformly
/// from `[0, sleep / 2]` by a SplitMix64 PRNG seeded from `seed`, so
/// load sweeps that retry stay seed-replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, microseconds.
    pub base_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_us: u64,
    /// Seed for the jitter PRNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base_us: 200,
            max_us: 50_000,
            seed: 0,
        }
    }
}

/// Deterministic jitter source for [`RetryPolicy`] (SplitMix64, same
/// generator the load shapes use).
#[derive(Debug, Clone)]
pub(crate) struct RetryJitter {
    state: u64,
}

impl RetryJitter {
    pub(crate) fn new(seed: u64) -> Self {
        RetryJitter { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound]`.
    pub(crate) fn up_to(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % (bound + 1)
    }
}

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_payload: u32,
    next_id: u64,
}

impl Client {
    /// Connects with default settings.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] / [`NetError::Timeout`] when the server is
    /// unreachable, [`NetError::InvalidConfig`] for a bad address.
    pub fn connect(addr: &str) -> Result<Client, NetError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit settings.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> Result<Client, NetError> {
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| NetError::InvalidConfig(format!("bad address {addr:?}: {e}")))?
            .collect();
        let first = resolved.first().ok_or_else(|| {
            NetError::InvalidConfig(format!("address {addr:?} resolves to nothing"))
        })?;
        let stream = TcpStream::connect_timeout(first, cfg.connect_timeout)
            .map_err(|e| NetError::from_io("connect", &e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(cfg.read_timeout)
            .map_err(|e| NetError::from_io("set read timeout", &e))?;
        stream
            .set_write_timeout(cfg.write_timeout)
            .map_err(|e| NetError::from_io("set write timeout", &e))?;
        Ok(Client {
            stream,
            max_payload: cfg.max_payload,
            next_id: 1,
        })
    }

    fn round_trip(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        write_frame(&mut self.stream, frame)?;
        match read_frame(&mut self.stream, self.max_payload)? {
            Some(reply) => Ok(reply),
            None => Err(NetError::ConnectionClosed),
        }
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn check_id(sent: u64, got: u64, what: &str) -> Result<(), NetError> {
        if sent == got {
            Ok(())
        } else {
            Err(NetError::Protocol(format!(
                "{what} reply id {got} does not match request id {sent}"
            )))
        }
    }

    /// Runs one inference and blocks for the reply.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for server-side failures (unknown model,
    /// shape mismatch, overload, shutdown), transport errors otherwise.
    pub fn request(&mut self, model: &str, input: &[f32]) -> Result<NetResponse, NetError> {
        self.request_as(model, "", input)
    }

    /// Runs one inference billed against `tenant` and blocks for the
    /// reply. An empty tenant is the server's "default" lane.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; additionally, a tenant whose quota is
    /// exhausted gets [`crate::wire::ErrorCode::Overloaded`] with the
    /// tenant echoed in the error frame.
    pub fn request_as(
        &mut self,
        model: &str,
        tenant: &str,
        input: &[f32],
    ) -> Result<NetResponse, NetError> {
        let id = self.take_id();
        let reply = self.round_trip(&Frame::Request {
            id,
            model: model.to_string(),
            tenant: tenant.to_string(),
            input: input.to_vec(),
        })?;
        match reply {
            Frame::Response {
                id: rid,
                model,
                outputs,
                cycles,
                energy_pj,
                batch_size,
                worker,
                latency_us,
                node,
            } => {
                Self::check_id(id, rid, "response")?;
                Ok(NetResponse {
                    model,
                    outputs,
                    cycles,
                    energy_pj,
                    batch_size,
                    worker,
                    latency_us,
                    node,
                })
            }
            Frame::Error {
                id: rid,
                code,
                tenant,
                detail,
            } => {
                Self::check_id(id, rid, "error")?;
                Err(NetError::Remote {
                    code,
                    tenant,
                    detail,
                })
            }
            other => Err(NetError::Protocol(format!(
                "expected response or error, got {:?}",
                other.frame_type()
            ))),
        }
    }

    /// Like [`Client::request`], but sleeps out a bounded exponential
    /// backoff and retries when the server answers `Overloaded`. Any
    /// other failure — transport, protocol, or a different remote code
    /// — propagates immediately; when the retry budget runs out the
    /// last `Overloaded` error is returned.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn request_with_retry(
        &mut self,
        model: &str,
        input: &[f32],
        policy: &RetryPolicy,
    ) -> Result<NetResponse, NetError> {
        self.request_with_retry_as(model, "", input, policy)
    }

    /// [`Client::request_with_retry`] billed against `tenant`: a tenant
    /// over quota draws the same `Overloaded` backoff as a full
    /// admission queue, so per-tenant shedding and global shedding are
    /// retried identically.
    ///
    /// # Errors
    ///
    /// As [`Client::request_as`].
    pub fn request_with_retry_as(
        &mut self,
        model: &str,
        tenant: &str,
        input: &[f32],
        policy: &RetryPolicy,
    ) -> Result<NetResponse, NetError> {
        let mut jitter = RetryJitter::new(policy.seed);
        let mut attempt = 0u32;
        loop {
            match self.request_as(model, tenant, input) {
                Err(e) if e.is_overloaded() && attempt < policy.max_retries => {
                    let shift = attempt.min(63);
                    let sleep = policy
                        .base_us
                        .checked_shl(shift)
                        .unwrap_or(u64::MAX)
                        .min(policy.max_us.max(policy.base_us));
                    let sleep = sleep.saturating_add(jitter.up_to(sleep / 2));
                    std::thread::sleep(Duration::from_micros(sleep));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Liveness probe; returns when the matching pong arrives.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`NetError::Protocol`] for a wrong reply.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let id = self.take_id();
        match self.round_trip(&Frame::Ping { id })? {
            Frame::Pong { id: rid } => Self::check_id(id, rid, "pong"),
            other => Err(NetError::Protocol(format!(
                "expected pong, got {:?}",
                other.frame_type()
            ))),
        }
    }

    /// Asks the server for a model's input/output widths.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`crate::wire::ErrorCode::UnknownModel`]
    /// when the name is not registered; transport errors otherwise.
    pub fn model_info(&mut self, model: &str) -> Result<(u32, u32), NetError> {
        let id = self.take_id();
        let reply = self.round_trip(&Frame::Query {
            id,
            model: model.to_string(),
        })?;
        match reply {
            Frame::Info {
                id: rid,
                n_in,
                n_out,
                ..
            } => {
                Self::check_id(id, rid, "info")?;
                Ok((n_in, n_out))
            }
            Frame::Error {
                id: rid,
                code,
                tenant,
                detail,
            } => {
                Self::check_id(id, rid, "error")?;
                Err(NetError::Remote {
                    code,
                    tenant,
                    detail,
                })
            }
            other => Err(NetError::Protocol(format!(
                "expected info, got {:?}",
                other.frame_type()
            ))),
        }
    }

    /// Parses a ModelList/Error reply shared by the lifecycle calls.
    fn expect_model_list(
        id: u64,
        reply: Frame,
        what: &str,
    ) -> Result<Vec<WireModelStatus>, NetError> {
        match reply {
            Frame::ModelList { id: rid, models } => {
                Self::check_id(id, rid, what)?;
                Ok(models)
            }
            Frame::Error {
                id: rid,
                code,
                tenant,
                detail,
            } => {
                Self::check_id(id, rid, "error")?;
                Err(NetError::Remote {
                    code,
                    tenant,
                    detail,
                })
            }
            other => Err(NetError::Protocol(format!(
                "expected model list, got {:?}",
                other.frame_type()
            ))),
        }
    }

    /// Hot-loads `model@version` from the server's on-disk registry —
    /// as the new primary when `canary_pct` is 0, as a canary taking
    /// `canary_pct`% of the model's traffic otherwise. Returns the
    /// post-load resident set.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with
    /// [`crate::wire::ErrorCode::ModelNotFound`] when the registry has
    /// no such container, `VersionMismatch` for shape or promotion
    /// inconsistencies, `RegistryFull` when the memory budget cannot
    /// fit it; transport errors otherwise.
    pub fn load_model(
        &mut self,
        model: &str,
        version: u32,
        canary_pct: u8,
    ) -> Result<Vec<WireModelStatus>, NetError> {
        let id = self.take_id();
        let reply = self.round_trip(&Frame::LoadModel {
            id,
            model: model.to_string(),
            version,
            canary_pct,
        })?;
        Self::expect_model_list(id, reply, "load-model ack")
    }

    /// Unloads a resident `model@version` (drains its in-flight
    /// requests first). Returns the post-unload resident set.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with
    /// [`crate::wire::ErrorCode::ModelNotFound`] when the version is
    /// not resident, `VersionMismatch` when it is the primary of a
    /// multi-version model; transport errors otherwise.
    pub fn unload_model(
        &mut self,
        model: &str,
        version: u32,
    ) -> Result<Vec<WireModelStatus>, NetError> {
        let id = self.take_id();
        let reply = self.round_trip(&Frame::UnloadModel {
            id,
            model: model.to_string(),
            version,
        })?;
        Self::expect_model_list(id, reply, "unload-model ack")
    }

    /// Lists the server's resident model versions, sorted by
    /// `(name, version)`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`NetError::Protocol`] for a wrong reply.
    pub fn list_models(&mut self) -> Result<Vec<WireModelStatus>, NetError> {
        let id = self.take_id();
        let reply = self.round_trip(&Frame::ListModels { id })?;
        Self::expect_model_list(id, reply, "model list")
    }

    /// Tells the server to drain all in-flight work and stop. The ack
    /// arrives only after the drain completes, so when this returns the
    /// server has answered every request it accepted.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`NetError::Protocol`] for a wrong reply.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let id = self.take_id();
        match self.round_trip(&Frame::Shutdown { id })? {
            Frame::ShutdownAck { id: rid } => Self::check_id(id, rid, "shutdown ack"),
            other => Err(NetError::Protocol(format!(
                "expected shutdown ack, got {:?}",
                other.frame_type()
            ))),
        }
    }
}
