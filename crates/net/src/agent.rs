//! The worker-side cluster agent.
//!
//! A worker node is an ordinary [`crate::NetServer`] (the request
//! plane) plus a [`WorkerAgent`] (the control plane): one long-lived
//! TCP connection to the orchestrator that carries the
//! [`Frame::Register`] handshake, periodic [`Frame::Heartbeat`]
//! beacons, and orchestrator-initiated shutdown. The agent joins
//! synchronously — [`WorkerAgent::join`] returns only after the
//! orchestrator acked the registration — then heartbeats from a
//! background thread.
//!
//! When the orchestrator sends [`Frame::Shutdown`] down the control
//! connection, the agent drains the local serving runtime through the
//! [`crate::NetShutdownHandle`] (every admitted request is answered
//! first), acks, and unblocks
//! [`crate::NetServer::wait_for_shutdown`] — the cascade that lets one
//! `cs-netload --shutdown` wind down a whole cluster.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::server::NetShutdownHandle;
use crate::transport::{read_frame, write_frame};
use crate::wire::{Frame, DEFAULT_MAX_PAYLOAD};

/// How a worker enrolls with its orchestrator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentConfig {
    /// Orchestrator control address (`host:port`).
    pub orchestrator: String,
    /// Unique worker name to register under.
    pub worker: String,
    /// Address where this worker's request plane listens (what the
    /// orchestrator routes client requests to).
    pub serve_addr: String,
    /// Registry names of the models this worker serves.
    pub models: Vec<String>,
    /// TCP connect deadline for the control connection.
    pub connect_timeout: Duration,
}

impl AgentConfig {
    /// Config with the default connect timeout.
    pub fn new(
        orchestrator: impl Into<String>,
        worker: impl Into<String>,
        serve_addr: impl Into<String>,
        models: Vec<String>,
    ) -> Self {
        AgentConfig {
            orchestrator: orchestrator.into(),
            worker: worker.into(),
            serve_addr: serve_addr.into(),
            models,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// The running control-plane agent. Dropping it (or calling
/// [`WorkerAgent::leave`]) deregisters best-effort and stops the
/// heartbeat thread.
pub struct WorkerAgent {
    stop: Arc<AtomicBool>,
    stream: TcpStream,
    thread: Option<JoinHandle<()>>,
    worker: String,
}

impl std::fmt::Debug for WorkerAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerAgent")
            .field("worker", &self.worker)
            .finish_non_exhaustive()
    }
}

impl WorkerAgent {
    /// Dials the orchestrator, registers, and starts heartbeating.
    /// Returns once the orchestrator acked the registration, so a
    /// worker that comes back from this call is routable.
    ///
    /// `shutdown` is the local frontend's handle: an
    /// orchestrator-initiated shutdown drains the serving runtime
    /// through it before acking.
    ///
    /// # Errors
    ///
    /// Transport errors reaching the orchestrator,
    /// [`NetError::Remote`] when it refuses the registration (e.g. a
    /// duplicate worker name), [`NetError::Protocol`] for a
    /// non-protocol reply.
    pub fn join(cfg: AgentConfig, shutdown: NetShutdownHandle) -> Result<WorkerAgent, NetError> {
        let resolved: Vec<SocketAddr> = cfg
            .orchestrator
            .to_socket_addrs()
            .map_err(|e| {
                NetError::InvalidConfig(format!("bad address {:?}: {e}", cfg.orchestrator))
            })?
            .collect();
        let first = resolved.first().ok_or_else(|| {
            NetError::InvalidConfig(format!(
                "address {:?} resolves to nothing",
                cfg.orchestrator
            ))
        })?;
        let mut stream = TcpStream::connect_timeout(first, cfg.connect_timeout)
            .map_err(|e| NetError::from_io("connect to orchestrator", &e))?;
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &Frame::Register {
                id: 1,
                worker: cfg.worker.clone(),
                addr: cfg.serve_addr.clone(),
                models: cfg.models.clone(),
            },
        )?;
        let heartbeat_ms = match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)? {
            Some(Frame::RegisterAck { heartbeat_ms, .. }) => heartbeat_ms.max(1),
            Some(Frame::Error {
                code,
                tenant,
                detail,
                ..
            }) => {
                return Err(NetError::Remote {
                    code,
                    tenant,
                    detail,
                })
            }
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "expected register ack, got {:?}",
                    other.frame_type()
                )))
            }
            None => return Err(NetError::ConnectionClosed),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let control = stream
            .try_clone()
            .map_err(|e| NetError::from_io("clone control stream", &e))?;
        let thread = {
            let stop = Arc::clone(&stop);
            let worker = cfg.worker.clone();
            std::thread::Builder::new()
                .name(format!("cs-net-agent-{worker}"))
                .spawn(move || control_loop(control, &worker, heartbeat_ms, &stop, &shutdown))
                .map_err(|e| NetError::InvalidConfig(format!("spawning agent thread: {e}")))?
        };
        Ok(WorkerAgent {
            stop,
            stream,
            thread: Some(thread),
            worker: cfg.worker,
        })
    }

    /// Deregisters best-effort and stops the heartbeat thread. Safe to
    /// call after an orchestrator-initiated shutdown already ended the
    /// control loop.
    pub fn leave(mut self) {
        self.stop_and_join();
    }

    /// Kills the control connection abruptly — no deregister, no
    /// goodbye — so the orchestrator sees this worker exactly as it
    /// would see a crashed process. Failover tests use this to
    /// simulate node death in-process.
    pub fn crash(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Best-effort goodbye so the orchestrator can evict immediately
        // instead of waiting out the heartbeat deadline.
        let mut stream = self.stream.try_clone().ok();
        if let Some(s) = stream.as_mut() {
            let _ = write_frame(
                s,
                &Frame::Deregister {
                    id: 0,
                    worker: self.worker.clone(),
                },
            );
        }
        // Unblock a reader stuck in a long read.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerAgent {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Heartbeats on schedule and services orchestrator-initiated control
/// frames until the connection ends or the owner stops the agent.
fn control_loop(
    mut stream: TcpStream,
    worker: &str,
    heartbeat_ms: u32,
    stop: &AtomicBool,
    shutdown: &NetShutdownHandle,
) {
    let interval = Duration::from_millis(u64::from(heartbeat_ms));
    // Short read timeout: each wakeup interleaves "is it time to
    // heartbeat" with "did the orchestrator say anything".
    let _ = stream.set_read_timeout(Some(
        interval
            .min(Duration::from_millis(50))
            .max(Duration::from_millis(1)),
    ));
    let mut seq = 1u64;
    let mut last_beat = Instant::now();
    // Register counts as the first liveness proof; the first beat goes
    // out one interval later.
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if last_beat.elapsed() >= interval {
            seq += 1;
            let beat = Frame::Heartbeat {
                id: seq,
                worker: worker.to_string(),
                outstanding: 0,
            };
            if write_frame(&mut stream, &beat).is_err() {
                break; // orchestrator gone; keep serving standalone
            }
            last_beat = Instant::now();
        }
        match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD) {
            Ok(Some(Frame::Shutdown { id })) => {
                // Drain every admitted request locally, ack so the
                // orchestrator knows the drain finished, and unblock
                // the frontend owner's wait_for_shutdown.
                shutdown.initiate();
                let _ = write_frame(&mut stream, &Frame::ShutdownAck { id });
                break;
            }
            Ok(Some(Frame::DeregisterAck { .. })) => break,
            Ok(Some(Frame::Ping { id })) => {
                if write_frame(&mut stream, &Frame::Pong { id }).is_err() {
                    break;
                }
            }
            // Anything else from the orchestrator is ignorable chatter.
            Ok(Some(_)) => {}
            Ok(None) => break, // orchestrator closed the control plane
            Err(NetError::Timeout { .. }) => {}
            Err(_) => break,
        }
    }
}
