//! Blocking frame transport over any `Read`/`Write` pair.
//!
//! [`read_frame`] and [`write_frame`] are the only places the codec
//! touches I/O; both sides of the protocol (server connection threads,
//! the blocking client) share them, and tests drive them with in-memory
//! cursors. The reader distinguishes a peer that closed *at* a frame
//! boundary (`Ok(None)`, a clean goodbye) from one that died mid-frame
//! ([`WireError::Truncated`] wrapped in [`NetError::Wire`]).

use std::io::{ErrorKind, Read, Write};

use crate::error::NetError;
use crate::wire::{decode_payload, parse_header, Frame, WireError, HEADER_LEN};

/// Writes one frame and flushes.
///
/// # Errors
///
/// [`NetError::Io`] / [`NetError::Timeout`] from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), NetError> {
    let bytes = frame.encode();
    w.write_all(&bytes)
        .map_err(|e| NetError::from_io("write frame", &e))?;
    w.flush().map_err(|e| NetError::from_io("flush frame", &e))
}

/// Reads one whole frame. `Ok(None)` means the peer closed the stream
/// cleanly at a frame boundary.
///
/// The header is read and validated first, so a hostile length prefix
/// is rejected while only 16 bytes have been buffered; the payload
/// allocation is bounded by `max_payload`.
///
/// # Errors
///
/// [`NetError::Wire`] for malformed bytes (including a mid-frame EOF,
/// reported as [`WireError::Truncated`]), [`NetError::Timeout`] when a
/// read deadline elapses, [`NetError::Io`] otherwise.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Option<Frame>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(NetError::Wire(WireError::Truncated {
                    have: filled,
                    need: HEADER_LEN,
                }));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io("read frame header", &e)),
        }
    }
    let h = parse_header(&header, max_payload)?;
    let need = h.payload_len as usize;
    let mut payload = vec![0u8; need];
    let mut got = 0usize;
    while got < need {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(NetError::Wire(WireError::Truncated {
                    have: HEADER_LEN + got,
                    need: HEADER_LEN + need,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io("read frame payload", &e)),
        }
    }
    Ok(Some(decode_payload(&h, &payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::DEFAULT_MAX_PAYLOAD;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = vec![
            Frame::Ping { id: 1 },
            Frame::Request {
                id: 2,
                model: "mlp".to_string(),
                tenant: "t0".to_string(),
                input: vec![0.5, -0.5],
            },
            Frame::Shutdown { id: 3 },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        let mut r = Cursor::new(buf);
        for f in &frames {
            let got = read_frame(&mut r, DEFAULT_MAX_PAYLOAD)
                .expect("read")
                .expect("frame");
            assert_eq!(&got, f);
        }
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_PAYLOAD).expect("eof"), None);
    }

    #[test]
    fn eof_mid_header_and_mid_payload_are_truncations() {
        let bytes = Frame::Request {
            id: 2,
            model: "mlp".to_string(),
            tenant: String::new(),
            input: vec![0.5, -0.5],
        }
        .encode();
        let mut r = Cursor::new(bytes[..7].to_vec());
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            NetError::Wire(WireError::Truncated { have: 7, .. })
        ));
        let mut r = Cursor::new(bytes[..bytes.len() - 2].to_vec());
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            NetError::Wire(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_stops_at_the_header() {
        let mut bytes = Frame::Ping { id: 1 }.encode();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        // Plenty of garbage after the header: the reader must error on
        // the header alone, never attempting the 4 GiB payload.
        bytes.extend_from_slice(&[0u8; 64]);
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            NetError::Wire(WireError::Oversized { .. })
        ));
    }
}
