//! The event-driven network frontend (Linux only).
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  clients ──TCP──▶  │ event loop: epoll { listener, wake pipe,   │
//!                    │   N nonblocking conns }                    │
//!                    │  · FrameAssembler per conn (incremental    │
//!                    │    decode)                                 │
//!                    │  · pending VecDeque per conn (FIFO reply   │
//!                    │    order under pipelining)                 │
//!                    │  · WriteBuffer per conn (coalesced,        │
//!                    │    backpressure-aware flush)               │
//!                    └───────▲────────────────────┬───────────────┘
//!                            │ wake byte          │ submit → Ticket
//!                    ┌───────┴────────┐   ┌───────▼───────────────┐
//!                    │ completion     │◀──│ cs_serve worker lanes │
//!                    │ pump threads   │   └───────────────────────┘
//!                    │ (ticket.wait)  │
//!                    └────────────────┘
//! ```
//!
//! One loop thread owns every socket; a small fixed pool of completion
//! threads (O(workers), not O(connections)) blocks on serve tickets
//! and posts finished replies back through a mutex-guarded queue plus
//! a [`crate::poll::WakePipe`] byte. Per-connection reply order is a
//! `pending` queue of slots — `Waiting(seq)` placeholders flip to
//! `Done(frame)` as completions land, and the flush side only encodes
//! while the queue's *front* is done, so pipelined replies leave in
//! submission order even when batches complete out of order.
//!
//! Semantics are deliberately identical to the threaded transport
//! (which doubles as its conformance oracle — see `tests/loopback.rs`):
//! the same connection cap, read/write deadlines, typed error frames,
//! drain-then-ack shutdown, slow-consumer disconnects, and metric
//! increment points.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cs_registry::RegistryStore;
use cs_serve::{DrainHandle, InferRequest, Server, Ticket};
use cs_telemetry::Clock;

use crate::assembler::{FrameAssembler, WriteBuffer};
use crate::error::NetError;
use crate::poll::{
    Epoll, EpollEvent, WakePipe, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::server::{lifecycle_reply, query_reply, NetConfig, NetMetrics};
use crate::wire::{ErrorCode, Frame};

/// epoll token for the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// epoll token for the wake pipe's read end.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_BASE: u64 = 2;

/// Loop tick: upper bound on deadline-check latency.
const TICK_MS: i32 = 25;
/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;
/// Events drained per `epoll_wait`.
const EVENTS_CAP: usize = 256;
/// Completion pump threads: sized to the serve runtime's worker
/// parallelism, not the connection count.
const COMPLETERS: usize = 4;

/// A finished reply travelling from a completion thread to the loop.
struct Completion {
    conn: u64,
    seq: u64,
    frame: Frame,
    t0_us: Option<u64>,
}

/// An in-flight request a completion thread is waiting on.
struct CompJob {
    conn: u64,
    seq: u64,
    id: u64,
    t0_us: u64,
    ticket: Ticket,
}

/// One slot in a connection's FIFO reply queue.
enum Slot {
    /// Submitted to the serve runtime; a completion will fill it.
    Waiting { seq: u64 },
    /// Ready to encode and flush.
    Done { frame: Frame, t0_us: Option<u64> },
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum ConnState {
    /// Reading and serving.
    Open,
    /// No further reads; flush outstanding replies, then close. Entered
    /// on clean EOF, decode errors, protocol violations, read
    /// deadlines, and the shutdown control frame.
    Draining,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    asm: FrameAssembler,
    out: WriteBuffer,
    /// `(cumulative out-stream offset where a frame ends, request t0)`;
    /// popped as `total_flushed` passes each end — the exact moment the
    /// frames-out counter and the latency histogram observe.
    frame_ends: VecDeque<(u64, Option<u64>)>,
    pending: VecDeque<Slot>,
    next_seq: u64,
    state: ConnState,
    /// Reply queue at capacity: reads are paused (backpressure) until
    /// completions free a slot — or the slow-consumer grace expires.
    reads_paused: bool,
    paused_since_us: Option<u64>,
    last_in_us: u64,
    last_write_progress_us: u64,
    /// The currently registered epoll interest mask.
    interest: u32,
    /// This connection carried the shutdown control frame; once its ack
    /// flushes (or it dies), the whole frontend stops.
    carried_shutdown: bool,
}

impl Conn {
    fn desired_interest(&self) -> u32 {
        let mut mask = 0;
        if self.state == ConnState::Open && !self.reads_paused {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if !self.out.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }

    fn done_draining(&self) -> bool {
        self.state == ConnState::Draining && self.pending.is_empty() && self.out.is_empty()
    }
}

/// State shared by the event loop, the completion pump, and the owning
/// [`crate::server::NetServer`] handle — the reactor twin of the
/// threaded transport's `Shared`.
pub(crate) struct ReactorShared {
    pub(crate) serve: Server,
    pub(crate) drain: DrainHandle,
    /// On-disk model store backing `LoadModel` control frames.
    pub(crate) registry: Option<RegistryStore>,
    pub(crate) cfg: NetConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) metrics: NetMetrics,
    pub(crate) stop: AtomicBool,
    /// Wake handle for the loop's pipe; `None` once the loop exits.
    waker: Mutex<Option<Waker>>,
    completions: Mutex<Vec<Completion>>,
    pub(crate) shutdown_signal: (Mutex<bool>, Condvar),
    pub(crate) local_addr: SocketAddr,
}

impl ReactorShared {
    pub(crate) fn new(
        serve: Server,
        registry: Option<RegistryStore>,
        cfg: NetConfig,
        clock: Arc<dyn Clock>,
        metrics: NetMetrics,
        local_addr: SocketAddr,
    ) -> ReactorShared {
        let drain = serve.drain_handle();
        ReactorShared {
            serve,
            drain,
            registry,
            cfg,
            clock,
            metrics,
            stop: AtomicBool::new(false),
            waker: Mutex::new(None),
            completions: Mutex::new(Vec::new()),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            local_addr,
        }
    }

    /// Marks the frontend as stopping, wakes the event loop, and
    /// signals `wait_for_shutdown` waiters. Idempotent.
    pub(crate) fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
        let (lock, cv) = &self.shutdown_signal;
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *stopped = true;
        cv.notify_all();
    }

    fn wake(&self) {
        let waker = self
            .waker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(w) = waker.as_ref() {
            w.wake();
        }
    }
}

/// The running reactor frontend: the loop thread, its completion pump,
/// and the state shared with [`crate::server::NetServer`].
pub(crate) struct ReactorServer {
    shared: Arc<ReactorShared>,
    loop_thread: Option<JoinHandle<()>>,
    completers: Vec<JoinHandle<()>>,
}

impl ReactorServer {
    /// Registers the listener with a fresh epoll instance and spawns
    /// the loop + completion threads.
    pub(crate) fn start(
        shared: Arc<ReactorShared>,
        listener: TcpListener,
    ) -> Result<ReactorServer, NetError> {
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::from_io("set listener nonblocking", &e))?;
        let epoll = Epoll::new().map_err(|e| NetError::from_io("epoll_create1", &e))?;
        let pipe = WakePipe::new().map_err(|e| NetError::from_io("create wake pipe", &e))?;
        epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .map_err(|e| NetError::from_io("register listener", &e))?;
        epoll
            .add(pipe.read_fd(), EPOLLIN, TOKEN_WAKE)
            .map_err(|e| NetError::from_io("register wake pipe", &e))?;
        {
            let mut waker = shared
                .waker
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *waker = Some(pipe.waker());
        }
        let (comp_tx, comp_rx) = mpsc::channel::<CompJob>();
        let comp_rx = Arc::new(Mutex::new(comp_rx));
        let mut completers = Vec::with_capacity(COMPLETERS);
        for i in 0..COMPLETERS {
            let shared = Arc::clone(&shared);
            let comp_rx = Arc::clone(&comp_rx);
            let handle = std::thread::Builder::new()
                .name(format!("cs-net-completer-{i}"))
                .spawn(move || completer_loop(&shared, &comp_rx))
                .map_err(|e| NetError::InvalidConfig(format!("spawning completer: {e}")))?;
            completers.push(handle);
        }
        let loop_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cs-net-reactor".to_string())
                .spawn(move || {
                    let mut lp = EventLoop {
                        shared,
                        listener,
                        epoll,
                        pipe,
                        comp_tx,
                        conns: HashMap::new(),
                        next_token: TOKEN_BASE,
                        stop_when_flushed: None,
                    };
                    lp.run();
                })
                .map_err(|e| NetError::InvalidConfig(format!("spawning reactor thread: {e}")))?
        };
        Ok(ReactorServer {
            shared,
            loop_thread: Some(loop_thread),
            completers,
        })
    }

    pub(crate) fn shared(&self) -> &Arc<ReactorShared> {
        &self.shared
    }

    /// Stops the loop, drains the serving runtime, joins every thread.
    pub(crate) fn stop_and_join(&mut self) {
        self.shared.begin_stop();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        // Resolve any still-pending tickets so completion threads
        // unblock, then join them (the loop thread dropping its job
        // sender closed their queue).
        self.shared.drain.shutdown_and_drain();
        for t in self.completers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        if self.loop_thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn completer_loop(shared: &Arc<ReactorShared>, rx: &Arc<Mutex<Receiver<CompJob>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // loop thread gone
            }
        };
        // Deadline waits interleave a stop check so a force-stop cannot
        // strand a completer on a ticket nobody will resolve. (Graceful
        // shutdown drains *before* the stop flag flips, so no reply is
        // ever discarded on that path.)
        let result = loop {
            match job.ticket.wait_deadline(Duration::from_millis(100)) {
                Some(r) => break Some(r),
                None => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                }
            }
        };
        let Some(result) = result else { continue };
        let (frame, t0_us) = match result {
            Ok(resp) => (Frame::from_response(job.id, &resp), Some(job.t0_us)),
            Err(e) => (Frame::from_serve_error(job.id, &e), None),
        };
        shared
            .completions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Completion {
                conn: job.conn,
                seq: job.seq,
                frame,
                t0_us,
            });
        shared.wake();
    }
}

struct EventLoop {
    shared: Arc<ReactorShared>,
    listener: TcpListener,
    epoll: Epoll,
    pipe: WakePipe,
    comp_tx: Sender<CompJob>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Set when a shutdown ack is queued: the frontend stops as soon as
    /// that connection finishes flushing (or dies).
    stop_when_flushed: Option<u64>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = [EpollEvent::zeroed(); EVENTS_CAP];
        let mut scratch = vec![0u8; READ_CHUNK];
        while let Ok(n) = self.epoll.wait(&mut events, TICK_MS) {
            for ev in &events[..n] {
                match ev.token() {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => self.pipe.drain(),
                    token => self.handle_conn_event(token, ev.events(), &mut scratch),
                }
            }
            self.apply_completions();
            self.check_deadlines();
            self.check_stop_when_flushed();
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        // Best-effort final flush so replies already serialized (e.g. a
        // shutdown ack racing a force-stop) reach the wire.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.service_conn(token);
        }
        for (_, conn) in self.conns.drain() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.shared.metrics.connections.sub(1);
        }
        {
            let mut waker = self
                .shared
                .waker
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *waker = None;
        }
        self.shared.begin_stop();
    }

    fn now_us(&self) -> u64 {
        self.shared.clock.now_us()
    }

    fn accept_burst(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let _ = stream.set_nodelay(true);
            if self.conns.len() >= self.shared.cfg.max_connections {
                self.shared.metrics.rejected.inc();
                let mut stream = stream;
                // The accepted socket is still blocking here; bound the
                // courtesy write so a hostile peer cannot wedge the
                // loop.
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let frame = Frame::Error {
                    id: 0,
                    code: ErrorCode::ConnectionLimit,
                    tenant: String::new(),
                    detail: format!(
                        "connection cap {} reached, try later",
                        self.shared.cfg.max_connections
                    ),
                };
                if stream.write_all(&frame.encode()).is_ok() {
                    self.shared.metrics.frames_out.inc();
                }
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            let now = self.now_us();
            let interest = EPOLLIN | EPOLLRDHUP;
            if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                continue;
            }
            self.shared.metrics.accepted.inc();
            self.shared.metrics.connections.add(1);
            self.conns.insert(
                token,
                Conn {
                    stream,
                    token,
                    asm: FrameAssembler::new(self.shared.cfg.max_payload),
                    out: WriteBuffer::new(),
                    frame_ends: VecDeque::new(),
                    pending: VecDeque::new(),
                    next_seq: 0,
                    state: ConnState::Open,
                    reads_paused: false,
                    paused_since_us: None,
                    last_in_us: now,
                    last_write_progress_us: now,
                    interest,
                    carried_shutdown: false,
                },
            );
        }
    }

    fn handle_conn_event(&mut self, token: u64, events: u32, scratch: &mut [u8]) {
        if !self.conns.contains_key(&token) {
            return;
        }
        // Hangups and errors surface as EOF / errors on the read path;
        // pure write readiness skips the read attempt.
        if events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
            self.read_conn(token, scratch);
        }
        self.service_conn(token);
    }

    fn read_conn(&mut self, token: u64, scratch: &mut [u8]) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Open || conn.reads_paused {
                return;
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // Clean close (or half-close): stop reading, flush
                    // what is owed, then drop — the threaded reader
                    // breaking and its writer draining, in one state.
                    conn.state = ConnState::Draining;
                    return;
                }
                Ok(n) => {
                    conn.last_in_us = self.shared.clock.now_us();
                    conn.asm.push(&scratch[..n]);
                    self.drain_frames(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Decodes every complete frame buffered in the connection's
    /// assembler, dispatching each; pauses reads at the pipelining cap.
    fn drain_frames(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Open {
                return;
            }
            if conn.pending.len() >= self.shared.cfg.max_pending_replies {
                if !conn.reads_paused {
                    conn.reads_paused = true;
                    conn.paused_since_us = Some(self.shared.clock.now_us());
                }
                return;
            }
            match conn.asm.next_frame() {
                Ok(Some(frame)) => {
                    self.shared.metrics.frames_in.inc();
                    self.dispatch_frame(token, frame);
                }
                Ok(None) => return,
                Err(e) => {
                    self.shared.metrics.decode_errors.inc();
                    conn.state = ConnState::Draining;
                    conn.pending.push_back(Slot::Done {
                        frame: Frame::Error {
                            id: 0,
                            code: ErrorCode::Malformed,
                            tenant: String::new(),
                            detail: e.to_string(),
                        },
                        t0_us: None,
                    });
                    return;
                }
            }
        }
    }

    fn dispatch_frame(&mut self, token: u64, frame: Frame) {
        match frame {
            Frame::Request {
                id,
                model,
                tenant,
                input,
            } => {
                let t0_us = self.now_us();
                self.shared.metrics.requests.inc();
                let submitted = self
                    .shared
                    .serve
                    .submit(InferRequest::new(model, input).with_tenant(tenant));
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match submitted {
                    Ok(ticket) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.pending.push_back(Slot::Waiting { seq });
                        let _ = self.comp_tx.send(CompJob {
                            conn: token,
                            seq,
                            id,
                            t0_us,
                            ticket,
                        });
                    }
                    Err(e) => conn.pending.push_back(Slot::Done {
                        frame: Frame::from_serve_error(id, &e),
                        t0_us: None,
                    }),
                }
            }
            Frame::Ping { id } => self.push_done(token, Frame::Pong { id }),
            Frame::Query { id, model } => {
                let reply = query_reply(&self.shared.serve, id, model);
                self.push_done(token, reply);
            }
            frame @ (Frame::LoadModel { .. }
            | Frame::UnloadModel { .. }
            | Frame::ListModels { .. }) => {
                // Lifecycle work (container decode, kernel builds,
                // victim drains) runs on the loop thread; completion
                // threads keep resolving in-flight tickets meanwhile,
                // so a drain inside the load cannot deadlock.
                let reply =
                    lifecycle_reply(&self.shared.serve, self.shared.registry.as_ref(), &frame);
                self.push_done(token, reply);
            }
            Frame::Shutdown { id } => {
                // Drain first — every in-flight request on every
                // connection is answered before the ack goes out. The
                // loop blocks here by design; completion threads keep
                // resolving tickets meanwhile, and the pending queue
                // preserves per-connection FIFO, so the ack cannot
                // overtake this connection's earlier replies.
                self.shared.drain.shutdown_and_drain();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Draining;
                    conn.carried_shutdown = true;
                    conn.pending.push_back(Slot::Done {
                        frame: Frame::ShutdownAck { id },
                        t0_us: None,
                    });
                    self.stop_when_flushed = Some(token);
                }
            }
            // Server-to-client frame types arriving at the server are a
            // protocol violation, as are the cluster control frames;
            // answer once and cut the connection.
            Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::Pong { id }
            | Frame::ShutdownAck { id }
            | Frame::Info { id, .. }
            | Frame::Register { id, .. }
            | Frame::RegisterAck { id, .. }
            | Frame::Heartbeat { id, .. }
            | Frame::Deregister { id, .. }
            | Frame::DeregisterAck { id }
            | Frame::ModelList { id, .. } => {
                self.shared.metrics.decode_errors.inc();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Draining;
                    conn.pending.push_back(Slot::Done {
                        frame: Frame::Error {
                            id,
                            code: ErrorCode::Malformed,
                            tenant: String::new(),
                            detail: "frame type is not client-to-server".to_string(),
                        },
                        t0_us: None,
                    });
                }
            }
        }
    }

    fn push_done(&mut self, token: u64, frame: Frame) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.pending.push_back(Slot::Done { frame, t0_us: None });
        }
    }

    /// Serializes ready replies, flushes, updates epoll interest, and
    /// closes the connection if it is done draining. The single
    /// maintenance entry point after any state change.
    fn service_conn(&mut self, token: u64) {
        loop {
            let now = self.now_us();
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // Encode from the front of the FIFO while replies are ready.
            let was_empty = conn.out.is_empty();
            let mut pushed = false;
            while matches!(conn.pending.front(), Some(Slot::Done { .. })) {
                let Some(Slot::Done { frame, t0_us }) = conn.pending.pop_front() else {
                    break;
                };
                conn.out.push(&frame.encode());
                conn.frame_ends.push_back((conn.out.total_pushed(), t0_us));
                pushed = true;
            }
            if was_empty && pushed {
                // The stall clock measures lack of progress on a
                // non-empty buffer; restart it on the empty→non-empty
                // transition.
                conn.last_write_progress_us = now;
            }
            match conn.out.flush_to(&mut conn.stream) {
                Ok(wrote) => {
                    if wrote {
                        conn.last_write_progress_us = now;
                    }
                    while let Some(&(end, t0)) = conn.frame_ends.front() {
                        if end > conn.out.total_flushed() {
                            break;
                        }
                        conn.frame_ends.pop_front();
                        self.shared.metrics.frames_out.inc();
                        if let Some(t0) = t0 {
                            self.shared.metrics.latency.observe(now.saturating_sub(t0));
                        }
                    }
                }
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // A freed reply slot resumes reading — and whole frames may
            // already sit in the assembler from before the pause; loop
            // so they are served and flushed in this same pass.
            if conn.reads_paused
                && conn.state == ConnState::Open
                && conn.pending.len() < self.shared.cfg.max_pending_replies
            {
                conn.reads_paused = false;
                conn.paused_since_us = None;
                self.drain_frames(token);
                continue;
            }
            if conn.done_draining() {
                self.close_conn(token);
                return;
            }
            let desired = conn.desired_interest();
            if desired != conn.interest {
                conn.interest = desired;
                let _ = self
                    .epoll
                    .modify(conn.stream.as_raw_fd(), desired, conn.token);
            }
            return;
        }
    }

    fn apply_completions(&mut self) {
        let completions: Vec<Completion> = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *guard)
        };
        let mut touched: Vec<u64> = Vec::new();
        for c in completions {
            let Some(conn) = self.conns.get_mut(&c.conn) else {
                continue; // connection closed while the request ran
            };
            if let Some(slot) = conn
                .pending
                .iter_mut()
                .find(|s| matches!(s, Slot::Waiting { seq } if *seq == c.seq))
            {
                *slot = Slot::Done {
                    frame: c.frame,
                    t0_us: c.t0_us,
                };
            }
            if !touched.contains(&c.conn) {
                touched.push(c.conn);
            }
        }
        for token in touched {
            self.service_conn(token);
        }
    }

    fn check_deadlines(&mut self) {
        let now = self.now_us();
        let read_us = self.shared.cfg.read_timeout.map(|d| d.as_micros() as u64);
        let write_us = self.shared.cfg.write_timeout.map(|d| d.as_micros() as u64);
        let grace_us = self
            .shared
            .cfg
            .slow_consumer_grace
            .map(|d| d.as_micros() as u64);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            // Idle read deadline — only while we actually want bytes.
            if conn.state == ConnState::Open && !conn.reads_paused {
                if let Some(limit) = read_us {
                    if now.saturating_sub(conn.last_in_us) > limit {
                        conn.state = ConnState::Draining;
                        self.service_conn(token);
                        continue;
                    }
                }
            }
            // Slow consumer, flavor 1: the reply queue has been full
            // past the grace period (the threaded reader's bounded
            // push timing out).
            if let (Some(since), Some(limit)) = (conn.paused_since_us, grace_us) {
                if now.saturating_sub(since) > limit {
                    self.shared.metrics.slow_consumer.inc();
                    self.close_conn(token);
                    continue;
                }
            }
            // Slow consumer, flavor 2: bytes owed but no write progress
            // past the write deadline (the threaded writer's socket
            // write timeout).
            if !conn.out.is_empty() {
                if let Some(limit) = write_us {
                    if now.saturating_sub(conn.last_write_progress_us) > limit {
                        self.shared.metrics.slow_consumer.inc();
                        self.close_conn(token);
                        continue;
                    }
                }
            }
        }
    }

    fn check_stop_when_flushed(&mut self) {
        let Some(token) = self.stop_when_flushed else {
            return;
        };
        let flushed = match self.conns.get(&token) {
            Some(conn) => conn.pending.is_empty() && conn.out.is_empty(),
            None => true, // died before the ack left; stop regardless
        };
        if flushed {
            self.stop_when_flushed = None;
            self.shared.begin_stop();
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let carried = conn.carried_shutdown;
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.shared.metrics.connections.sub(1);
            drop(conn);
            if carried {
                self.shared.begin_stop();
            }
        }
    }
}
