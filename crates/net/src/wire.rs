//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message is one [`Frame`], encoded as a fixed 16-byte header
//! followed by a type-specific payload (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     2  magic        0xCA 0x5E
//!      2     1  version      1
//!      3     1  frame type   (see FrameType)
//!      4     8  request id   u64, echoed verbatim in the reply
//!     12     4  payload len  u32, bytes after the header
//! ```
//!
//! The codec is pure functions over byte slices — no I/O, no global
//! state — so it is fuzzable and exactly testable. Decoding is strict:
//! a hostile length prefix is rejected against [`DEFAULT_MAX_PAYLOAD`]
//! (or a caller-supplied cap) *before* any payload allocation, inner
//! lengths (strings, f32 arrays) are validated against the remaining
//! payload before their buffers are reserved, and a payload that is
//! not fully consumed is a [`WireError::BadPayload`]. Every valid
//! frame round-trips: `decode(encode(f)) == f` and
//! `encode(decode(bytes)) == bytes`.
//!
//! Strings are `u16 length + UTF-8 bytes`; f32 arrays are `u32 count +
//! 4 bytes per element (IEEE-754 bit pattern)`, which preserves NaN
//! payloads and signed zeros so served outputs stay bit-identical
//! across the wire.

use std::fmt;

use cs_serve::{InferResponse, ServeError};

/// Two-byte frame preamble (`0xCA5E`).
pub const MAGIC: [u8; 2] = [0xCA, 0x5E];

/// Protocol version this build speaks. Decoders reject anything else
/// with [`WireError::UnsupportedVersion`]; version bumps are additive
/// (new frame types) and never reuse retired type codes. Version 2
/// added the cluster control frames ([`Frame::Register`] through
/// [`Frame::DeregisterAck`]) and the `node` field on
/// [`Frame::Response`]. Version 3 added the model-lifecycle control
/// frames ([`Frame::LoadModel`] through [`Frame::ModelList`]), the
/// `tenant` field on [`Frame::Request`] and [`Frame::Error`], and the
/// lifecycle error codes ([`ErrorCode::ModelNotFound`],
/// [`ErrorCode::VersionMismatch`], [`ErrorCode::RegistryFull`]).
pub const WIRE_VERSION: u8 = 3;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Default payload-length cap. The served models take a few thousand
/// f32 inputs at most, so 1 MiB leaves two orders of magnitude of
/// headroom while bounding what a hostile length prefix can make the
/// decoder allocate.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

/// Frame type codes (header byte 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server inference request.
    Request = 1,
    /// Server → client inference response.
    Response = 2,
    /// Server → client typed failure.
    Error = 3,
    /// Client → server liveness probe.
    Ping = 4,
    /// Server → client liveness reply.
    Pong = 5,
    /// Client → server graceful-shutdown control frame.
    Shutdown = 6,
    /// Server → client acknowledgement that the drain completed.
    ShutdownAck = 7,
    /// Client → server model-shape query.
    Query = 8,
    /// Server → client model-shape reply.
    Info = 9,
    /// Worker → orchestrator enrollment announcement.
    Register = 10,
    /// Orchestrator → worker enrollment acknowledgement.
    RegisterAck = 11,
    /// Worker → orchestrator liveness beacon.
    Heartbeat = 12,
    /// Worker → orchestrator graceful leave announcement.
    Deregister = 13,
    /// Orchestrator → worker leave acknowledgement.
    DeregisterAck = 14,
    /// Client → server: load a `(model, version)` from the server's
    /// on-disk registry, optionally as a canary.
    LoadModel = 15,
    /// Client → server: unload a resident `(model, version)`.
    UnloadModel = 16,
    /// Client → server: list resident model versions.
    ListModels = 17,
    /// Server → client reply to [`FrameType::ListModels`], and the ack
    /// for [`FrameType::LoadModel`] / [`FrameType::UnloadModel`].
    ModelList = 18,
}

impl FrameType {
    fn from_u8(v: u8) -> Option<FrameType> {
        Some(match v {
            1 => FrameType::Request,
            2 => FrameType::Response,
            3 => FrameType::Error,
            4 => FrameType::Ping,
            5 => FrameType::Pong,
            6 => FrameType::Shutdown,
            7 => FrameType::ShutdownAck,
            8 => FrameType::Query,
            9 => FrameType::Info,
            10 => FrameType::Register,
            11 => FrameType::RegisterAck,
            12 => FrameType::Heartbeat,
            13 => FrameType::Deregister,
            14 => FrameType::DeregisterAck,
            15 => FrameType::LoadModel,
            16 => FrameType::UnloadModel,
            17 => FrameType::ListModels,
            18 => FrameType::ModelList,
            _ => return None,
        })
    }
}

/// Typed failure codes carried by [`Frame::Error`], mapped one-to-one
/// from [`ServeError`] plus the network-only conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request named a model the registry does not hold.
    UnknownModel = 1,
    /// The input length does not match the model's input width.
    ShapeMismatch = 2,
    /// The admission queue is full; back off and retry.
    Overloaded = 3,
    /// The server is draining and no longer admits requests.
    ShuttingDown = 4,
    /// The worker processing the request died before answering.
    WorkerLost = 5,
    /// A server-side failure outside the request contract.
    Internal = 6,
    /// The server could not decode the client's frame.
    Malformed = 7,
    /// The per-server connection cap was reached.
    ConnectionLimit = 8,
    /// No healthy replica holds the requested model.
    NoReplica = 9,
    /// A lifecycle operation addressed a `(model, version)` that is
    /// not resident (and, for loads, not in the on-disk registry).
    ModelNotFound = 10,
    /// A lifecycle operation contradicted the resident versions
    /// (unloading the primary, canarying the primary, shape drift).
    VersionMismatch = 11,
    /// Loading would exceed the resident-memory budget even after
    /// evicting everything evictable.
    RegistryFull = 12,
}

impl ErrorCode {
    /// Decodes the u16 wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::UnknownModel,
            2 => ErrorCode::ShapeMismatch,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::WorkerLost,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Malformed,
            8 => ErrorCode::ConnectionLimit,
            9 => ErrorCode::NoReplica,
            10 => ErrorCode::ModelNotFound,
            11 => ErrorCode::VersionMismatch,
            12 => ErrorCode::RegistryFull,
            _ => return None,
        })
    }

    /// The code a [`ServeError`] maps to on the wire.
    pub fn from_serve(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::UnknownModel(_) => ErrorCode::UnknownModel,
            ServeError::ShapeMismatch { .. } => ErrorCode::ShapeMismatch,
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::ModelNotFound { .. } => ErrorCode::ModelNotFound,
            ServeError::VersionMismatch { .. } => ErrorCode::VersionMismatch,
            ServeError::RegistryFull { .. } => ErrorCode::RegistryFull,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::WorkerLost => ErrorCode::WorkerLost,
            ServeError::InvalidConfig(_) | ServeError::Accel(_) | ServeError::Compress(_) => {
                ErrorCode::Internal
            }
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::ShapeMismatch => "shape-mismatch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::WorkerLost => "worker-lost",
            ErrorCode::Internal => "internal",
            ErrorCode::Malformed => "malformed",
            ErrorCode::ConnectionLimit => "connection-limit",
            ErrorCode::NoReplica => "no-replica",
            ErrorCode::ModelNotFound => "model-not-found",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::RegistryFull => "registry-full",
        };
        f.write_str(s)
    }
}

/// Everything that can be wrong with bytes on the wire. Header-level
/// variants ([`WireError::BadMagic`], [`WireError::UnsupportedVersion`],
/// [`WireError::UnknownFrameType`], [`WireError::Oversized`]) mean the
/// stream cannot be resynchronized and the connection must close;
/// [`WireError::Truncated`] on a finished stream means the peer died
/// mid-frame; [`WireError::BadPayload`] means the header was sane but
/// the payload contradicts itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes received instead.
        got: [u8; 2],
    },
    /// The version byte names a protocol this build does not speak.
    UnsupportedVersion {
        /// The version received.
        got: u8,
    },
    /// The frame-type byte is not a known [`FrameType`].
    UnknownFrameType {
        /// The type byte received.
        got: u8,
    },
    /// The length prefix exceeds the payload cap; rejected before any
    /// allocation.
    Oversized {
        /// Length the header claimed.
        len: u32,
        /// Cap it was checked against.
        max: u32,
    },
    /// The buffer ends mid-frame (only raised by whole-message decodes;
    /// the streaming decoder reports "need more bytes" instead).
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the frame needs in total.
        need: usize,
    },
    /// The header was valid but the payload is inconsistent with it.
    BadPayload {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => {
                write!(f, "bad magic {:02x}{:02x} (want ca5e)", got[0], got[1])
            }
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got} (speak {WIRE_VERSION})")
            }
            WireError::UnknownFrameType { got } => write!(f, "unknown frame type {got}"),
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            WireError::Truncated { have, need } => {
                write!(f, "frame truncated: have {have} of {need} bytes")
            }
            WireError::BadPayload { reason } => write!(f, "bad payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame type (already validated).
    pub frame_type: FrameType,
    /// Request id echoed between request and reply.
    pub id: u64,
    /// Payload length in bytes (already bounded by the cap).
    pub payload_len: u32,
}

/// Validates a full 16-byte header. The payload cap is enforced here,
/// before the caller allocates anything for the payload.
///
/// # Errors
///
/// Header-level [`WireError`]s only (magic, version, type, cap).
pub fn parse_header(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<Header, WireError> {
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic {
            got: [bytes[0], bytes[1]],
        });
    }
    if bytes[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: bytes[2] });
    }
    let frame_type =
        FrameType::from_u8(bytes[3]).ok_or(WireError::UnknownFrameType { got: bytes[3] })?;
    let id = u64::from_le_bytes([
        bytes[4], bytes[5], bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
    ]);
    let payload_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if payload_len > max_payload {
        return Err(WireError::Oversized {
            len: payload_len,
            max: max_payload,
        });
    }
    Ok(Header {
        frame_type,
        id,
        payload_len,
    })
}

/// One protocol message. `id` pairs replies with requests; the server
/// echoes it verbatim and preserves per-connection FIFO order, so a
/// client may pipeline requests and match responses by position or id.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Run `input` through `model`.
    Request {
        /// Request id, echoed in the reply.
        id: u64,
        /// Registry name of the model.
        model: String,
        /// Tenant the request is billed against (empty = "default").
        tenant: String,
        /// Input activations.
        input: Vec<f32>,
    },
    /// The completed inference with its simulated hardware cost (the
    /// wire twin of [`cs_serve::InferResponse`]).
    Response {
        /// Id of the request this answers.
        id: u64,
        /// Model that produced the outputs.
        model: String,
        /// Output neuron values, bit-exact.
        outputs: Vec<f32>,
        /// Simulated accelerator cycles (0 on engine backends).
        cycles: u64,
        /// Simulated energy in picojoules (0.0 on engine backends).
        energy_pj: f64,
        /// Size of the batch the request rode in.
        batch_size: u32,
        /// Worker lane that executed it.
        worker: u32,
        /// Server-side end-to-end latency (µs).
        latency_us: u64,
        /// Identity of the serving node that executed the request
        /// ("local" for a standalone server); lets cluster clients
        /// attribute responses to replicas.
        node: String,
    },
    /// A typed failure answering the frame with the same id (or id 0
    /// for connection-level failures such as a decode error).
    Error {
        /// Id of the request this answers (0 = connection-level).
        id: u64,
        /// Typed failure code.
        code: ErrorCode,
        /// Tenant the failed request belonged to (empty when the
        /// failure is not attributable to a tenant, e.g. a decode
        /// error). Lets a client account rejections per tenant
        /// without parsing `detail`.
        tenant: String,
        /// Human-readable specifics.
        detail: String,
    },
    /// Liveness probe.
    Ping {
        /// Echoed in the pong.
        id: u64,
    },
    /// Liveness reply.
    Pong {
        /// Id of the ping this answers.
        id: u64,
    },
    /// Graceful-shutdown control frame: the server stops admitting,
    /// drains in-flight work, acks, and stops accepting connections.
    Shutdown {
        /// Echoed in the ack.
        id: u64,
    },
    /// The drain completed; the server is going away.
    ShutdownAck {
        /// Id of the shutdown frame this answers.
        id: u64,
    },
    /// Ask for a model's input/output widths (so a load generator can
    /// shape requests without out-of-band configuration).
    Query {
        /// Echoed in the info reply.
        id: u64,
        /// Registry name of the model.
        model: String,
    },
    /// Reply to [`Frame::Query`].
    Info {
        /// Id of the query this answers.
        id: u64,
        /// Registry name of the model.
        model: String,
        /// Input width of the model.
        n_in: u32,
        /// Output width of the model.
        n_out: u32,
    },
    /// Worker → orchestrator: enroll this node and the models it
    /// serves. Sent once, immediately after the worker dials the
    /// orchestrator; the connection it arrives on becomes that
    /// worker's control channel.
    Register {
        /// Echoed in the ack.
        id: u64,
        /// Unique worker name (the orchestrator rejects duplicates).
        worker: String,
        /// Address (host:port) where the worker serves requests.
        addr: String,
        /// Registry names of the models this worker can execute.
        models: Vec<String>,
    },
    /// Orchestrator → worker: enrollment accepted.
    RegisterAck {
        /// Id of the register frame this answers.
        id: u64,
        /// Interval at which the worker must heartbeat; missing
        /// roughly three in a row gets the worker evicted.
        heartbeat_ms: u32,
    },
    /// Worker → orchestrator: liveness beacon, resets the eviction
    /// deadline.
    Heartbeat {
        /// Beacon sequence number (not echoed).
        id: u64,
        /// Name the worker registered under.
        worker: String,
        /// Requests currently in flight on the worker (advisory).
        outstanding: u32,
    },
    /// Worker → orchestrator: graceful leave; the orchestrator stops
    /// routing to this worker before acking.
    Deregister {
        /// Echoed in the ack.
        id: u64,
        /// Name the worker registered under.
        worker: String,
    },
    /// Orchestrator → worker: leave acknowledged, no new requests
    /// will arrive.
    DeregisterAck {
        /// Id of the deregister frame this answers.
        id: u64,
    },
    /// Client → server: load `model@version` from the server's
    /// on-disk registry into the live set. With `canary_pct == 0` the
    /// version becomes (or replaces) the primary; with `1..=100` it
    /// becomes a canary taking that share of the model's traffic.
    /// Acked with [`Frame::ModelList`] carrying the post-load state.
    LoadModel {
        /// Echoed in the ack.
        id: u64,
        /// Registry name of the model.
        model: String,
        /// Version to load.
        version: u32,
        /// Canary traffic share in percent (0 = load as primary).
        canary_pct: u8,
    },
    /// Client → server: unload a resident `(model, version)`. The
    /// primary of a multi-version model cannot be unloaded. Acked
    /// with [`Frame::ModelList`] carrying the post-unload state.
    UnloadModel {
        /// Echoed in the ack.
        id: u64,
        /// Registry name of the model.
        model: String,
        /// Version to unload.
        version: u32,
    },
    /// Client → server: list resident model versions.
    ListModels {
        /// Echoed in the reply.
        id: u64,
    },
    /// Server → client: the resident model versions, sorted by
    /// `(name, version)`. Also the ack for [`Frame::LoadModel`] and
    /// [`Frame::UnloadModel`].
    ModelList {
        /// Id of the frame this answers.
        id: u64,
        /// One entry per resident `(model, version)`.
        models: Vec<WireModelStatus>,
    },
}

/// One resident model version as reported by [`Frame::ModelList`] —
/// the wire twin of [`cs_serve::ModelStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireModelStatus {
    /// Registry name of the model.
    pub name: String,
    /// Version number.
    pub version: u32,
    /// Whether this version is the model's primary.
    pub primary: bool,
    /// Canary traffic share, when this version is a live canary.
    pub canary_pct: Option<u8>,
    /// Whether the canary was demoted for divergence.
    pub demoted: bool,
    /// Bytes of compressed weights resident for this version.
    pub resident_bytes: u64,
    /// Requests currently executing against this version.
    pub in_flight: u64,
}

impl Frame {
    /// The frame's type code.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Request { .. } => FrameType::Request,
            Frame::Response { .. } => FrameType::Response,
            Frame::Error { .. } => FrameType::Error,
            Frame::Ping { .. } => FrameType::Ping,
            Frame::Pong { .. } => FrameType::Pong,
            Frame::Shutdown { .. } => FrameType::Shutdown,
            Frame::ShutdownAck { .. } => FrameType::ShutdownAck,
            Frame::Query { .. } => FrameType::Query,
            Frame::Info { .. } => FrameType::Info,
            Frame::Register { .. } => FrameType::Register,
            Frame::RegisterAck { .. } => FrameType::RegisterAck,
            Frame::Heartbeat { .. } => FrameType::Heartbeat,
            Frame::Deregister { .. } => FrameType::Deregister,
            Frame::DeregisterAck { .. } => FrameType::DeregisterAck,
            Frame::LoadModel { .. } => FrameType::LoadModel,
            Frame::UnloadModel { .. } => FrameType::UnloadModel,
            Frame::ListModels { .. } => FrameType::ListModels,
            Frame::ModelList { .. } => FrameType::ModelList,
        }
    }

    /// The frame's request id.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Request { id, .. }
            | Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::Ping { id }
            | Frame::Pong { id }
            | Frame::Shutdown { id }
            | Frame::ShutdownAck { id }
            | Frame::Query { id, .. }
            | Frame::Info { id, .. }
            | Frame::Register { id, .. }
            | Frame::RegisterAck { id, .. }
            | Frame::Heartbeat { id, .. }
            | Frame::Deregister { id, .. }
            | Frame::DeregisterAck { id }
            | Frame::LoadModel { id, .. }
            | Frame::UnloadModel { id, .. }
            | Frame::ListModels { id }
            | Frame::ModelList { id, .. } => *id,
        }
    }

    /// Builds the response frame for a completed inference.
    pub fn from_response(id: u64, resp: &InferResponse) -> Frame {
        Frame::Response {
            id,
            model: resp.model.clone(),
            outputs: resp.outputs.clone(),
            cycles: resp.cycles,
            energy_pj: resp.energy_pj,
            batch_size: resp.batch_size as u32,
            worker: resp.worker as u32,
            latency_us: resp.latency_us,
            node: resp.node.clone(),
        }
    }

    /// Builds the error frame for a server-side failure, carrying the
    /// tenant label when the error is attributable to one.
    pub fn from_serve_error(id: u64, e: &ServeError) -> Frame {
        let tenant = match e {
            ServeError::Overloaded { tenant, .. } => tenant.clone(),
            _ => String::new(),
        };
        Frame::Error {
            id,
            code: ErrorCode::from_serve(e),
            tenant,
            detail: e.to_string(),
        }
    }

    /// Builds the [`Frame::ModelList`] reply from serve-side statuses.
    pub fn from_model_list(id: u64, statuses: &[cs_serve::ModelStatus]) -> Frame {
        Frame::ModelList {
            id,
            models: statuses
                .iter()
                .map(|s| WireModelStatus {
                    name: s.name.clone(),
                    version: s.version,
                    primary: s.primary,
                    canary_pct: s.canary_pct,
                    demoted: s.demoted,
                    resident_bytes: s.resident_bytes,
                    in_flight: s.in_flight,
                })
                .collect(),
        }
    }

    /// Encodes the frame: header plus payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.frame_type() as u8);
        out.extend_from_slice(&self.id().to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Request {
                model,
                tenant,
                input,
                ..
            } => {
                put_str(&mut p, model);
                put_str(&mut p, tenant);
                put_f32s(&mut p, input);
            }
            Frame::Response {
                model,
                outputs,
                cycles,
                energy_pj,
                batch_size,
                worker,
                latency_us,
                node,
                ..
            } => {
                put_str(&mut p, model);
                put_f32s(&mut p, outputs);
                p.extend_from_slice(&cycles.to_le_bytes());
                p.extend_from_slice(&energy_pj.to_bits().to_le_bytes());
                p.extend_from_slice(&batch_size.to_le_bytes());
                p.extend_from_slice(&worker.to_le_bytes());
                p.extend_from_slice(&latency_us.to_le_bytes());
                put_str(&mut p, node);
            }
            Frame::Error {
                code,
                tenant,
                detail,
                ..
            } => {
                p.extend_from_slice(&(*code as u16).to_le_bytes());
                put_str(&mut p, tenant);
                put_str(&mut p, detail);
            }
            Frame::Ping { .. }
            | Frame::Pong { .. }
            | Frame::Shutdown { .. }
            | Frame::ShutdownAck { .. } => {}
            Frame::Query { model, .. } => {
                put_str(&mut p, model);
            }
            Frame::Info {
                model, n_in, n_out, ..
            } => {
                put_str(&mut p, model);
                p.extend_from_slice(&n_in.to_le_bytes());
                p.extend_from_slice(&n_out.to_le_bytes());
            }
            Frame::Register {
                worker,
                addr,
                models,
                ..
            } => {
                put_str(&mut p, worker);
                put_str(&mut p, addr);
                put_strs(&mut p, models);
            }
            Frame::RegisterAck { heartbeat_ms, .. } => {
                p.extend_from_slice(&heartbeat_ms.to_le_bytes());
            }
            Frame::Heartbeat {
                worker,
                outstanding,
                ..
            } => {
                put_str(&mut p, worker);
                p.extend_from_slice(&outstanding.to_le_bytes());
            }
            Frame::Deregister { worker, .. } => {
                put_str(&mut p, worker);
            }
            Frame::DeregisterAck { .. } => {}
            Frame::LoadModel {
                model,
                version,
                canary_pct,
                ..
            } => {
                put_str(&mut p, model);
                p.extend_from_slice(&version.to_le_bytes());
                p.push(*canary_pct);
            }
            Frame::UnloadModel { model, version, .. } => {
                put_str(&mut p, model);
                p.extend_from_slice(&version.to_le_bytes());
            }
            Frame::ListModels { .. } => {}
            Frame::ModelList { models, .. } => {
                let len = models.len().min(u16::MAX as usize);
                p.extend_from_slice(&(len as u16).to_le_bytes());
                for m in &models[..len] {
                    put_str(&mut p, &m.name);
                    p.extend_from_slice(&m.version.to_le_bytes());
                    p.push(u8::from(m.primary));
                    p.push(m.canary_pct.unwrap_or(NO_CANARY));
                    p.push(u8::from(m.demoted));
                    p.extend_from_slice(&m.resident_bytes.to_le_bytes());
                    p.extend_from_slice(&m.in_flight.to_le_bytes());
                }
            }
        }
        p
    }

    /// Streaming decode against [`DEFAULT_MAX_PAYLOAD`]: `Ok(None)`
    /// means the buffer holds a valid prefix but not yet a whole frame.
    ///
    /// # Errors
    ///
    /// Malformed bytes (see [`Frame::decode_with_limit`]).
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        Frame::decode_with_limit(buf, DEFAULT_MAX_PAYLOAD)
    }

    /// Streaming decode with an explicit payload cap. Returns the frame
    /// and the number of bytes it consumed, or `Ok(None)` when more
    /// bytes are needed. Header fields are validated as soon as their
    /// bytes are present, so garbage fails fast even on a slow stream,
    /// and an oversized length prefix is rejected while only the
    /// 16-byte header has been read.
    ///
    /// # Errors
    ///
    /// Header-level errors close the connection (the stream cannot be
    /// resynchronized); [`WireError::BadPayload`] covers payloads that
    /// contradict their header.
    pub fn decode_with_limit(
        buf: &[u8],
        max_payload: u32,
    ) -> Result<Option<(Frame, usize)>, WireError> {
        // Validate the prefix we do have before asking for more bytes:
        // a client that opens with garbage is cut off immediately.
        if buf.len() >= 2 && buf[0..2] != MAGIC {
            return Err(WireError::BadMagic {
                got: [buf[0], buf[1]],
            });
        }
        if buf.len() >= 3 && buf[2] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { got: buf[2] });
        }
        if buf.len() >= 4 && FrameType::from_u8(buf[3]).is_none() {
            return Err(WireError::UnknownFrameType { got: buf[3] });
        }
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut header_bytes = [0u8; HEADER_LEN];
        header_bytes.copy_from_slice(&buf[..HEADER_LEN]);
        let header = parse_header(&header_bytes, max_payload)?;
        let total = HEADER_LEN + header.payload_len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let payload = &buf[HEADER_LEN..total];
        let frame = decode_payload(&header, payload)?;
        Ok(Some((frame, total)))
    }

    /// Decodes a buffer that must hold exactly one whole frame.
    ///
    /// # Errors
    ///
    /// Everything [`Frame::decode_with_limit`] raises, plus
    /// [`WireError::Truncated`] for an incomplete buffer and
    /// [`WireError::BadPayload`] for trailing bytes.
    pub fn decode_exact(buf: &[u8], max_payload: u32) -> Result<Frame, WireError> {
        match Frame::decode_with_limit(buf, max_payload)? {
            None => {
                let need = if buf.len() >= HEADER_LEN {
                    let mut header_bytes = [0u8; HEADER_LEN];
                    header_bytes.copy_from_slice(&buf[..HEADER_LEN]);
                    // The header parsed once already; default on the
                    // unreachable error path instead of panicking.
                    parse_header(&header_bytes, max_payload)
                        .map(|h| HEADER_LEN + h.payload_len as usize)
                        .unwrap_or(HEADER_LEN)
                } else {
                    HEADER_LEN
                };
                Err(WireError::Truncated {
                    have: buf.len(),
                    need,
                })
            }
            Some((_, consumed)) if consumed != buf.len() => Err(WireError::BadPayload {
                reason: format!(
                    "frame consumed {consumed} bytes but the buffer holds {}",
                    buf.len()
                ),
            }),
            Some((frame, _)) => Ok(frame),
        }
    }
}

/// Sentinel byte meaning "no canary" in the `canary_pct` slot of a
/// [`WireModelStatus`] entry (valid shares are `0..=100`).
const NO_CANARY: u8 = 0xFF;

fn put_str(p: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    p.extend_from_slice(&(len as u16).to_le_bytes());
    p.extend_from_slice(&bytes[..len]);
}

fn put_strs(p: &mut Vec<u8>, xs: &[String]) {
    let len = xs.len().min(u16::MAX as usize);
    p.extend_from_slice(&(len as u16).to_le_bytes());
    for s in &xs[..len] {
        put_str(p, s);
    }
}

fn put_f32s(p: &mut Vec<u8>, xs: &[f32]) {
    let len = xs.len().min(u32::MAX as usize);
    p.extend_from_slice(&(len as u32).to_le_bytes());
    for x in &xs[..len] {
        p.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

/// Cursor over a payload; every getter checks the remaining length
/// before touching (or allocating for) the bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::BadPayload {
                reason: format!(
                    "{what} needs {n} bytes, payload has {} left",
                    self.remaining()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// A strict boolean byte: anything but 0 or 1 is rejected so every
    /// decoded frame re-encodes to the exact bytes it came from.
    fn boolean(&mut self, what: &str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::BadPayload {
                reason: format!("{what} must be 0 or 1, got {other}"),
            }),
        }
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload {
            reason: format!("{what} is not valid UTF-8"),
        })
    }

    fn strings(&mut self, what: &str) -> Result<Vec<String>, WireError> {
        let count = self.u16(what)? as usize;
        // Each entry costs at least its 2-byte length prefix, so the
        // count is bounded by the remaining payload before allocating.
        if count.saturating_mul(2) > self.remaining() {
            return Err(WireError::BadPayload {
                reason: format!(
                    "{what} claims {count} strings, payload has {} bytes left",
                    self.remaining()
                ),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.string(what)?);
        }
        Ok(out)
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, WireError> {
        let count = self.u32(what)? as usize;
        // The length is validated against the remaining payload BEFORE
        // the vector is allocated: a hostile count cannot over-allocate.
        let bytes = self.take(count.saturating_mul(4), what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::BadPayload {
                reason: format!("{what} leaves {} trailing payload bytes", self.remaining()),
            });
        }
        Ok(())
    }
}

pub(crate) fn decode_payload(header: &Header, payload: &[u8]) -> Result<Frame, WireError> {
    let id = header.id;
    let mut c = Cursor::new(payload);
    let frame = match header.frame_type {
        FrameType::Request => Frame::Request {
            id,
            model: c.string("request model")?,
            tenant: c.string("request tenant")?,
            input: c.f32s("request input")?,
        },
        FrameType::Response => Frame::Response {
            id,
            model: c.string("response model")?,
            outputs: c.f32s("response outputs")?,
            cycles: c.u64("response cycles")?,
            energy_pj: f64::from_bits(c.u64("response energy")?),
            batch_size: c.u32("response batch size")?,
            worker: c.u32("response worker")?,
            latency_us: c.u64("response latency")?,
            node: c.string("response node")?,
        },
        FrameType::Error => {
            let raw = c.u16("error code")?;
            let code = ErrorCode::from_u16(raw).ok_or_else(|| WireError::BadPayload {
                reason: format!("unknown error code {raw}"),
            })?;
            Frame::Error {
                id,
                code,
                tenant: c.string("error tenant")?,
                detail: c.string("error detail")?,
            }
        }
        FrameType::Ping => Frame::Ping { id },
        FrameType::Pong => Frame::Pong { id },
        FrameType::Shutdown => Frame::Shutdown { id },
        FrameType::ShutdownAck => Frame::ShutdownAck { id },
        FrameType::Query => Frame::Query {
            id,
            model: c.string("query model")?,
        },
        FrameType::Info => Frame::Info {
            id,
            model: c.string("info model")?,
            n_in: c.u32("info n_in")?,
            n_out: c.u32("info n_out")?,
        },
        FrameType::Register => Frame::Register {
            id,
            worker: c.string("register worker")?,
            addr: c.string("register addr")?,
            models: c.strings("register models")?,
        },
        FrameType::RegisterAck => Frame::RegisterAck {
            id,
            heartbeat_ms: c.u32("register-ack heartbeat")?,
        },
        FrameType::Heartbeat => Frame::Heartbeat {
            id,
            worker: c.string("heartbeat worker")?,
            outstanding: c.u32("heartbeat outstanding")?,
        },
        FrameType::Deregister => Frame::Deregister {
            id,
            worker: c.string("deregister worker")?,
        },
        FrameType::DeregisterAck => Frame::DeregisterAck { id },
        FrameType::LoadModel => {
            let model = c.string("load-model name")?;
            let version = c.u32("load-model version")?;
            let canary_pct = c.u8("load-model canary pct")?;
            if canary_pct > 100 {
                return Err(WireError::BadPayload {
                    reason: format!("canary pct {canary_pct} exceeds 100"),
                });
            }
            Frame::LoadModel {
                id,
                model,
                version,
                canary_pct,
            }
        }
        FrameType::UnloadModel => Frame::UnloadModel {
            id,
            model: c.string("unload-model name")?,
            version: c.u32("unload-model version")?,
        },
        FrameType::ListModels => Frame::ListModels { id },
        FrameType::ModelList => {
            let count = c.u16("model-list count")? as usize;
            // Each entry costs at least 25 bytes (2-byte name prefix,
            // version, three flag bytes, two u64 counters), so the
            // count is bounded before the vector is allocated.
            if count.saturating_mul(25) > c.remaining() {
                return Err(WireError::BadPayload {
                    reason: format!(
                        "model list claims {count} entries, payload has {} bytes left",
                        c.remaining()
                    ),
                });
            }
            let mut models = Vec::with_capacity(count);
            for _ in 0..count {
                let name = c.string("model-list name")?;
                let version = c.u32("model-list version")?;
                let primary = c.boolean("model-list primary")?;
                let canary_pct = match c.u8("model-list canary pct")? {
                    NO_CANARY => None,
                    pct if pct <= 100 => Some(pct),
                    pct => {
                        return Err(WireError::BadPayload {
                            reason: format!("canary pct {pct} exceeds 100"),
                        })
                    }
                };
                let demoted = c.boolean("model-list demoted")?;
                models.push(WireModelStatus {
                    name,
                    version,
                    primary,
                    canary_pct,
                    demoted,
                    resident_bytes: c.u64("model-list resident bytes")?,
                    in_flight: c.u64("model-list in flight")?,
                });
            }
            Frame::ModelList { id, models }
        }
    };
    c.finish("frame")?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Request {
                id: 7,
                model: "mlp".to_string(),
                tenant: "acme".to_string(),
                input: vec![0.0, -0.5, 1.25, f32::MIN_POSITIVE],
            },
            Frame::Response {
                id: 7,
                model: "mlp".to_string(),
                outputs: vec![1.0, -2.5, 0.0],
                cycles: 123_456,
                energy_pj: 98.5,
                batch_size: 4,
                worker: 1,
                latency_us: 250,
                node: "node-a".to_string(),
            },
            Frame::Error {
                id: 9,
                code: ErrorCode::Overloaded,
                tenant: "acme".to_string(),
                detail: "admission queue full (64 slots) for tenant \"acme\"".to_string(),
            },
            Frame::Ping { id: 1 },
            Frame::Pong { id: 1 },
            Frame::Shutdown { id: 2 },
            Frame::ShutdownAck { id: 2 },
            Frame::Query {
                id: 3,
                model: "mlp".to_string(),
            },
            Frame::Info {
                id: 3,
                model: "mlp".to_string(),
                n_in: 98,
                n_out: 10,
            },
            Frame::Register {
                id: 4,
                worker: "node-a".to_string(),
                addr: "127.0.0.1:9001".to_string(),
                models: vec!["mlp".to_string(), "mlp-big".to_string()],
            },
            Frame::RegisterAck {
                id: 4,
                heartbeat_ms: 500,
            },
            Frame::Heartbeat {
                id: 11,
                worker: "node-a".to_string(),
                outstanding: 3,
            },
            Frame::Deregister {
                id: 5,
                worker: "node-a".to_string(),
            },
            Frame::DeregisterAck { id: 5 },
            Frame::LoadModel {
                id: 6,
                model: "mlp".to_string(),
                version: 2,
                canary_pct: 25,
            },
            Frame::UnloadModel {
                id: 7,
                model: "mlp".to_string(),
                version: 1,
            },
            Frame::ListModels { id: 8 },
            Frame::ModelList {
                id: 8,
                models: vec![
                    WireModelStatus {
                        name: "mlp".to_string(),
                        version: 1,
                        primary: true,
                        canary_pct: None,
                        demoted: false,
                        resident_bytes: 4096,
                        in_flight: 2,
                    },
                    WireModelStatus {
                        name: "mlp".to_string(),
                        version: 2,
                        primary: false,
                        canary_pct: Some(25),
                        demoted: true,
                        resident_bytes: 4096,
                        in_flight: 0,
                    },
                ],
            },
        ]
    }

    #[test]
    fn every_frame_type_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let (decoded, consumed) = Frame::decode(&bytes).expect("valid").expect("complete");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
            assert_eq!(decoded.encode(), bytes, "byte-level round trip");
            assert_eq!(
                Frame::decode_exact(&bytes, DEFAULT_MAX_PAYLOAD).expect("exact"),
                frame
            );
        }
    }

    #[test]
    fn nan_and_negative_zero_survive_the_wire_bit_exactly() {
        let frame = Frame::Request {
            id: 1,
            model: "m".to_string(),
            tenant: String::new(),
            input: vec![f32::NAN, -0.0, f32::INFINITY, f32::NEG_INFINITY],
        };
        let bytes = frame.encode();
        let (decoded, _) = Frame::decode(&bytes).unwrap().unwrap();
        match decoded {
            Frame::Request { input, .. } => {
                let want: Vec<u32> = [f32::NAN, -0.0, f32::INFINITY, f32::NEG_INFINITY]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let got: Vec<u32> = input.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn streaming_decode_waits_for_a_whole_frame() {
        let bytes = sample_frames()[0].encode();
        for cut in 0..bytes.len() {
            let r = Frame::decode(&bytes[..cut]).expect("prefix of a valid frame");
            assert!(r.is_none(), "cut {cut} decoded early");
        }
        // Two frames back to back: the first decodes, reporting its
        // length so the caller can resynchronize on the second.
        let mut two = bytes.clone();
        let second = Frame::Ping { id: 42 }.encode();
        two.extend_from_slice(&second);
        let (f, n) = Frame::decode(&two).unwrap().unwrap();
        assert_eq!(f, sample_frames()[0]);
        assert_eq!(n, bytes.len());
        let (f2, n2) = Frame::decode(&two[n..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Ping { id: 42 });
        assert_eq!(n2, second.len());
    }

    #[test]
    fn short_header_is_truncated_not_misparsed() {
        let bytes = Frame::Ping { id: 5 }.encode();
        let err = Frame::decode_exact(&bytes[..10], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                have: 10,
                need: HEADER_LEN
            }
        );
    }

    #[test]
    fn short_payload_is_truncated_with_the_real_need() {
        let bytes = sample_frames()[0].encode();
        let err = Frame::decode_exact(&bytes[..bytes.len() - 3], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                have: bytes.len() - 3,
                need: bytes.len()
            }
        );
    }

    #[test]
    fn bad_magic_fails_fast_even_on_a_two_byte_prefix() {
        let mut bytes = Frame::Ping { id: 5 }.encode();
        bytes[0] = 0x00;
        assert_eq!(
            Frame::decode(&bytes[..2]).unwrap_err(),
            WireError::BadMagic { got: [0x00, 0x5E] }
        );
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadMagic { got: [0x00, 0x5E] }
        );
    }

    #[test]
    fn unsupported_version_and_unknown_type_are_rejected() {
        let mut v = Frame::Ping { id: 5 }.encode();
        v[2] = 9;
        assert_eq!(
            Frame::decode(&v).unwrap_err(),
            WireError::UnsupportedVersion { got: 9 }
        );
        let mut t = Frame::Ping { id: 5 }.encode();
        t[3] = 200;
        assert_eq!(
            Frame::decode(&t).unwrap_err(),
            WireError::UnknownFrameType { got: 200 }
        );
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Frame::Ping { id: 5 }.encode();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::Oversized {
                len: u32::MAX,
                max: DEFAULT_MAX_PAYLOAD
            }
        );
        // A tighter caller-supplied cap wins.
        let req = sample_frames()[0].encode();
        assert!(matches!(
            Frame::decode_with_limit(&req, 4).unwrap_err(),
            WireError::Oversized { max: 4, .. }
        ));
    }

    #[test]
    fn inner_length_cannot_exceed_the_payload() {
        // Request with an input count claiming more floats than the
        // payload carries: must be BadPayload, not an allocation.
        let mut bytes = Frame::Request {
            id: 1,
            model: "m".to_string(),
            tenant: String::new(),
            input: vec![1.0, 2.0],
        }
        .encode();
        // input count lives after the 2-byte len + 1-byte "m" and the
        // 2-byte empty-tenant prefix.
        let count_off = HEADER_LEN + 2 + 1 + 2;
        bytes[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn hostile_string_count_is_rejected_before_allocation() {
        let mut bytes = Frame::Register {
            id: 1,
            worker: "w".to_string(),
            addr: "a".to_string(),
            models: vec![],
        }
        .encode();
        // models count lives after "w" (2+1 bytes) and "a" (2+1 bytes).
        let off = HEADER_LEN + 3 + 3;
        bytes[off..off + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut bytes = Frame::Ping { id: 5 }.encode();
        bytes[12..16].copy_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadPayload { .. }
        ));
        // And decode_exact rejects a valid frame followed by garbage.
        let mut ok = Frame::Ping { id: 5 }.encode();
        ok.push(0xFF);
        assert!(matches!(
            Frame::decode_exact(&ok, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn non_utf8_model_name_is_bad_payload() {
        let mut bytes = Frame::Query {
            id: 1,
            model: "ab".to_string(),
        }
        .encode();
        bytes[HEADER_LEN + 2] = 0xFF;
        bytes[HEADER_LEN + 3] = 0xFE;
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn error_codes_round_trip_and_map_from_serve_errors() {
        for code in [
            ErrorCode::UnknownModel,
            ErrorCode::ShapeMismatch,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::WorkerLost,
            ErrorCode::Internal,
            ErrorCode::Malformed,
            ErrorCode::ConnectionLimit,
            ErrorCode::NoReplica,
            ErrorCode::ModelNotFound,
            ErrorCode::VersionMismatch,
            ErrorCode::RegistryFull,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
        assert_eq!(
            ErrorCode::from_serve(&ServeError::Overloaded {
                capacity: 64,
                tenant: "acme".into()
            }),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::UnknownModel("x".into())),
            ErrorCode::UnknownModel
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::ShuttingDown),
            ErrorCode::ShuttingDown
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::ModelNotFound {
                model: "m".into(),
                version: 2
            }),
            ErrorCode::ModelNotFound
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::VersionMismatch {
                model: "m".into(),
                version: 1,
                detail: "is the primary".into()
            }),
            ErrorCode::VersionMismatch
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::RegistryFull {
                model: "m".into(),
                needed_bytes: 10,
                budget_bytes: 5
            }),
            ErrorCode::RegistryFull
        );
    }

    #[test]
    fn overloaded_error_frame_carries_the_tenant() {
        let e = ServeError::Overloaded {
            capacity: 2,
            tenant: "acme".to_string(),
        };
        match Frame::from_serve_error(9, &e) {
            Frame::Error {
                id, code, tenant, ..
            } => {
                assert_eq!(id, 9);
                assert_eq!(code, ErrorCode::Overloaded);
                assert_eq!(tenant, "acme");
            }
            other => panic!("built {other:?}"),
        }
        // Non-tenant errors leave the field empty.
        match Frame::from_serve_error(1, &ServeError::ShuttingDown) {
            Frame::Error { tenant, .. } => assert_eq!(tenant, ""),
            other => panic!("built {other:?}"),
        }
    }

    #[test]
    fn hostile_model_list_count_is_rejected_before_allocation() {
        let mut bytes = Frame::ModelList {
            id: 1,
            models: vec![],
        }
        .encode();
        bytes[HEADER_LEN..HEADER_LEN + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn model_list_flag_bytes_are_strict() {
        let status = WireModelStatus {
            name: "m".to_string(),
            version: 1,
            primary: true,
            canary_pct: None,
            demoted: false,
            resident_bytes: 8,
            in_flight: 0,
        };
        let frame = Frame::ModelList {
            id: 1,
            models: vec![status],
        };
        let clean = frame.encode();
        // primary byte lives after count (2), name (2+1), version (4).
        let primary_off = HEADER_LEN + 2 + 3 + 4;
        for (off, bad) in [
            (primary_off, 2u8),     // primary must be 0/1
            (primary_off + 1, 101), // canary pct must be <=100 or 0xFF
            (primary_off + 2, 7),   // demoted must be 0/1
        ] {
            let mut bytes = clean.clone();
            bytes[off] = bad;
            assert!(
                matches!(
                    Frame::decode(&bytes).unwrap_err(),
                    WireError::BadPayload { .. }
                ),
                "offset {off} value {bad} must be rejected"
            );
        }
        // 0xFF decodes as "no canary" and round-trips.
        let (decoded, _) = Frame::decode(&clean).unwrap().unwrap();
        assert_eq!(decoded.encode(), clean);
    }

    #[test]
    fn load_model_canary_pct_above_100_is_rejected() {
        let mut bytes = Frame::LoadModel {
            id: 1,
            model: "m".to_string(),
            version: 2,
            canary_pct: 100,
        }
        .encode();
        *bytes.last_mut().unwrap() = 101;
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }
}
