//! # cs-net — TCP wire protocol and network frontend for cs-serve
//!
//! The serving runtime ([`cs_serve::Server`]) batches and executes
//! inference in-process; this crate puts it on the network. It is
//! dependency-free (std only) and splits into:
//!
//! * [`wire`] — the versioned, length-prefixed binary frame codec.
//!   Pure functions over byte slices; every length is validated before
//!   any allocation, so hostile prefixes cost 16 bytes, not 4 GiB.
//! * [`transport`] — blocking frame I/O over any `Read`/`Write` pair.
//! * [`assembler`] — [`FrameAssembler`] / [`WriteBuffer`]: resumable
//!   incremental decode and coalesced nonblocking encode, the state
//!   machines behind the reactor (fuzzed differentially against the
//!   blocking decoder).
//! * [`poll`] — a zero-dependency epoll binding (Linux only). The
//!   reactor is built on it, and it is public so event-driven clients
//!   (the `cs-netload` connection sweep drives a thousand sockets from
//!   one thread) can share the same readiness primitive.
//! * [`server`] — [`NetServer`]: a TCP frontend with two data planes
//!   behind one API ([`Transport`]): portable thread-per-connection
//!   readers/writers, or a Linux epoll reactor (`reactor`, a private
//!   module over [`poll`]) scaling to thousands of sockets. Both offer
//!   per-connection FIFO reply order, a connection cap, read/write
//!   deadlines, bounded reply queues with slow-consumer disconnects,
//!   and telemetry.
//! * [`client`] — [`Client`]: a blocking caller with typed errors and
//!   an opt-in seeded-backoff retry for overload.
//! * [`agent`] — [`WorkerAgent`]: the worker-side cluster control
//!   plane (register/heartbeat/drain against a `cs-cluster`
//!   orchestrator).
//!
//! ## Quickstart
//!
//! ```
//! use cs_net::{Client, NetConfig, NetServer};
//! use cs_nn::spec::Scale;
//! use cs_serve::{ExecBackend, ModelRegistry, ServableModel, ServeConfig, Server};
//!
//! let model = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
//! let n_in = model.n_in;
//! let mut registry = ModelRegistry::new();
//! registry.register(model).unwrap();
//! let serve = Server::start(
//!     registry,
//!     ServeConfig { workers: 1, backend: ExecBackend::Sparse, ..ServeConfig::default() },
//! )
//! .unwrap();
//! let net = NetServer::start(serve, NetConfig::default()).unwrap();
//!
//! let mut client = Client::connect(&net.local_addr().to_string()).unwrap();
//! let out = client.request("mlp", &vec![0.5; n_in]).unwrap();
//! assert!(!out.outputs.is_empty());
//! net.shutdown();
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod agent;
pub mod assembler;
pub mod client;
pub mod error;
#[cfg(target_os = "linux")]
pub mod poll;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
pub mod transport;
pub mod wire;

pub use agent::{AgentConfig, WorkerAgent};
pub use assembler::{FrameAssembler, WriteBuffer};
pub use client::{Client, ClientConfig, NetResponse, RetryPolicy};
pub use error::NetError;
pub use server::{NetConfig, NetServer, NetShutdownHandle, Transport};
pub use wire::{
    ErrorCode, Frame, FrameType, WireError, WireModelStatus, DEFAULT_MAX_PAYLOAD, WIRE_VERSION,
};
