//! A thin, zero-dependency epoll binding (Linux only).
//!
//! The repo's zero-dep stance rules out the `libc` crate, but std
//! already links the platform C library — so the handful of symbols the
//! reactor needs (`epoll_create1` / `epoll_ctl` / `epoll_wait`,
//! `pipe2`, and raw fd `read`/`write`/`close`) are declared here
//! directly and wrapped in safe RAII types:
//!
//! * [`Epoll`] — an epoll instance. Interest registration is
//!   level-triggered (the reactor re-arms write interest explicitly,
//!   which keeps the state machine simple and misses nothing).
//! * [`WakePipe`] — a nonblocking self-pipe. Completion threads write
//!   one byte to wake `epoll_wait`; the reactor drains it and scans its
//!   completion queue. Saturation is harmless: a full pipe means a
//!   wakeup is already pending.
//!
//! Everything here is `cfg(target_os = "linux")`; on other platforms
//! the server falls back to the portable thread-per-connection
//! transport (see [`crate::server::Transport`]). The module is public
//! so event-driven *clients* can reuse it — `cs-netload`'s connection
//! sweep multiplexes a thousand sockets from one thread this way,
//! keeping load generation from competing with the system under test
//! for scheduler slots.

use std::io;
use std::os::unix::io::RawFd;

// Constants from the Linux UAPI headers (stable ABI).
/// Readiness: the fd has bytes to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd accepts writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: the fd is in an error state.
pub const EPOLLERR: u32 = 0x008;
/// Condition: the peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Condition: the peer shut down the write half (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// One readiness event, ABI-compatible with `struct epoll_event`.
///
/// On x86-64 the kernel struct is packed (no padding between the
/// 32-bit event mask and the 64-bit data word); other architectures
/// use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An all-zero event, for pre-sizing wait buffers.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness mask (`EPOLLIN | ...`).
    pub fn events(&self) -> u32 {
        // By-value copy: taking a reference into the packed struct
        // would be UB on x86-64.
        self.events
    }

    /// The registered token.
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32, context: &str) -> io::Result<i32> {
    if ret < 0 {
        let err = io::Error::last_os_error();
        Err(io::Error::new(err.kind(), format!("{context}: {err}")))
    } else {
        Ok(ret)
    }
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) }, "epoll_create1")?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64, context: &str) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }, context)?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token, "epoll_ctl(ADD)")
    }

    /// Replaces the interest mask for a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token, "epoll_ctl(MOD)")
    }

    /// Deregisters an fd. Errors are ignorable at close time (closing
    /// an fd deregisters it anyway), so this returns them for the
    /// caller to drop or log.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent::zeroed();
        // Pre-2.6.9 kernels required a non-null event for DEL; passing
        // one is harmless everywhere.
        cvt(
            // SAFETY: `ev` outlives the call.
            unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) },
            "epoll_ctl(DEL)",
        )?;
        Ok(())
    }

    /// Waits up to `timeout_ms` for readiness; fills `events` and
    /// returns how many are valid. A zero return is a timeout.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len().min(i32::MAX as usize) as i32;
        loop {
            // SAFETY: the buffer is valid for `max` entries.
            let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(io::Error::new(err.kind(), format!("epoll_wait: {err}")));
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe {
            close(self.fd);
        }
    }
}

/// The write end of a wake pipe, cheap to clone into completion
/// threads. [`Waker::wake`] never blocks: a full pipe already holds a
/// pending wakeup byte.
#[derive(Clone)]
pub struct Waker {
    fd: RawFd,
    /// Keeps the write-end fd open until the last clone drops.
    _owner: std::sync::Arc<PipeFd>,
}

/// Owns the raw write-end fd so the last [`Waker`] clone closes it.
struct PipeFd(RawFd);

impl Drop for PipeFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe {
            close(self.0);
        }
    }
}

impl Waker {
    /// Wakes the reactor. Best-effort by design: `EAGAIN` (pipe full)
    /// means a wakeup is already queued.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one byte from a live stack slot; fd kept open by `_owner`.
        unsafe {
            let _ = write(self.fd, &byte, 1);
        }
    }
}

/// The read end of the wake pipe, registered with the reactor's epoll.
pub struct WakePipe {
    read_fd: RawFd,
    waker: Waker,
}

impl WakePipe {
    /// Creates a nonblocking close-on-exec pipe pair.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        // SAFETY: fds is a valid 2-slot array.
        cvt(
            unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) },
            "pipe2",
        )?;
        Ok(WakePipe {
            read_fd: fds[0],
            waker: Waker {
                fd: fds[1],
                _owner: std::sync::Arc::new(PipeFd(fds[1])),
            },
        })
    }

    /// The fd to register for `EPOLLIN`.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A cloneable wake handle for completion threads.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Drains every pending wakeup byte (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: buf is a valid 64-byte buffer.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: we own the read end; the write end closes with the
        // last Waker clone.
        unsafe {
            close(self.read_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        // No wakeup queued: times out with zero events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let waker = pipe.waker();
        let t = std::thread::spawn(move || waker.wake());
        let n = ep.wait(&mut events, 2_000).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        pipe.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn repeated_wakes_saturate_without_blocking() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        // Far more wakes than the pipe buffer holds; must not block.
        for _ in 0..100_000 {
            waker.wake();
        }
        pipe.drain();
    }

    #[test]
    fn modify_and_delete_round_trip() {
        let ep = Epoll::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN, 1).unwrap();
        ep.modify(pipe.read_fd(), EPOLLIN, 2).unwrap();
        pipe.waker().wake();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);
        ep.delete(pipe.read_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
