//! Typed errors for the network layer.
//!
//! [`NetError`] is what the [`crate::Client`] and [`crate::NetServer`]
//! surface: codec failures ([`WireError`]), transport failures (I/O,
//! timeouts, a peer that went away), server-side failures relayed as
//! [`crate::wire::ErrorCode`]s, and protocol violations (a reply whose
//! id or type contradicts the request). Everything is a value — the
//! request path never panics.

use std::fmt;

use crate::wire::{ErrorCode, WireError};

/// Error raised by the network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// An OS-level I/O failure (connect, read, write).
    Io {
        /// What was being attempted.
        context: &'static str,
        /// The `std::io::ErrorKind` observed.
        kind: std::io::ErrorKind,
        /// The OS error text.
        detail: String,
    },
    /// The peer's bytes violated the wire protocol.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Remote {
        /// Typed failure code.
        code: ErrorCode,
        /// Tenant the failed request belonged to, as reported by the
        /// server (empty when the failure is not tenant-attributable).
        tenant: String,
        /// Human-readable specifics from the server.
        detail: String,
    },
    /// An I/O deadline elapsed.
    Timeout {
        /// What was being attempted.
        context: &'static str,
    },
    /// The connection closed at a frame boundary.
    ConnectionClosed,
    /// The peer spoke valid frames in an invalid order (wrong reply
    /// type, mismatched id).
    Protocol(String),
    /// A configuration parameter is out of range.
    InvalidConfig(String),
}

impl NetError {
    /// Wraps an `std::io::Error`, folding timeout kinds into
    /// [`NetError::Timeout`] so callers can match on one variant.
    pub fn from_io(context: &'static str, e: &std::io::Error) -> NetError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                NetError::Timeout { context }
            }
            kind => NetError::Io {
                context,
                kind,
                detail: e.to_string(),
            },
        }
    }

    /// Whether this error is the server's backpressure signal (the
    /// client should back off and retry).
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            NetError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io {
                context,
                kind,
                detail,
            } => write!(f, "{context}: i/o error ({kind:?}): {detail}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Remote { code, detail, .. } => write!(f, "server error [{code}]: {detail}"),
            NetError::Timeout { context } => write!(f, "{context}: timed out"),
            NetError::ConnectionClosed => write!(f, "connection closed by peer"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_timeouts_fold_into_the_timeout_variant() {
        let e = std::io::Error::new(std::io::ErrorKind::TimedOut, "deadline");
        assert_eq!(
            NetError::from_io("read frame", &e),
            NetError::Timeout {
                context: "read frame"
            }
        );
        let e = std::io::Error::new(std::io::ErrorKind::WouldBlock, "deadline");
        assert!(matches!(
            NetError::from_io("read frame", &e),
            NetError::Timeout { .. }
        ));
        let e = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone");
        assert!(matches!(
            NetError::from_io("write frame", &e),
            NetError::Io {
                kind: std::io::ErrorKind::BrokenPipe,
                ..
            }
        ));
    }

    #[test]
    fn overload_detection_matches_only_the_backpressure_code() {
        let over = NetError::Remote {
            code: ErrorCode::Overloaded,
            tenant: "acme".to_string(),
            detail: "full".to_string(),
        };
        assert!(over.is_overloaded());
        let other = NetError::Remote {
            code: ErrorCode::UnknownModel,
            tenant: String::new(),
            detail: "x".to_string(),
        };
        assert!(!other.is_overloaded());
        assert!(!NetError::ConnectionClosed.is_overloaded());
    }

    #[test]
    fn display_is_informative() {
        let e = NetError::Remote {
            code: ErrorCode::ShapeMismatch,
            tenant: String::new(),
            detail: "expects 98".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("shape-mismatch"));
        assert!(s.contains("expects 98"));
    }
}
