//! `cs-netserve` — stand up a TCP serving endpoint.
//!
//! Starts a `cs_serve::Server` over the paper's compressed MLP, wraps
//! it in a `cs_net::NetServer`, prints the bound address, and blocks
//! until a client sends the shutdown control frame (which drains every
//! in-flight request before the listener stops). No signal handling:
//! termination is part of the protocol, so CI can stop the server the
//! same way production would.
//!
//! ```text
//! cs-netserve --addr 127.0.0.1:0 --workers 2 --backend sparse \
//!             --addr-file /tmp/addr --metrics-out /tmp/net.jsonl
//! ```
//!
//! **Worker mode** (`--join ORCH_ADDR`): after the listener is up, the
//! process registers with a `cs-orchestrate` control plane under
//! `--worker-id` (responses it serves are stamped with that identity),
//! heartbeats on the orchestrator's schedule, and drains when the
//! orchestrator cascades a cluster shutdown — so stopping the cluster
//! stops every worker through the same protocol.
//!
//! **Model lifecycle** (`--registry DIR`): points the server at an
//! on-disk `cs-registry` store so clients can hot-load versions over
//! the wire (`LoadModel` frames). `--empty` skips the built-in MLP —
//! the server starts with nothing resident and serves only what is
//! loaded at runtime, which is how the registry-smoke job proves cold
//! bring-up. `--memory-budget` bounds resident model bytes (LRU
//! eviction of drained idle versions), `--tenant-quota` caps any one
//! tenant's share of the admission queue.
//!
//! Exit codes: `0` clean shutdown, `1` startup/config failure,
//! `3` clean shutdown but the decode-error counter was nonzero (the CI
//! smoke job fails on any malformed traffic).

use std::sync::Arc;

use cs_net::{AgentConfig, NetConfig, NetServer, Transport, WorkerAgent};
use cs_nn::spec::Scale;
use cs_serve::{
    ExecBackend, ModelRegistry, Recorder, Registry, ServableModel, ServeConfig, Server,
};
use cs_telemetry::MonotonicClock;

struct Args {
    addr: String,
    addr_file: Option<String>,
    metrics_out: Option<String>,
    workers: usize,
    scale: usize,
    seed: u64,
    backend: ExecBackend,
    max_connections: usize,
    transport: Transport,
    queue_depth: usize,
    max_batch: usize,
    join: Option<String>,
    worker_id: String,
    registry_dir: Option<String>,
    empty: bool,
    memory_budget: usize,
    tenant_quota: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: cs-netserve [--addr HOST:PORT] [--addr-file PATH] [--metrics-out PATH]\n\
         \x20                 [--workers N] [--scale N] [--seed N]\n\
         \x20                 [--backend simulator|sparse|dense] [--max-connections N]\n\
         \x20                 [--transport threaded|reactor] [--queue-depth N]\n\
         \x20                 [--max-batch N] [--join ORCH_ADDR] [--worker-id NAME]\n\
         \x20                 [--registry DIR] [--empty] [--memory-budget BYTES]\n\
         \x20                 [--tenant-quota N]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        metrics_out: None,
        workers: 2,
        scale: 8,
        seed: 7,
        backend: ExecBackend::Sparse,
        max_connections: 64,
        transport: Transport::default(),
        queue_depth: 64,
        max_batch: 8,
        join: None,
        worker_id: "local".to_string(),
        registry_dir: None,
        empty: false,
        memory_budget: 0,
        tenant_quota: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--addr-file" => out.addr_file = Some(value("--addr-file")),
            "--metrics-out" => out.metrics_out = Some(value("--metrics-out")),
            "--workers" => out.workers = parse_num(&value("--workers"), "--workers"),
            "--scale" => out.scale = parse_num(&value("--scale"), "--scale"),
            "--seed" => out.seed = parse_num(&value("--seed"), "--seed") as u64,
            "--max-connections" => {
                out.max_connections = parse_num(&value("--max-connections"), "--max-connections")
            }
            "--transport" => {
                out.transport = match value("--transport").parse() {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage();
                    }
                }
            }
            "--queue-depth" => {
                out.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth")
            }
            "--max-batch" => out.max_batch = parse_num(&value("--max-batch"), "--max-batch"),
            "--join" => out.join = Some(value("--join")),
            "--worker-id" => out.worker_id = value("--worker-id"),
            "--registry" => out.registry_dir = Some(value("--registry")),
            "--empty" => out.empty = true,
            "--memory-budget" => {
                out.memory_budget = parse_num(&value("--memory-budget"), "--memory-budget")
            }
            "--tenant-quota" => {
                out.tenant_quota = parse_num(&value("--tenant-quota"), "--tenant-quota")
            }
            "--backend" => {
                out.backend = match value("--backend").as_str() {
                    "simulator" | "sim" => ExecBackend::Simulator,
                    "sparse" => ExecBackend::Sparse,
                    "dense" => ExecBackend::Dense,
                    other => {
                        eprintln!("error: unknown backend {other:?}");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    out
}

fn parse_num(s: &str, flag: &str) -> usize {
    match s.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {s:?}");
            usage();
        }
    }
}

fn main() {
    let args = parse_args();
    let registry = Arc::new(Registry::new());

    let mut models = ModelRegistry::new();
    if args.empty {
        // Cold bring-up: nothing resident until a client hot-loads a
        // version out of the on-disk registry over the wire.
        if args.registry_dir.is_none() {
            eprintln!("error: --empty without --registry serves nothing forever");
            std::process::exit(1);
        }
    } else {
        let model = match ServableModel::mlp(Scale::Reduced(args.scale), args.seed) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("building model failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = models.register(model) {
            eprintln!("registering model failed: {e}");
            std::process::exit(1);
        }
    }
    let serve_cfg = ServeConfig {
        workers: args.workers,
        backend: args.backend,
        node: args.worker_id.clone(),
        queue_depth: args.queue_depth,
        max_batch: args.max_batch,
        memory_budget_bytes: args.memory_budget as u64,
        tenant_quota: args.tenant_quota,
        ..ServeConfig::default()
    };
    let serve = match Server::start_with_recorder(
        models,
        serve_cfg,
        Arc::new(MonotonicClock::new()),
        registry.clone(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("starting server failed: {e}");
            std::process::exit(1);
        }
    };
    let served = serve.model_names();
    let net_cfg = NetConfig {
        addr: args.addr.clone(),
        max_connections: args.max_connections,
        transport: args.transport,
        registry_dir: args.registry_dir.clone(),
        ..NetConfig::default()
    };
    let net = match NetServer::start_with_recorder(serve, net_cfg, registry.clone()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("starting network frontend failed: {e}");
            std::process::exit(1);
        }
    };

    let addr = net.local_addr();
    println!(
        "cs-netserve listening on {addr} (models {served:?}, {} workers, {} transport)",
        args.workers,
        net.transport()
    );
    if let Some(path) = &args.addr_file {
        // The load generator discovers the ephemeral port through this
        // file, so write it atomically (write tmp, rename).
        let tmp = format!("{path}.tmp");
        let write =
            std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(1);
        }
    }

    // Worker mode: enroll with the orchestrator. The agent owns the
    // control connection; an orchestrator-cascaded shutdown drains the
    // local runtime and unblocks wait_for_shutdown below, exactly like
    // a direct client shutdown frame.
    let _agent = match &args.join {
        Some(orch_addr) => {
            match WorkerAgent::join(
                AgentConfig::new(
                    orch_addr.clone(),
                    args.worker_id.clone(),
                    addr.to_string(),
                    served.clone(),
                ),
                net.shutdown_handle(),
            ) {
                Ok(agent) => {
                    println!("joined orchestrator {orch_addr} as {:?}", args.worker_id);
                    Some(agent)
                }
                Err(e) => {
                    eprintln!("joining orchestrator {orch_addr} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };

    net.wait_for_shutdown();
    let snapshot = net.shutdown();
    println!(
        "shutdown: {} submitted, {} completed, {} rejected",
        snapshot.submitted, snapshot.completed, snapshot.rejected
    );

    if let Some(path) = &args.metrics_out {
        let jsonl = registry.jsonl().unwrap_or_default();
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(1);
        }
        println!("telemetry written to {path}");
    }

    let decode_errors = registry
        .find_counter("net_decode_errors_total", &[])
        .map(|c| c.get())
        .unwrap_or(0);
    if decode_errors > 0 {
        eprintln!("error: {decode_errors} decode errors observed");
        std::process::exit(3);
    }
}
