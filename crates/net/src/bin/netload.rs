//! `cs-netload` — closed-loop multi-connection load generator.
//!
//! Opens `--conns` TCP connections to a running `cs-netserve`, asks the
//! server for the model's input width, then drives `--requests`
//! inferences per connection closed-loop (each connection keeps exactly
//! one request in flight), reusing the deterministic request shapes the
//! in-process load generator uses (`cs_serve::loadgen::request_input`),
//! so a network sweep is replayable by seed. Overload rejections are
//! retried with backoff and counted, not failed.
//!
//! Prints client-observed p50/p95/p99 socket latency and, with
//! `--out PATH`, writes one JSON line per connection plus an aggregate
//! line. `--shutdown` sends the shutdown control frame afterwards and
//! waits for the drain ack — the CI smoke job uses that to stop the
//! server cleanly.
//!
//! ```text
//! cs-netload --addr 127.0.0.1:4885 --conns 4 --requests 64 --shutdown
//! ```
//!
//! Exit codes: `0` success, `1` bad usage or connect failure, `2` any
//! request failed with a non-overload error.

use std::time::Instant;

use cs_net::Client;
use cs_serve::loadgen::request_input;

struct Args {
    addr: String,
    conns: usize,
    requests: u64,
    seed: u64,
    model: String,
    out: Option<String>,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cs-netload --addr HOST:PORT [--conns N] [--requests N] [--seed N]\n\
         \x20                [--model NAME] [--out PATH] [--shutdown]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        conns: 4,
        requests: 64,
        seed: 7,
        model: "mlp".to_string(),
        out: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--conns" => out.conns = parse_num(&value("--conns"), "--conns") as usize,
            "--requests" => out.requests = parse_num(&value("--requests"), "--requests"),
            "--seed" => out.seed = parse_num(&value("--seed"), "--seed"),
            "--model" => out.model = value("--model"),
            "--out" => out.out = Some(value("--out")),
            "--shutdown" => out.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    if out.addr.is_empty() {
        eprintln!("error: --addr is required");
        usage();
    }
    if out.conns == 0 || out.requests == 0 {
        eprintln!("error: --conns and --requests must be at least 1");
        usage();
    }
    out
}

fn parse_num(s: &str, flag: &str) -> u64 {
    match s.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {s:?}");
            usage();
        }
    }
}

/// Per-connection sweep outcome.
struct ConnResult {
    conn: usize,
    completed: u64,
    overload_retries: u64,
    latencies_us: Vec<u64>,
    error: Option<String>,
}

fn run_connection(args: &Args, conn: usize) -> ConnResult {
    let mut result = ConnResult {
        conn,
        completed: 0,
        overload_retries: 0,
        latencies_us: Vec::with_capacity(args.requests as usize),
        error: None,
    };
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            result.error = Some(format!("connect: {e}"));
            return result;
        }
    };
    let n_in = match client.model_info(&args.model) {
        Ok((n_in, _)) => n_in as usize,
        Err(e) => {
            result.error = Some(format!("model query: {e}"));
            return result;
        }
    };
    for i in 0..args.requests {
        // Globally unique request id -> unique deterministic input,
        // exactly as the in-process loadgen shapes its traffic.
        let request_id = (conn as u64) * args.requests + i;
        let input = request_input(n_in, request_id, args.seed);
        let mut backoff_us = 50u64;
        loop {
            let t0 = Instant::now();
            match client.request(&args.model, &input) {
                Ok(_) => {
                    result.latencies_us.push(t0.elapsed().as_micros() as u64);
                    result.completed += 1;
                    break;
                }
                Err(e) if e.is_overloaded() => {
                    // Closed-loop backoff: the server said try later.
                    result.overload_retries += 1;
                    std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                    backoff_us = (backoff_us * 2).min(20_000);
                }
                Err(e) => {
                    result.error = Some(format!("request {request_id}: {e}"));
                    return result;
                }
            }
        }
    }
    result
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn jsonl_line(r: &ConnResult) -> String {
    let mut sorted = r.latencies_us.clone();
    sorted.sort_unstable();
    format!(
        "{{\"conn\":{},\"completed\":{},\"overload_retries\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"error\":{}}}",
        r.conn,
        r.completed,
        r.overload_retries,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        match &r.error {
            Some(e) => format!("{:?}", e),
            None => "null".to_string(),
        }
    )
}

fn main() {
    let args = parse_args();

    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|conn| {
                scope.spawn({
                    let args = &args;
                    move || run_connection(args, conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(conn, h)| {
                h.join().unwrap_or_else(|_| ConnResult {
                    conn,
                    completed: 0,
                    overload_retries: 0,
                    latencies_us: Vec::new(),
                    error: Some("connection thread panicked".to_string()),
                })
            })
            .collect()
    });

    let mut all: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    all.sort_unstable();
    let completed: u64 = results.iter().map(|r| r.completed).sum();
    let retries: u64 = results.iter().map(|r| r.overload_retries).sum();
    let failed: Vec<&ConnResult> = results.iter().filter(|r| r.error.is_some()).collect();

    println!(
        "cs-netload: {} conns x {} requests against {} (model \"{}\", seed {})",
        args.conns, args.requests, args.addr, args.model, args.seed
    );
    println!(
        "completed {completed}, overload retries {retries}, socket latency p50 {} us, p95 {} us, p99 {} us",
        percentile(&all, 0.50),
        percentile(&all, 0.95),
        percentile(&all, 0.99),
    );
    for r in &failed {
        eprintln!(
            "conn {} failed: {}",
            r.conn,
            r.error.as_deref().unwrap_or("")
        );
    }

    if let Some(path) = &args.out {
        let mut lines: Vec<String> = results.iter().map(jsonl_line).collect();
        lines.push(format!(
            "{{\"aggregate\":true,\"conns\":{},\"completed\":{},\"overload_retries\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            args.conns,
            completed,
            retries,
            percentile(&all, 0.50),
            percentile(&all, 0.95),
            percentile(&all, 0.99),
        ));
        let body = lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(2);
        }
        println!("results written to {path}");
    }

    if args.shutdown {
        match Client::connect(&args.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("server drained and stopped"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if !failed.is_empty() {
        std::process::exit(2);
    }
}
