//! Incremental frame assembly and write coalescing.
//!
//! The blocking transport ([`crate::transport::read_frame`]) can park a
//! thread until a whole frame arrives; a reactor cannot. This module
//! factors the codec into resumable halves:
//!
//! * [`FrameAssembler`] — feed it arbitrary byte chunks as the socket
//!   yields them; it surfaces complete frames in order. Decoding
//!   delegates to [`Frame::decode_with_limit`], the same streaming
//!   entry point the blocking path uses, so the two transports share
//!   the `WireError` taxonomy *by construction*: bad magic, bad
//!   version, unknown type, and oversized lengths are all rejected
//!   from the fixed 16-byte header before any payload allocation.
//! * [`WriteBuffer`] — coalesces encoded replies and flushes as much
//!   as a nonblocking socket accepts, tracking cumulative pushed /
//!   flushed offsets so the caller can tell exactly when each frame
//!   has fully left the buffer (the reactor's frames-out and latency
//!   metrics hang off that edge).
//!
//! Both types are transport-agnostic plain state machines, which is
//! what makes them easy to fuzz differentially against the blocking
//! decoder (see `conformance net-fuzz` and `tests/assembler.rs`).

use std::io::{self, Write};

use crate::wire::{Frame, WireError, HEADER_LEN};

/// Compact the internal buffer once this many consumed bytes accumulate
/// at the front.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// A resumable frame decoder: push bytes in, pull frames out.
///
/// Errors latch: once a stream is malformed every subsequent
/// [`FrameAssembler::next_frame`] returns the same error, mirroring the
/// blocking path where a decode error closes the connection.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes before `start` are already consumed, awaiting compaction.
    start: usize,
    max_payload: u32,
    failed: Option<WireError>,
}

impl FrameAssembler {
    /// A fresh assembler enforcing `max_payload` (see
    /// [`crate::wire::DEFAULT_MAX_PAYLOAD`]).
    pub fn new(max_payload: u32) -> FrameAssembler {
        FrameAssembler {
            buf: Vec::new(),
            start: 0,
            max_payload,
            failed: None,
        }
    }

    /// Appends a chunk read from the socket. Chunks may split frames —
    /// and even the 16-byte header — at any byte boundary.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.failed.is_some() {
            // The connection is already condemned; buffering more of a
            // malformed stream would be pure waste.
            return;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Decodes the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// The same [`WireError`] taxonomy as the blocking decoder; the
    /// error latches and repeats on every later call.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        match Frame::decode_with_limit(&self.buf[self.start..], self.max_payload) {
            Ok(Some((frame, used))) => {
                self.start += used;
                self.compact();
                Ok(Some(frame))
            }
            Ok(None) => {
                self.compact();
                Ok(None)
            }
            Err(e) => {
                self.failed = Some(e.clone());
                // Drop the poisoned bytes; nothing further will decode.
                self.buf = Vec::new();
                self.start = 0;
                Err(e)
            }
        }
    }

    /// Bytes currently buffered awaiting a complete frame. After
    /// draining via [`FrameAssembler::next_frame`] this is bounded by
    /// `HEADER_LEN + max_payload - 1` (one incomplete frame), since a
    /// complete in-bounds frame always decodes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The latched decode error, if the stream is condemned.
    pub fn failure(&self) -> Option<&WireError> {
        self.failed.as_ref()
    }

    /// The hard ceiling on [`FrameAssembler::buffered`] once frames are
    /// drained after every push: one maximal in-flight frame.
    pub fn buffered_bound(&self) -> usize {
        HEADER_LEN + self.max_payload as usize
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// A coalescing outbound buffer for a nonblocking socket.
///
/// Frames are appended whole; [`WriteBuffer::flush_to`] writes as much
/// as the socket accepts. The cumulative `total_pushed` /
/// `total_flushed` offsets let the owner map flush progress back to
/// frame boundaries.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    start: usize,
    total_pushed: u64,
    total_flushed: u64,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Appends encoded bytes (typically one whole frame).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.total_pushed += bytes.len() as u64;
    }

    /// Unflushed bytes still held.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when everything pushed has been flushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative bytes ever pushed (monotonic stream offset).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Cumulative bytes ever flushed to the socket.
    pub fn total_flushed(&self) -> u64 {
        self.total_flushed
    }

    /// Writes as much as `w` accepts without blocking. Returns `true`
    /// if any bytes were written (write-progress tracking for the
    /// slow-consumer deadline). `WouldBlock` is progress-neutral, not
    /// an error; real I/O errors surface.
    ///
    /// # Errors
    ///
    /// Any I/O error other than `WouldBlock` / `Interrupted`.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        let mut wrote = false;
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    self.total_flushed += n as u64;
                    wrote = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(wrote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{ErrorCode, DEFAULT_MAX_PAYLOAD};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Ping { id: 1 },
            Frame::Request {
                id: 2,
                model: "mlp".to_string(),
                tenant: "acme".to_string(),
                input: vec![1.0, f32::NAN, -0.0, 3.5],
            },
            Frame::Error {
                id: 3,
                code: ErrorCode::Overloaded,
                tenant: "acme".to_string(),
                detail: "queue full".to_string(),
            },
        ]
    }

    #[test]
    fn whole_stream_in_one_push_yields_all_frames() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }
        let mut asm = FrameAssembler::new(DEFAULT_MAX_PAYLOAD);
        asm.push(&bytes);
        let mut out = Vec::new();
        while let Some(f) = asm.next_frame().unwrap() {
            out.push(f);
        }
        assert_eq!(out.len(), frames.len());
        for (a, b) in out.iter().zip(&frames) {
            assert_eq!(a.encode(), b.encode());
        }
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn error_latches_and_clears_buffer() {
        let mut asm = FrameAssembler::new(DEFAULT_MAX_PAYLOAD);
        asm.push(&[0xde, 0xad, 0xbe, 0xef]);
        let first = asm.next_frame().unwrap_err();
        let again = asm.next_frame().unwrap_err();
        assert_eq!(first.to_string(), again.to_string());
        assert_eq!(asm.buffered(), 0);
        asm.push(&Frame::Ping { id: 9 }.encode());
        assert!(asm.next_frame().is_err(), "latched error must persist");
        assert_eq!(asm.buffered(), 0, "pushes after failure are discarded");
    }

    #[test]
    fn write_buffer_tracks_pushed_and_flushed_offsets() {
        let mut wb = WriteBuffer::new();
        let a = Frame::Ping { id: 1 }.encode();
        let b = Frame::Pong { id: 2 }.encode();
        wb.push(&a);
        wb.push(&b);
        assert_eq!(wb.total_pushed(), (a.len() + b.len()) as u64);
        let mut sink = Vec::new();
        let wrote = wb.flush_to(&mut sink).unwrap();
        assert!(wrote);
        assert!(wb.is_empty());
        assert_eq!(wb.total_flushed(), wb.total_pushed());
        let mut expect = a;
        expect.extend_from_slice(&b);
        assert_eq!(sink, expect);
    }

    /// A writer that accepts a fixed number of bytes per call, then
    /// `WouldBlock`s — models a congested nonblocking socket.
    struct Trickle {
        accepted: Vec<u8>,
        per_call: usize,
        calls_before_block: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_before_block == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_before_block -= 1;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buffer_resumes_after_would_block() {
        let frame = Frame::Request {
            id: 7,
            model: "m".to_string(),
            tenant: String::new(),
            input: vec![0.25; 64],
        }
        .encode();
        let mut wb = WriteBuffer::new();
        wb.push(&frame);
        let mut sink = Trickle {
            accepted: Vec::new(),
            per_call: 10,
            calls_before_block: 3,
        };
        wb.flush_to(&mut sink).unwrap();
        assert_eq!(wb.total_flushed(), 30);
        assert_eq!(wb.len(), frame.len() - 30);
        sink.calls_before_block = usize::MAX;
        sink.per_call = usize::MAX;
        let wrote = wb.flush_to(&mut sink).unwrap();
        assert!(wrote);
        assert!(wb.is_empty());
        assert_eq!(sink.accepted, frame);
    }
}
