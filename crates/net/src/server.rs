//! The TCP frontend for the serving runtime.
//!
//! Two interchangeable transports sit behind one [`NetServer`] API,
//! selected by [`NetConfig::transport`]:
//!
//! * [`Transport::Threaded`] — the portable oracle. Each accepted
//!   connection gets a reader thread (decodes frames, submits
//!   requests) and a writer thread (resolves tickets **in submission
//!   order** and writes replies):
//!
//! ```text
//! clients ──TCP──▶ accept thread ──▶ per-connection reader ──submit──▶ cs_serve::Server
//!    ▲              (conn cap)        (decode, dispatch)                  │
//!    │                                      │ FIFO queue                  │
//!    └───────────── per-connection writer ◀─┴──── tickets ◀───────────────┘
//! ```
//!
//! * [`Transport::Reactor`] — a single epoll event loop owning every
//!   nonblocking socket plus a fixed completion-thread pool (see
//!   [`crate::reactor`]); Linux only, and the scalable choice for
//!   thousands of connections. On other platforms it falls back to
//!   the threaded transport.
//!
//! Both transports share semantics exactly — the loopback suite runs
//! every test against each: a client may pipeline requests and
//! responses come back in per-connection FIFO order while the server
//! batches across connections; admission backpressure
//! ([`cs_serve::ServeError::Overloaded`]) travels to the client as a
//! typed error frame rather than blocking the socket; a client that
//! stops draining replies is disconnected once the bounded
//! per-connection reply queue has been full past
//! [`NetConfig::slow_consumer_grace`] (counted in
//! `net_slow_consumer_disconnects_total`).
//!
//! A [`crate::wire::Frame::Shutdown`] control frame drains the serving
//! runtime through [`cs_serve::DrainHandle`] — every in-flight request
//! is answered first — then acks and stops the listener, which is how
//! `cs-netserve` terminates without signal handling.
//!
//! The whole path is metered through `cs-telemetry`: a connections
//! gauge, frames in/out and decode-error counters, and a
//! socket-to-response latency histogram (decode of the request frame to
//! the response frame fully written).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cs_registry::{RegistryError, RegistryStore};
use cs_serve::{DrainHandle, InferRequest, ServeSnapshot, Server, Ticket};
use cs_telemetry::{
    buckets, Clock, Counter, Gauge, Histogram, Labels, MonotonicClock, NoopRecorder, Recorder,
};

use crate::error::NetError;
use crate::transport::{read_frame, write_frame};
use crate::wire::{ErrorCode, Frame, DEFAULT_MAX_PAYLOAD};

/// Which network data plane serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Thread-per-connection reader/writer pairs. Portable, simple,
    /// and the conformance oracle the reactor is verified against;
    /// caps out at a few hundred realistic connections.
    #[default]
    Threaded,
    /// One epoll event loop plus a fixed completion pool (Linux).
    /// Scales to thousands of connections with flat tail latency. On
    /// non-Linux platforms this silently falls back to `Threaded`
    /// (check [`NetServer::transport`] for the effective choice).
    Reactor,
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Threaded => write!(f, "threaded"),
            Transport::Reactor => write!(f, "reactor"),
        }
    }
}

impl std::str::FromStr for Transport {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Transport, NetError> {
        match s.to_ascii_lowercase().as_str() {
            "threaded" => Ok(Transport::Threaded),
            "reactor" => Ok(Transport::Reactor),
            other => Err(NetError::InvalidConfig(format!(
                "unknown transport {other:?} (expected \"threaded\" or \"reactor\")"
            ))),
        }
    }
}

/// Network frontend configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Concurrent-connection cap; excess connections are answered with
    /// a [`ErrorCode::ConnectionLimit`] error frame and closed.
    pub max_connections: usize,
    /// Per-connection read deadline; an idle connection is closed when
    /// it elapses. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline (a stuck client cannot wedge a
    /// writer thread forever).
    pub write_timeout: Option<Duration>,
    /// Payload-length cap enforced before any allocation.
    pub max_payload: u32,
    /// Which data plane serves connections.
    pub transport: Transport,
    /// Outstanding replies a single connection may have queued before
    /// the server stops decoding further frames from it (pipelining
    /// backpressure) — the bound on per-connection reply buffering.
    pub max_pending_replies: usize,
    /// How long a connection's reply queue may stay full (the client
    /// not draining responses) before the server disconnects it as a
    /// slow consumer. `None` waits forever.
    pub slow_consumer_grace: Option<Duration>,
    /// Directory of an on-disk `CSMR` model registry (see
    /// [`cs_registry::RegistryStore`]). When set, `LoadModel` control
    /// frames hot-load `(model, version)` containers from it; when
    /// `None`, loads are refused with an [`ErrorCode::Internal`]
    /// error frame.
    pub registry_dir: Option<String>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_payload: DEFAULT_MAX_PAYLOAD,
            transport: Transport::Threaded,
            max_pending_replies: 64,
            slow_consumer_grace: Some(Duration::from_secs(5)),
            registry_dir: None,
        }
    }
}

impl NetConfig {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.max_connections == 0 {
            return Err(NetError::InvalidConfig(
                "max_connections must be at least 1".to_string(),
            ));
        }
        if self.max_payload < 64 {
            return Err(NetError::InvalidConfig(format!(
                "max_payload {} is too small to carry any request",
                self.max_payload
            )));
        }
        if self.max_pending_replies == 0 {
            return Err(NetError::InvalidConfig(
                "max_pending_replies must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// The network-path metric handles, fetched once at startup. Shared by
/// both transports so the series (and the exact increment points) are
/// identical whichever data plane is serving.
pub(crate) struct NetMetrics {
    pub(crate) connections: Gauge,
    pub(crate) accepted: Counter,
    pub(crate) rejected: Counter,
    pub(crate) frames_in: Counter,
    pub(crate) frames_out: Counter,
    pub(crate) decode_errors: Counter,
    pub(crate) requests: Counter,
    pub(crate) slow_consumer: Counter,
    pub(crate) latency: Histogram,
}

impl NetMetrics {
    fn new(recorder: &dyn Recorder) -> Self {
        NetMetrics {
            connections: recorder.gauge(
                "net_connections",
                "Currently open client connections",
                Labels::new(),
            ),
            accepted: recorder.counter(
                "net_connections_accepted_total",
                "Connections accepted",
                Labels::new(),
            ),
            rejected: recorder.counter(
                "net_connections_rejected_total",
                "Connections refused at the connection cap",
                Labels::new(),
            ),
            frames_in: recorder.counter(
                "net_frames_in_total",
                "Frames decoded from clients",
                Labels::new(),
            ),
            frames_out: recorder.counter(
                "net_frames_out_total",
                "Frames written to clients",
                Labels::new(),
            ),
            decode_errors: recorder.counter(
                "net_decode_errors_total",
                "Malformed or protocol-violating client frames",
                Labels::new(),
            ),
            requests: recorder.counter(
                "net_requests_total",
                "Inference requests received over the network",
                Labels::new(),
            ),
            slow_consumer: recorder.counter(
                "net_slow_consumer_disconnects_total",
                "Connections cut because the client stopped draining \
                 replies past the slow-consumer grace period",
                Labels::new(),
            ),
            latency: recorder.histogram(
                "net_request_latency_us",
                "Socket-to-response latency: request frame decoded to \
                 response frame fully written (µs)",
                Labels::new(),
                &buckets::duration_us(),
            ),
        }
    }
}

/// State shared by the accept loop, every connection thread, and the
/// owning [`NetServer`] handle (threaded transport).
struct Shared {
    serve: Server,
    drain: DrainHandle,
    /// On-disk model store backing `LoadModel` control frames.
    registry: Option<RegistryStore>,
    cfg: NetConfig,
    clock: Arc<dyn Clock>,
    metrics: NetMetrics,
    stop: AtomicBool,
    active: AtomicUsize,
    /// Streams of open connections (for force-close at shutdown).
    conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Reader/writer thread handles, joined at shutdown.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Signalled when a remote shutdown control frame has drained the
    /// server ([`NetServer::wait_for_shutdown`] blocks on it).
    shutdown_signal: (Mutex<bool>, Condvar),
    local_addr: SocketAddr,
}

impl Shared {
    /// Marks the frontend as stopping, wakes the accept loop, and
    /// signals [`NetServer::wait_for_shutdown`] waiters. Idempotent.
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next wakeup; a
        // throwaway local connection provides one.
        let _ = TcpStream::connect(self.local_addr);
        let (lock, cv) = &self.shutdown_signal;
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *stopped = true;
        cv.notify_all();
    }
}

/// A message queued for a connection's writer thread, in the order the
/// reader produced it — which is what makes replies per-connection FIFO.
enum Outgoing {
    /// A frame that is ready to write as-is.
    Ready(Frame),
    /// An in-flight inference; the writer blocks on the ticket so the
    /// reply goes out in submission order even when batches reorder
    /// completion across workers.
    Pending { id: u64, t0_us: u64, ticket: Ticket },
}

/// Why a [`ReplyQueue::push`] did not enqueue.
enum PushError {
    /// The queue stayed full past the grace deadline: the client is a
    /// slow consumer.
    TimedOut,
    /// The writer side is gone (write failure closed the stream).
    Closed,
}

/// The bounded per-connection reply queue between reader and writer.
///
/// `std::sync::mpsc::SyncSender` blocks forever on a full channel; this
/// queue instead supports a push *deadline*, which is what turns an
/// unbounded reply pile-up against a non-reading client into a typed
/// slow-consumer disconnect.
struct ReplyQueue {
    inner: Mutex<ReplyQueueInner>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

struct ReplyQueueInner {
    q: VecDeque<Outgoing>,
    closed: bool,
}

impl ReplyQueue {
    fn new(cap: usize) -> ReplyQueue {
        ReplyQueue {
            inner: Mutex::new(ReplyQueueInner {
                q: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Enqueues, blocking while full — up to `grace` (`None` waits
    /// forever, matching the old unbounded-patience behavior).
    fn push(&self, msg: Outgoing, grace: Option<Duration>) -> Result<(), PushError> {
        let deadline = grace.map(|d| Instant::now() + d);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.q.len() < self.cap {
                inner.q.push_back(msg);
                self.not_empty.notify_one();
                return Ok(());
            }
            match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Err(PushError::TimedOut);
                    }
                    let (guard, _) = self
                        .not_full
                        .wait_timeout(inner, dl - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    inner = guard;
                }
                None => {
                    inner = self
                        .not_full
                        .wait(inner)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }

    /// Dequeues; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<Outgoing> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(msg) = inner.q.pop_front() {
                self.not_full.notify_one();
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Marks the queue closed and wakes both sides. Queued messages
    /// remain poppable (the writer drains them before exiting).
    fn close(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// The transport actually running behind a [`NetServer`].
enum Frontend {
    Threaded {
        shared: Arc<Shared>,
        accept_thread: Option<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorServer),
}

/// The running TCP frontend. Owns the wrapped [`Server`]; dropping or
/// [`NetServer::shutdown`] stops the listener, closes connections,
/// drains the serving runtime and joins every thread.
pub struct NetServer {
    inner: Frontend,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.local_addr())
            .field("transport", &self.transport())
            .finish_non_exhaustive()
    }
}

/// The transport actually used after platform fallback.
fn effective_transport(requested: Transport) -> Transport {
    if cfg!(target_os = "linux") {
        requested
    } else {
        Transport::Threaded
    }
}

impl NetServer {
    /// Starts the frontend around an already-running server, without
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Invalid configs and bind failures.
    pub fn start(serve: Server, cfg: NetConfig) -> Result<NetServer, NetError> {
        NetServer::start_with_recorder(serve, cfg, Arc::new(NoopRecorder))
    }

    /// Starts the frontend with a telemetry recorder. Pass the same
    /// [`cs_telemetry::Registry`] the wrapped server records to and the
    /// JSONL/Prometheus dump carries the serving and network series
    /// side by side.
    ///
    /// # Errors
    ///
    /// Invalid configs and bind failures.
    pub fn start_with_recorder(
        serve: Server,
        cfg: NetConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Result<NetServer, NetError> {
        cfg.validate()?;
        let registry = match &cfg.registry_dir {
            Some(dir) => Some(RegistryStore::open(dir).map_err(|e| {
                NetError::InvalidConfig(format!("opening model registry {dir:?}: {e}"))
            })?),
            None => None,
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| NetError::from_io("bind listener", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::from_io("resolve bound address", &e))?;
        let metrics = NetMetrics::new(recorder.as_ref());

        if effective_transport(cfg.transport) == Transport::Reactor {
            #[cfg(target_os = "linux")]
            {
                let shared = Arc::new(crate::reactor::ReactorShared::new(
                    serve,
                    registry,
                    cfg,
                    Arc::new(MonotonicClock::new()),
                    metrics,
                    local_addr,
                ));
                let reactor = crate::reactor::ReactorServer::start(shared, listener)?;
                return Ok(NetServer {
                    inner: Frontend::Reactor(reactor),
                });
            }
        }

        let drain = serve.drain_handle();
        let shared = Arc::new(Shared {
            serve,
            drain,
            registry,
            cfg,
            clock: Arc::new(MonotonicClock::new()),
            metrics,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            local_addr,
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cs-net-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .map_err(|e| NetError::InvalidConfig(format!("spawning accept thread: {e}")))?
        };
        Ok(NetServer {
            inner: Frontend::Threaded {
                shared,
                accept_thread: Some(accept_thread),
            },
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            Frontend::Threaded { shared, .. } => shared.local_addr,
            #[cfg(target_os = "linux")]
            Frontend::Reactor(r) => r.shared().local_addr,
        }
    }

    /// The transport actually serving (after platform fallback:
    /// requesting [`Transport::Reactor`] off-Linux yields `Threaded`).
    pub fn transport(&self) -> Transport {
        match &self.inner {
            Frontend::Threaded { .. } => Transport::Threaded,
            #[cfg(target_os = "linux")]
            Frontend::Reactor(_) => Transport::Reactor,
        }
    }

    /// The wrapped serving runtime — the in-process lane differential
    /// tests submit to directly.
    pub fn server(&self) -> &Server {
        match &self.inner {
            Frontend::Threaded { shared, .. } => &shared.serve,
            #[cfg(target_os = "linux")]
            Frontend::Reactor(r) => &r.shared().serve,
        }
    }

    /// Blocks until a client's shutdown control frame has drained the
    /// server (or [`NetServer::shutdown`] was called from elsewhere).
    pub fn wait_for_shutdown(&self) {
        let (lock, cv) = match &self.inner {
            Frontend::Threaded { shared, .. } => {
                let (l, c) = &shared.shutdown_signal;
                (l, c)
            }
            #[cfg(target_os = "linux")]
            Frontend::Reactor(r) => {
                let (l, c) = &r.shared().shutdown_signal;
                (l, c)
            }
        };
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        while !*stopped {
            stopped = cv
                .wait(stopped)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stops accepting, closes every connection, drains the serving
    /// runtime, joins all threads and returns the final snapshot.
    pub fn shutdown(mut self) -> ServeSnapshot {
        match &mut self.inner {
            Frontend::Threaded {
                shared,
                accept_thread,
            } => {
                stop_and_join_threaded(shared, accept_thread);
                shared.serve.stats()
            }
            #[cfg(target_os = "linux")]
            Frontend::Reactor(r) => {
                r.stop_and_join();
                r.shared().serve.stats()
            }
        }
    }

    /// A cloneable handle that can initiate this frontend's shutdown
    /// from another thread (the worker agent uses it when the
    /// orchestrator commands a drain). After
    /// [`NetShutdownHandle::initiate`] returns,
    /// [`NetServer::wait_for_shutdown`] unblocks and the owner should
    /// call [`NetServer::shutdown`] to join the threads.
    pub fn shutdown_handle(&self) -> NetShutdownHandle {
        match &self.inner {
            Frontend::Threaded { shared, .. } => {
                NetShutdownHandle::new(HandleInner::Threaded(Arc::clone(shared)))
            }
            #[cfg(target_os = "linux")]
            Frontend::Reactor(r) => {
                NetShutdownHandle::new(HandleInner::Reactor(Arc::clone(r.shared())))
            }
        }
    }
}

fn stop_and_join_threaded(shared: &Arc<Shared>, accept_thread: &mut Option<JoinHandle<()>>) {
    shared.begin_stop();
    // Force-close open connections so their reader threads unblock.
    {
        let conns = shared
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (_, stream) in conns.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
    if let Some(t) = accept_thread.take() {
        let _ = t.join();
    }
    loop {
        // Connection threads can spawn while we join (an accept racing
        // the stop flag), so drain the list until empty.
        let threads: Vec<JoinHandle<()>> = {
            let mut guard = shared
                .conn_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.drain(..).collect()
        };
        if threads.is_empty() {
            break;
        }
        for t in threads {
            let _ = t.join();
        }
    }
    shared.drain.shutdown_and_drain();
}

impl Drop for NetServer {
    fn drop(&mut self) {
        match &mut self.inner {
            Frontend::Threaded {
                shared,
                accept_thread,
            } => {
                if accept_thread.is_some() {
                    stop_and_join_threaded(shared, accept_thread);
                }
            }
            // The reactor's own Drop stops and joins its threads.
            #[cfg(target_os = "linux")]
            Frontend::Reactor(_) => {}
        }
    }
}

enum HandleInner {
    Threaded(Arc<Shared>),
    #[cfg(target_os = "linux")]
    Reactor(Arc<crate::reactor::ReactorShared>),
}

/// Remote-control handle for a running [`NetServer`]: drains the
/// serving runtime and signals the frontend to stop, without owning it.
#[derive(Clone)]
pub struct NetShutdownHandle {
    inner: Arc<HandleInner>,
}

impl std::fmt::Debug for NetShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let addr = match self.inner.as_ref() {
            HandleInner::Threaded(s) => s.local_addr,
            #[cfg(target_os = "linux")]
            HandleInner::Reactor(s) => s.local_addr,
        };
        f.debug_struct("NetShutdownHandle")
            .field("addr", &addr)
            .finish_non_exhaustive()
    }
}

impl NetShutdownHandle {
    fn new(inner: HandleInner) -> NetShutdownHandle {
        NetShutdownHandle {
            inner: Arc::new(inner),
        }
    }

    /// Drains every in-flight request, then marks the frontend as
    /// stopping and wakes [`NetServer::wait_for_shutdown`] waiters.
    /// Idempotent; the owner still calls [`NetServer::shutdown`] to
    /// join threads.
    pub fn initiate(&self) {
        match self.inner.as_ref() {
            HandleInner::Threaded(s) => {
                s.drain.shutdown_and_drain();
                s.begin_stop();
            }
            #[cfg(target_os = "linux")]
            HandleInner::Reactor(s) => {
                s.drain.shutdown_and_drain();
                s.begin_stop();
            }
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(shared.cfg.read_timeout);
        let _ = stream.set_write_timeout(shared.cfg.write_timeout);
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.metrics.rejected.inc();
            let mut stream = stream;
            let frame = Frame::Error {
                id: 0,
                code: ErrorCode::ConnectionLimit,
                tenant: String::new(),
                detail: format!(
                    "connection cap {} reached, try later",
                    shared.cfg.max_connections
                ),
            };
            if write_frame(&mut stream, &frame).is_ok() {
                shared.metrics.frames_out.inc();
            }
            continue;
        }
        conn_id += 1;
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.accepted.inc();
        shared.metrics.connections.add(1);
        {
            if let Ok(clone) = stream.try_clone() {
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .push((conn_id, clone));
            }
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("cs-net-conn-{conn_id}"))
                .spawn(move || {
                    run_connection(&shared, stream, conn_id);
                    // Connection bookkeeping lives with the thread so
                    // every exit path (EOF, timeout, decode error,
                    // force-close) unwinds it exactly once.
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .retain(|(id, _)| *id != conn_id);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.connections.sub(1);
                })
        };
        match handle {
            Ok(h) => shared
                .conn_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(h),
            Err(_) => {
                // Spawn failed: roll the bookkeeping back; the stream
                // drops and the client sees a closed connection.
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .retain(|(id, _)| *id != conn_id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.metrics.connections.sub(1);
            }
        }
    }
}

/// Spawns the writer and runs the reader loop until the connection
/// ends. The writer owns reply ordering; the reader owns decode and
/// dispatch.
fn run_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let queue = Arc::new(ReplyQueue::new(shared.cfg.max_pending_replies));
    let writer = {
        let shared = Arc::clone(shared);
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name(format!("cs-net-conn-{conn_id}-writer"))
            .spawn(move || writer_loop(&shared, writer_stream, &queue))
    };
    let writer = match writer {
        Ok(w) => w,
        Err(_) => return,
    };

    let initiated_shutdown = reader_loop(shared, stream, &queue);

    // Closing the queue lets the writer drain the queued replies and
    // exit; joining it guarantees nothing is written after this
    // connection's bookkeeping unwinds.
    queue.close();
    let _ = writer.join();

    // Only signal the stop once the writer has flushed everything —
    // including the shutdown ack — so the owner's force-close cannot
    // race the ack off the wire.
    if initiated_shutdown {
        shared.begin_stop();
    }
}

/// Returns `true` when the connection carried a shutdown control frame
/// (the caller signals the stop after the writer flushes the ack).
fn reader_loop(shared: &Arc<Shared>, stream: TcpStream, queue: &ReplyQueue) -> bool {
    let mut stream = stream;
    let grace = shared.cfg.slow_consumer_grace;
    // Pushes the next reply in FIFO position, converting a full-driven
    // timeout into a typed slow-consumer disconnect.
    macro_rules! push_or_break {
        ($msg:expr) => {
            match queue.push($msg, grace) {
                Ok(()) => {}
                Err(PushError::TimedOut) => {
                    shared.metrics.slow_consumer.inc();
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    break;
                }
                Err(PushError::Closed) => break,
            }
        };
    }
    loop {
        let frame = match read_frame(&mut stream, shared.cfg.max_payload) {
            Ok(Some(frame)) => frame,
            // Clean close at a frame boundary, or an idle/broken
            // connection: just unwind.
            Ok(None) => break,
            Err(NetError::Wire(e)) => {
                shared.metrics.decode_errors.inc();
                let _ = queue.push(
                    Outgoing::Ready(Frame::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        tenant: String::new(),
                        detail: e.to_string(),
                    }),
                    grace,
                );
                break;
            }
            Err(_) => break,
        };
        shared.metrics.frames_in.inc();
        match frame {
            Frame::Request {
                id,
                model,
                tenant,
                input,
            } => {
                let t0_us = shared.clock.now_us();
                shared.metrics.requests.inc();
                let req = InferRequest::new(model, input).with_tenant(tenant);
                let msg = match shared.serve.submit(req) {
                    Ok(ticket) => Outgoing::Pending { id, t0_us, ticket },
                    Err(e) => Outgoing::Ready(Frame::from_serve_error(id, &e)),
                };
                push_or_break!(msg);
            }
            Frame::Ping { id } => {
                push_or_break!(Outgoing::Ready(Frame::Pong { id }));
            }
            Frame::Query { id, model } => {
                let reply = query_reply(&shared.serve, id, model);
                push_or_break!(Outgoing::Ready(reply));
            }
            frame @ (Frame::LoadModel { .. }
            | Frame::UnloadModel { .. }
            | Frame::ListModels { .. }) => {
                let reply = lifecycle_reply(&shared.serve, shared.registry.as_ref(), &frame);
                push_or_break!(Outgoing::Ready(reply));
            }
            Frame::Shutdown { id } => {
                // Drain first: every in-flight request (on every
                // connection) is answered before the ack goes out.
                shared.drain.shutdown_and_drain();
                let _ = queue.push(Outgoing::Ready(Frame::ShutdownAck { id }), grace);
                return true;
            }
            // Server-to-client frame types arriving at the server are a
            // protocol violation, as are the cluster control frames
            // (only an orchestrator accepts registrations); answer once
            // and cut the connection.
            Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::Pong { id }
            | Frame::ShutdownAck { id }
            | Frame::Info { id, .. }
            | Frame::Register { id, .. }
            | Frame::RegisterAck { id, .. }
            | Frame::Heartbeat { id, .. }
            | Frame::Deregister { id, .. }
            | Frame::DeregisterAck { id }
            | Frame::ModelList { id, .. } => {
                shared.metrics.decode_errors.inc();
                let _ = queue.push(
                    Outgoing::Ready(Frame::Error {
                        id,
                        code: ErrorCode::Malformed,
                        tenant: String::new(),
                        detail: "frame type is not client-to-server".to_string(),
                    }),
                    grace,
                );
                break;
            }
        }
    }
    false
}

/// Builds the reply to a [`Frame::Query`]. Shared by both transports
/// so the model-shape contract is identical whichever data plane
/// answers.
pub(crate) fn query_reply(serve: &Server, id: u64, model: String) -> Frame {
    match serve.lookup(&model) {
        Some(m) => Frame::Info {
            id,
            model,
            n_in: m.n_in as u32,
            n_out: m.n_out as u32,
        },
        None => Frame::Error {
            id,
            code: ErrorCode::UnknownModel,
            tenant: String::new(),
            detail: format!("unknown model {model:?}"),
        },
    }
}

/// Answers a model-lifecycle control frame (`LoadModel` /
/// `UnloadModel` / `ListModels`) against the serving runtime and the
/// optional on-disk registry. Shared by both transports.
///
/// Loads resolve `(model, version)` in the on-disk store, decode the
/// `CSMR` container, and hand the artifact to the runtime, which
/// builds kernels outside its locks so serving never stalls on a
/// load. Successful loads and unloads ack with the post-operation
/// [`Frame::ModelList`], so the client observes the state it just
/// created without a follow-up round trip.
pub(crate) fn lifecycle_reply(
    serve: &Server,
    registry: Option<&RegistryStore>,
    frame: &Frame,
) -> Frame {
    match frame {
        Frame::LoadModel {
            id,
            model,
            version,
            canary_pct,
        } => {
            let id = *id;
            match registry {
                None => Frame::Error {
                    id,
                    code: ErrorCode::Internal,
                    tenant: String::new(),
                    detail: "server has no on-disk model registry configured".to_string(),
                },
                Some(store) => match store.load(model, *version) {
                    Ok(artifact) => match serve.load_artifact(&artifact, *canary_pct) {
                        Ok(()) => Frame::from_model_list(id, &serve.list_models()),
                        Err(e) => Frame::from_serve_error(id, &e),
                    },
                    Err(RegistryError::NotFound { .. }) => Frame::Error {
                        id,
                        code: ErrorCode::ModelNotFound,
                        tenant: String::new(),
                        detail: format!("model {model}@v{version} is not in the registry"),
                    },
                    Err(e) => Frame::Error {
                        id,
                        code: ErrorCode::Internal,
                        tenant: String::new(),
                        detail: format!("loading {model}@v{version}: {e}"),
                    },
                },
            }
        }
        Frame::UnloadModel { id, model, version } => match serve.unload_model(model, *version) {
            Ok(()) => Frame::from_model_list(*id, &serve.list_models()),
            Err(e) => Frame::from_serve_error(*id, &e),
        },
        Frame::ListModels { id } => Frame::from_model_list(*id, &serve.list_models()),
        other => Frame::Error {
            id: other.id(),
            code: ErrorCode::Internal,
            tenant: String::new(),
            detail: "not a lifecycle control frame".to_string(),
        },
    }
}

fn writer_loop(shared: &Arc<Shared>, mut stream: TcpStream, queue: &ReplyQueue) {
    while let Some(msg) = queue.pop() {
        let (frame, t0_us) = match msg {
            Outgoing::Ready(frame) => (frame, None),
            Outgoing::Pending { id, t0_us, ticket } => match ticket.wait() {
                Ok(resp) => (Frame::from_response(id, &resp), Some(t0_us)),
                Err(e) => (Frame::from_serve_error(id, &e), None),
            },
        };
        match write_frame(&mut stream, &frame) {
            Ok(()) => {}
            Err(e) => {
                // A write deadline expiring means the client stopped
                // draining while bytes were owed: a slow consumer.
                if matches!(e, NetError::Timeout { .. }) {
                    shared.metrics.slow_consumer.inc();
                }
                // Unblock the reader (it may be mid-read on a dead
                // peer, or blocked pushing into a full queue) and stop;
                // queued tickets unwind as WorkerLost client-side
                // because nothing will be written for them.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                queue.close();
                break;
            }
        }
        shared.metrics.frames_out.inc();
        if let Some(t0) = t0_us {
            shared
                .metrics
                .latency
                .observe(shared.clock.now_us().saturating_sub(t0));
        }
    }
}
