//! The TCP frontend for the serving runtime.
//!
//! ```text
//! clients ──TCP──▶ accept thread ──▶ per-connection reader ──submit──▶ cs_serve::Server
//!    ▲              (conn cap)        (decode, dispatch)                  │
//!    │                                      │ FIFO queue                  │
//!    └───────────── per-connection writer ◀─┴──── tickets ◀───────────────┘
//! ```
//!
//! Each accepted connection gets a reader thread (decodes frames,
//! submits requests) and a writer thread (resolves tickets **in
//! submission order** and writes replies), so a client may pipeline
//! requests and responses come back in per-connection FIFO order while
//! the server still batches across connections. Admission backpressure
//! ([`cs_serve::ServeError::Overloaded`]) travels to the client as a
//! typed error frame rather than blocking the socket.
//!
//! A [`crate::wire::Frame::Shutdown`] control frame drains the serving
//! runtime through [`cs_serve::DrainHandle`] — every in-flight request
//! is answered first — then acks and stops the listener, which is how
//! `cs-netserve` terminates without signal handling.
//!
//! The whole path is metered through `cs-telemetry`: a connections
//! gauge, frames in/out and decode-error counters, and a
//! socket-to-response latency histogram (decode of the request frame to
//! the response frame fully written).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cs_serve::{DrainHandle, InferRequest, ServeSnapshot, Server, Ticket};
use cs_telemetry::{
    buckets, Clock, Counter, Gauge, Histogram, Labels, MonotonicClock, NoopRecorder, Recorder,
};

use crate::error::NetError;
use crate::transport::{read_frame, write_frame};
use crate::wire::{ErrorCode, Frame, DEFAULT_MAX_PAYLOAD};

/// Outstanding replies a single connection may have queued before the
/// reader stops decoding further frames (pipelining backpressure).
const PIPELINE_DEPTH: usize = 64;

/// Network frontend configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Concurrent-connection cap; excess connections are answered with
    /// a [`ErrorCode::ConnectionLimit`] error frame and closed.
    pub max_connections: usize,
    /// Per-connection read deadline; an idle connection is closed when
    /// it elapses. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline (a stuck client cannot wedge a
    /// writer thread forever).
    pub write_timeout: Option<Duration>,
    /// Payload-length cap enforced before any allocation.
    pub max_payload: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

impl NetConfig {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.max_connections == 0 {
            return Err(NetError::InvalidConfig(
                "max_connections must be at least 1".to_string(),
            ));
        }
        if self.max_payload < 64 {
            return Err(NetError::InvalidConfig(format!(
                "max_payload {} is too small to carry any request",
                self.max_payload
            )));
        }
        Ok(())
    }
}

/// The network-path metric handles, fetched once at startup.
struct NetMetrics {
    connections: Gauge,
    accepted: Counter,
    rejected: Counter,
    frames_in: Counter,
    frames_out: Counter,
    decode_errors: Counter,
    requests: Counter,
    latency: Histogram,
}

impl NetMetrics {
    fn new(recorder: &dyn Recorder) -> Self {
        NetMetrics {
            connections: recorder.gauge(
                "net_connections",
                "Currently open client connections",
                Labels::new(),
            ),
            accepted: recorder.counter(
                "net_connections_accepted_total",
                "Connections accepted",
                Labels::new(),
            ),
            rejected: recorder.counter(
                "net_connections_rejected_total",
                "Connections refused at the connection cap",
                Labels::new(),
            ),
            frames_in: recorder.counter(
                "net_frames_in_total",
                "Frames decoded from clients",
                Labels::new(),
            ),
            frames_out: recorder.counter(
                "net_frames_out_total",
                "Frames written to clients",
                Labels::new(),
            ),
            decode_errors: recorder.counter(
                "net_decode_errors_total",
                "Malformed or protocol-violating client frames",
                Labels::new(),
            ),
            requests: recorder.counter(
                "net_requests_total",
                "Inference requests received over the network",
                Labels::new(),
            ),
            latency: recorder.histogram(
                "net_request_latency_us",
                "Socket-to-response latency: request frame decoded to \
                 response frame fully written (µs)",
                Labels::new(),
                &buckets::duration_us(),
            ),
        }
    }
}

/// State shared by the accept loop, every connection thread, and the
/// owning [`NetServer`] handle.
struct Shared {
    serve: Server,
    drain: DrainHandle,
    cfg: NetConfig,
    clock: Arc<dyn Clock>,
    metrics: NetMetrics,
    stop: AtomicBool,
    active: AtomicUsize,
    /// Streams of open connections (for force-close at shutdown).
    conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Reader/writer thread handles, joined at shutdown.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Signalled when a remote shutdown control frame has drained the
    /// server ([`NetServer::wait_for_shutdown`] blocks on it).
    shutdown_signal: (Mutex<bool>, Condvar),
    local_addr: SocketAddr,
}

impl Shared {
    /// Marks the frontend as stopping, wakes the accept loop, and
    /// signals [`NetServer::wait_for_shutdown`] waiters. Idempotent.
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next wakeup; a
        // throwaway local connection provides one.
        let _ = TcpStream::connect(self.local_addr);
        let (lock, cv) = &self.shutdown_signal;
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *stopped = true;
        cv.notify_all();
    }
}

/// A message queued for a connection's writer thread, in the order the
/// reader produced it — which is what makes replies per-connection FIFO.
enum Outgoing {
    /// A frame that is ready to write as-is.
    Ready(Frame),
    /// An in-flight inference; the writer blocks on the ticket so the
    /// reply goes out in submission order even when batches reorder
    /// completion across workers.
    Pending { id: u64, t0_us: u64, ticket: Ticket },
}

/// The running TCP frontend. Owns the wrapped [`Server`]; dropping or
/// [`NetServer::shutdown`] stops the listener, closes connections,
/// drains the serving runtime and joins every thread.
pub struct NetServer {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.shared.local_addr)
            .field("cfg", &self.shared.cfg)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Starts the frontend around an already-running server, without
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Invalid configs and bind failures.
    pub fn start(serve: Server, cfg: NetConfig) -> Result<NetServer, NetError> {
        NetServer::start_with_recorder(serve, cfg, Arc::new(NoopRecorder))
    }

    /// Starts the frontend with a telemetry recorder. Pass the same
    /// [`cs_telemetry::Registry`] the wrapped server records to and the
    /// JSONL/Prometheus dump carries the serving and network series
    /// side by side.
    ///
    /// # Errors
    ///
    /// Invalid configs and bind failures.
    pub fn start_with_recorder(
        serve: Server,
        cfg: NetConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Result<NetServer, NetError> {
        cfg.validate()?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| NetError::from_io("bind listener", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::from_io("resolve bound address", &e))?;
        let drain = serve.drain_handle();
        let shared = Arc::new(Shared {
            serve,
            drain,
            cfg,
            clock: Arc::new(MonotonicClock::new()),
            metrics: NetMetrics::new(recorder.as_ref()),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            local_addr,
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cs-net-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .map_err(|e| NetError::InvalidConfig(format!("spawning accept thread: {e}")))?
        };
        Ok(NetServer {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The wrapped serving runtime — the in-process lane differential
    /// tests submit to directly.
    pub fn server(&self) -> &Server {
        &self.shared.serve
    }

    /// Blocks until a client's shutdown control frame has drained the
    /// server (or [`NetServer::shutdown`] was called from elsewhere).
    pub fn wait_for_shutdown(&self) {
        let (lock, cv) = &self.shared.shutdown_signal;
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        while !*stopped {
            stopped = cv
                .wait(stopped)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stops accepting, closes every connection, drains the serving
    /// runtime, joins all threads and returns the final snapshot.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.stop_and_join();
        self.shared.serve.stats()
    }

    /// A cloneable handle that can initiate this frontend's shutdown
    /// from another thread (the worker agent uses it when the
    /// orchestrator commands a drain). After
    /// [`NetShutdownHandle::initiate`] returns,
    /// [`NetServer::wait_for_shutdown`] unblocks and the owner should
    /// call [`NetServer::shutdown`] to join the threads.
    pub fn shutdown_handle(&self) -> NetShutdownHandle {
        NetShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.begin_stop();
        // Force-close open connections so their reader threads unblock.
        {
            let conns = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for (_, stream) in conns.iter() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        loop {
            // Connection threads can spawn while we join (an accept
            // racing the stop flag), so drain the list until empty.
            let threads: Vec<JoinHandle<()>> = {
                let mut guard = self
                    .shared
                    .conn_threads
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                guard.drain(..).collect()
            };
            if threads.is_empty() {
                break;
            }
            for t in threads {
                let _ = t.join();
            }
        }
        self.shared.drain.shutdown_and_drain();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Remote-control handle for a running [`NetServer`]: drains the
/// serving runtime and signals the frontend to stop, without owning it.
#[derive(Clone)]
pub struct NetShutdownHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for NetShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetShutdownHandle")
            .field("addr", &self.shared.local_addr)
            .finish_non_exhaustive()
    }
}

impl NetShutdownHandle {
    /// Drains every in-flight request, then marks the frontend as
    /// stopping and wakes [`NetServer::wait_for_shutdown`] waiters.
    /// Idempotent; the owner still calls [`NetServer::shutdown`] to
    /// join threads.
    pub fn initiate(&self) {
        self.shared.drain.shutdown_and_drain();
        self.shared.begin_stop();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(shared.cfg.read_timeout);
        let _ = stream.set_write_timeout(shared.cfg.write_timeout);
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.metrics.rejected.inc();
            let mut stream = stream;
            let frame = Frame::Error {
                id: 0,
                code: ErrorCode::ConnectionLimit,
                detail: format!(
                    "connection cap {} reached, try later",
                    shared.cfg.max_connections
                ),
            };
            if write_frame(&mut stream, &frame).is_ok() {
                shared.metrics.frames_out.inc();
            }
            continue;
        }
        conn_id += 1;
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.accepted.inc();
        shared.metrics.connections.add(1);
        {
            if let Ok(clone) = stream.try_clone() {
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .push((conn_id, clone));
            }
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("cs-net-conn-{conn_id}"))
                .spawn(move || {
                    run_connection(&shared, stream, conn_id);
                    // Connection bookkeeping lives with the thread so
                    // every exit path (EOF, timeout, decode error,
                    // force-close) unwinds it exactly once.
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .retain(|(id, _)| *id != conn_id);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.connections.sub(1);
                })
        };
        match handle {
            Ok(h) => shared
                .conn_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(h),
            Err(_) => {
                // Spawn failed: roll the bookkeeping back; the stream
                // drops and the client sees a closed connection.
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .retain(|(id, _)| *id != conn_id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.metrics.connections.sub(1);
            }
        }
    }
}

/// Spawns the writer and runs the reader loop until the connection
/// ends. The writer owns reply ordering; the reader owns decode and
/// dispatch.
fn run_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (out_tx, out_rx) = mpsc::sync_channel::<Outgoing>(PIPELINE_DEPTH);
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("cs-net-conn-{conn_id}-writer"))
            .spawn(move || writer_loop(&shared, writer_stream, &out_rx))
    };
    let writer = match writer {
        Ok(w) => w,
        Err(_) => return,
    };

    let initiated_shutdown = reader_loop(shared, stream, &out_tx);

    // Dropping the sender lets the writer drain the queued replies and
    // exit; joining it guarantees nothing is written after this
    // connection's bookkeeping unwinds.
    drop(out_tx);
    let _ = writer.join();

    // Only signal the stop once the writer has flushed everything —
    // including the shutdown ack — so the owner's force-close cannot
    // race the ack off the wire.
    if initiated_shutdown {
        shared.begin_stop();
    }
}

/// Returns `true` when the connection carried a shutdown control frame
/// (the caller signals the stop after the writer flushes the ack).
fn reader_loop(shared: &Arc<Shared>, mut stream: TcpStream, out_tx: &SyncSender<Outgoing>) -> bool {
    loop {
        let frame = match read_frame(&mut stream, shared.cfg.max_payload) {
            Ok(Some(frame)) => frame,
            // Clean close at a frame boundary, or an idle/broken
            // connection: just unwind.
            Ok(None) => break,
            Err(NetError::Wire(e)) => {
                shared.metrics.decode_errors.inc();
                let _ = out_tx.send(Outgoing::Ready(Frame::Error {
                    id: 0,
                    code: ErrorCode::Malformed,
                    detail: e.to_string(),
                }));
                break;
            }
            Err(_) => break,
        };
        shared.metrics.frames_in.inc();
        match frame {
            Frame::Request { id, model, input } => {
                let t0_us = shared.clock.now_us();
                shared.metrics.requests.inc();
                let msg = match shared.serve.submit(InferRequest::new(model, input)) {
                    Ok(ticket) => Outgoing::Pending { id, t0_us, ticket },
                    Err(e) => Outgoing::Ready(Frame::from_serve_error(id, &e)),
                };
                if out_tx.send(msg).is_err() {
                    break; // writer gone (write failure closed the stream)
                }
            }
            Frame::Ping { id } => {
                if out_tx.send(Outgoing::Ready(Frame::Pong { id })).is_err() {
                    break;
                }
            }
            Frame::Query { id, model } => {
                let reply = match shared.serve.registry().get(&model) {
                    Some((_, m)) => Frame::Info {
                        id,
                        model,
                        n_in: m.n_in as u32,
                        n_out: m.n_out as u32,
                    },
                    None => Frame::Error {
                        id,
                        code: ErrorCode::UnknownModel,
                        detail: format!("unknown model {model:?}"),
                    },
                };
                if out_tx.send(Outgoing::Ready(reply)).is_err() {
                    break;
                }
            }
            Frame::Shutdown { id } => {
                // Drain first: every in-flight request (on every
                // connection) is answered before the ack goes out.
                shared.drain.shutdown_and_drain();
                let _ = out_tx.send(Outgoing::Ready(Frame::ShutdownAck { id }));
                return true;
            }
            // Server-to-client frame types arriving at the server are a
            // protocol violation, as are the cluster control frames
            // (only an orchestrator accepts registrations); answer once
            // and cut the connection.
            Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::Pong { id }
            | Frame::ShutdownAck { id }
            | Frame::Info { id, .. }
            | Frame::Register { id, .. }
            | Frame::RegisterAck { id, .. }
            | Frame::Heartbeat { id, .. }
            | Frame::Deregister { id, .. }
            | Frame::DeregisterAck { id } => {
                shared.metrics.decode_errors.inc();
                let _ = out_tx.send(Outgoing::Ready(Frame::Error {
                    id,
                    code: ErrorCode::Malformed,
                    detail: "frame type is not client-to-server".to_string(),
                }));
                break;
            }
        }
    }
    false
}

fn writer_loop(shared: &Arc<Shared>, mut stream: TcpStream, out_rx: &Receiver<Outgoing>) {
    while let Ok(msg) = out_rx.recv() {
        let (frame, t0_us) = match msg {
            Outgoing::Ready(frame) => (frame, None),
            Outgoing::Pending { id, t0_us, ticket } => match ticket.wait() {
                Ok(resp) => (Frame::from_response(id, &resp), Some(t0_us)),
                Err(e) => (Frame::from_serve_error(id, &e), None),
            },
        };
        if write_frame(&mut stream, &frame).is_err() {
            // Unblock the reader (it may be mid-read on a dead peer)
            // and stop; queued tickets unwind as WorkerLost client-side
            // because nothing will be written for them.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            break;
        }
        shared.metrics.frames_out.inc();
        if let Some(t0) = t0_us {
            shared
                .metrics
                .latency
                .observe(shared.clock.now_us().saturating_sub(t0));
        }
    }
}
