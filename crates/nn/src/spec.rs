//! Shape-level descriptions of the paper's seven benchmark networks.
//!
//! A [`NetworkSpec`] records layer geometries only (no weights), which is
//! all the compression-size accounting and the accelerator timing models
//! need. Weight tensors are materialized per layer on demand by
//! [`crate::init`], so even VGG16's 138M synapses never have to be resident
//! at once.

use std::fmt;

/// Broad layer classes used throughout the paper's tables
/// (`C`, `F` and `L` rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// Convolutional layers.
    Convolutional,
    /// Fully-connected layers.
    FullyConnected,
    /// LSTM (recurrent) layers.
    Lstm,
    /// Pooling layers (no weights).
    Pooling,
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerClass::Convolutional => "conv",
            LayerClass::FullyConnected => "fc",
            LayerClass::Lstm => "lstm",
            LayerClass::Pooling => "pool",
        };
        f.write_str(s)
    }
}

/// Geometry of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSpecKind {
    /// A convolutional layer over an `in_h × in_w` input.
    Conv {
        /// Input feature maps (`N_fin`).
        n_fin: usize,
        /// Output feature maps (`N_fout`).
        n_fout: usize,
        /// Kernel height (`K_x`).
        kx: usize,
        /// Kernel width (`K_y`).
        ky: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Zero padding (same in both dimensions).
        pad: usize,
        /// Caffe-style channel groups (AlexNet uses 2).
        groups: usize,
    },
    /// A fully-connected layer.
    Fc {
        /// Input neurons (`N_in`).
        n_in: usize,
        /// Output neurons (`N_out`).
        n_out: usize,
    },
    /// One LSTM layer unrolled over a sequence.
    Lstm {
        /// Input feature size.
        n_in: usize,
        /// Hidden state size.
        n_hidden: usize,
        /// Sequence length used when counting operations.
        seq_len: usize,
    },
    /// A max/average pooling layer (no weights).
    Pool {
        /// Channels.
        channels: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
}

/// One layer of a [`NetworkSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    name: String,
    kind: LayerSpecKind,
}

impl LayerSpec {
    /// Creates a layer spec.
    pub fn new(name: impl Into<String>, kind: LayerSpecKind) -> Self {
        LayerSpec {
            name: name.into(),
            kind,
        }
    }

    /// The layer's name (e.g. `"fc6"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's geometry.
    pub fn kind(&self) -> &LayerSpecKind {
        &self.kind
    }

    /// The broad class used by the paper's per-class tables.
    pub fn class(&self) -> LayerClass {
        match self.kind {
            LayerSpecKind::Conv { .. } => LayerClass::Convolutional,
            LayerSpecKind::Fc { .. } => LayerClass::FullyConnected,
            LayerSpecKind::Lstm { .. } => LayerClass::Lstm,
            LayerSpecKind::Pool { .. } => LayerClass::Pooling,
        }
    }

    /// Returns `true` when the layer carries synaptic weights.
    pub fn has_weights(&self) -> bool {
        !matches!(self.kind, LayerSpecKind::Pool { .. })
    }

    /// Number of synaptic weights in the layer (0 for pooling).
    ///
    /// For grouped convolutions only `n_fin / groups` input maps connect to
    /// each output map, matching Caffe's parameter count.
    pub fn weight_count(&self) -> usize {
        match self.kind {
            LayerSpecKind::Conv {
                n_fin,
                n_fout,
                kx,
                ky,
                groups,
                ..
            } => (n_fin / groups) * n_fout * kx * ky,
            LayerSpecKind::Fc { n_in, n_out } => n_in * n_out,
            LayerSpecKind::Lstm { n_in, n_hidden, .. } => 4 * n_hidden * (n_in + n_hidden),
            LayerSpecKind::Pool { .. } => 0,
        }
    }

    /// Output spatial size for conv/pool layers, `(1, 1)` otherwise.
    pub fn output_hw(&self) -> (usize, usize) {
        match self.kind {
            LayerSpecKind::Conv {
                kx,
                ky,
                in_h,
                in_w,
                stride,
                pad,
                ..
            } => (
                (in_h + 2 * pad - kx) / stride + 1,
                (in_w + 2 * pad - ky) / stride + 1,
            ),
            LayerSpecKind::Pool {
                in_h,
                in_w,
                k,
                stride,
                ..
            } => (
                (in_h.saturating_sub(k)) / stride + 1,
                (in_w.saturating_sub(k)) / stride + 1,
            ),
            _ => (1, 1),
        }
    }

    /// Number of input neurons consumed by the layer.
    pub fn input_neurons(&self) -> usize {
        match self.kind {
            LayerSpecKind::Conv {
                n_fin, in_h, in_w, ..
            } => n_fin * in_h * in_w,
            LayerSpecKind::Fc { n_in, .. } => n_in,
            LayerSpecKind::Lstm {
                n_in,
                n_hidden,
                seq_len,
            } => seq_len * (n_in + n_hidden),
            LayerSpecKind::Pool {
                channels,
                in_h,
                in_w,
                ..
            } => channels * in_h * in_w,
        }
    }

    /// Number of output neurons produced by the layer.
    pub fn output_neurons(&self) -> usize {
        let (oh, ow) = self.output_hw();
        match self.kind {
            LayerSpecKind::Conv { n_fout, .. } => n_fout * oh * ow,
            LayerSpecKind::Fc { n_out, .. } => n_out,
            LayerSpecKind::Lstm {
                n_hidden, seq_len, ..
            } => seq_len * n_hidden,
            LayerSpecKind::Pool { channels, .. } => channels * oh * ow,
        }
    }

    /// Dense multiply count for one inference pass (the paper's MAC count).
    pub fn macs(&self) -> usize {
        match self.kind {
            LayerSpecKind::Conv { .. } => {
                let (oh, ow) = self.output_hw();
                self.weight_count() * oh * ow
            }
            LayerSpecKind::Fc { .. } => self.weight_count(),
            LayerSpecKind::Lstm { seq_len, .. } => self.weight_count() * seq_len,
            LayerSpecKind::Pool { .. } => 0,
        }
    }
}

/// The seven benchmark networks from the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// LeNet-5 on MNIST-like 28×28 inputs.
    LeNet5,
    /// 3-layer MLP (784–300–100–10).
    Mlp,
    /// The Caffe "Cifar10 quick" model.
    Cifar10Quick,
    /// AlexNet (with 2-way grouped conv2/4/5, like Caffe).
    AlexNet,
    /// VGG16.
    Vgg16,
    /// ResNet-152 (bottleneck stages 3/8/36/3).
    ResNet152,
    /// A single-layer acoustic LSTM.
    Lstm,
}

impl Model {
    /// All seven benchmark models in the paper's table order.
    pub fn all() -> [Model; 7] {
        [
            Model::LeNet5,
            Model::Mlp,
            Model::Cifar10Quick,
            Model::AlexNet,
            Model::Vgg16,
            Model::ResNet152,
            Model::Lstm,
        ]
    }

    /// Canonical lowercase name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Model::LeNet5 => "lenet5",
            Model::Mlp => "mlp",
            Model::Cifar10Quick => "cifar10",
            Model::AlexNet => "alexnet",
            Model::Vgg16 => "vgg16",
            Model::ResNet152 => "resnet152",
            Model::Lstm => "lstm",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Down-scaling applied to channel/neuron counts when materializing the
/// large networks on a laptop.
///
/// Compression *ratios* and speedup *shapes* are scale-invariant to first
/// order, so experiments default to a reduced scale and accept `Full` when
/// the caller has the memory and patience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Published layer sizes.
    Full,
    /// Channel and neuron counts divided by the factor (clamped to stay
    /// at least 16 wide so pruning blocks still fit).
    Reduced(usize),
}

impl Scale {
    fn apply(&self, n: usize) -> usize {
        match self {
            Scale::Full => n,
            Scale::Reduced(f) => (n / f).max(16).min(n),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::Reduced(4)
    }
}

/// A full network described at the shape level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    name: String,
    model: Model,
    layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Builds the spec for one of the paper's models at the given scale.
    pub fn model(model: Model, scale: Scale) -> Self {
        let layers = match model {
            Model::LeNet5 => lenet5(scale),
            Model::Mlp => mlp(scale),
            Model::Cifar10Quick => cifar10_quick(scale),
            Model::AlexNet => alexnet(scale),
            Model::Vgg16 => vgg16(scale),
            Model::ResNet152 => resnet152(scale),
            Model::Lstm => lstm(scale),
        };
        NetworkSpec {
            name: model.name().to_string(),
            model,
            layers,
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which of the paper's models this spec describes.
    pub fn model_id(&self) -> Model {
        self.model
    }

    /// All layers in execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Only the layers that carry weights.
    pub fn weighted_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.has_weights())
    }

    /// Total synapse count.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerSpec::weight_count).sum()
    }

    /// Total dense MAC count for one inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(LayerSpec::macs).sum()
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the paper's conv-layer tuple
fn conv(
    name: &str,
    s: Scale,
    n_fin: usize,
    n_fout: usize,
    k: usize,
    in_hw: usize,
    stride: usize,
    pad: usize,
    groups: usize,
) -> LayerSpec {
    // Never scale the raw image channels (3 or 1).
    let fin = if n_fin <= 3 { n_fin } else { s.apply(n_fin) };
    LayerSpec::new(
        name,
        LayerSpecKind::Conv {
            n_fin: fin,
            n_fout: s.apply(n_fout),
            kx: k,
            ky: k,
            in_h: in_hw,
            in_w: in_hw,
            stride,
            pad,
            groups: if groups > 1 && s.apply(n_fout).is_multiple_of(groups) {
                groups
            } else {
                1
            },
        },
    )
}

fn fc(name: &str, s: Scale, n_in: usize, n_out: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerSpecKind::Fc {
            n_in: s.apply(n_in),
            n_out: s.apply(n_out),
        },
    )
}

fn pool(name: &str, s: Scale, channels: usize, in_hw: usize, k: usize, stride: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerSpecKind::Pool {
            channels: s.apply(channels),
            in_h: in_hw,
            in_w: in_hw,
            k,
            stride,
        },
    )
}

fn lenet5(s: Scale) -> Vec<LayerSpec> {
    vec![
        conv("conv1", s, 1, 20, 5, 28, 1, 0, 1),
        pool("pool1", s, 20, 24, 2, 2),
        conv("conv2", s, 20, 50, 5, 12, 1, 0, 1),
        pool("pool2", s, 50, 8, 2, 2),
        fc("ip1", s, 800, 500),
        fc("ip2", s, 500, 10),
    ]
}

fn mlp(s: Scale) -> Vec<LayerSpec> {
    vec![
        fc("ip1", s, 784, 300),
        fc("ip2", s, 300, 100),
        fc("ip3", s, 100, 10),
    ]
}

fn cifar10_quick(s: Scale) -> Vec<LayerSpec> {
    vec![
        conv("conv1", s, 3, 32, 5, 32, 1, 2, 1),
        pool("pool1", s, 32, 32, 3, 2),
        conv("conv2", s, 32, 32, 5, 15, 1, 2, 1),
        pool("pool2", s, 32, 15, 3, 2),
        conv("conv3", s, 32, 64, 5, 7, 1, 2, 1),
        pool("pool3", s, 64, 7, 3, 2),
        fc("ip1", s, 576, 64),
        fc("ip2", s, 64, 10),
    ]
}

fn alexnet(s: Scale) -> Vec<LayerSpec> {
    vec![
        conv("conv1", s, 3, 96, 11, 227, 4, 0, 1),
        pool("pool1", s, 96, 55, 3, 2),
        conv("conv2", s, 96, 256, 5, 27, 1, 2, 2),
        pool("pool2", s, 256, 27, 3, 2),
        conv("conv3", s, 256, 384, 3, 13, 1, 1, 1),
        conv("conv4", s, 384, 384, 3, 13, 1, 1, 2),
        conv("conv5", s, 384, 256, 3, 13, 1, 1, 2),
        pool("pool5", s, 256, 13, 3, 2),
        fc("fc6", s, 9216, 4096),
        fc("fc7", s, 4096, 4096),
        fc("fc8", s, 4096, 1000),
    ]
}

fn vgg16(s: Scale) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    let cfg: &[(usize, usize, usize, usize)] = &[
        // (n_fin, n_fout, in_hw, index within stage)
        (3, 64, 224, 1),
        (64, 64, 224, 2),
        (64, 128, 112, 1),
        (128, 128, 112, 2),
        (128, 256, 56, 1),
        (256, 256, 56, 2),
        (256, 256, 56, 3),
        (256, 512, 28, 1),
        (512, 512, 28, 2),
        (512, 512, 28, 3),
        (512, 512, 14, 1),
        (512, 512, 14, 2),
        (512, 512, 14, 3),
    ];
    let mut stage = 1;
    let mut last_hw = 224;
    for (i, &(fin, fout, hw, idx)) in cfg.iter().enumerate() {
        if i > 0 && hw != last_hw {
            layers.push(pool(&format!("pool{}", stage), s, fin, last_hw, 2, 2));
            stage += 1;
            last_hw = hw;
        }
        layers.push(conv(
            &format!("conv{}_{}", stage, idx),
            s,
            fin,
            fout,
            3,
            hw,
            1,
            1,
            1,
        ));
    }
    layers.push(pool("pool5", s, 512, 14, 2, 2));
    layers.push(fc("fc6", s, 25088, 4096));
    layers.push(fc("fc7", s, 4096, 4096));
    layers.push(fc("fc8", s, 4096, 1000));
    layers
}

fn resnet152(s: Scale) -> Vec<LayerSpec> {
    let mut layers = vec![conv("conv1", s, 3, 64, 7, 224, 2, 3, 1)];
    layers.push(pool("pool1", s, 64, 112, 3, 2));
    // Bottleneck stages: (blocks, mid-channels, out-channels, spatial).
    let stages: &[(usize, usize, usize, usize)] = &[
        (3, 64, 256, 56),
        (8, 128, 512, 28),
        (36, 256, 1024, 14),
        (3, 512, 2048, 7),
    ];
    let mut in_ch = 64;
    for (si, &(blocks, mid, out, hw)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stage = si + 2;
            let stride = if b == 0 && si > 0 { 2 } else { 1 };
            let in_hw = if b == 0 && si > 0 { hw * 2 } else { hw };
            layers.push(conv(
                &format!("res{}{}_branch2a", stage, block_letter(b)),
                s,
                in_ch,
                mid,
                1,
                in_hw,
                stride,
                0,
                1,
            ));
            layers.push(conv(
                &format!("res{}{}_branch2b", stage, block_letter(b)),
                s,
                mid,
                mid,
                3,
                hw,
                1,
                1,
                1,
            ));
            layers.push(conv(
                &format!("res{}{}_branch2c", stage, block_letter(b)),
                s,
                mid,
                out,
                1,
                hw,
                1,
                0,
                1,
            ));
            if b == 0 {
                layers.push(conv(
                    &format!("res{}{}_branch1", stage, block_letter(b)),
                    s,
                    in_ch,
                    out,
                    1,
                    in_hw,
                    stride,
                    0,
                    1,
                ));
            }
            in_ch = out;
        }
    }
    layers.push(pool("pool5", s, 2048, 7, 7, 1));
    layers.push(fc("fc1000", s, 2048, 1000));
    layers
}

fn block_letter(b: usize) -> String {
    if b == 0 {
        "a".to_string()
    } else {
        format!("b{b}")
    }
}

fn lstm(s: Scale) -> Vec<LayerSpec> {
    vec![LayerSpec::new(
        "lstm1",
        LayerSpecKind::Lstm {
            n_in: s.apply(760),
            n_hidden: s.apply(600),
            seq_len: 20,
        },
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_has_roughly_60m_weights() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let total = spec.total_weights();
        assert!(
            (55_000_000..66_000_000).contains(&total),
            "got {total} weights"
        );
    }

    #[test]
    fn alexnet_fc6_shape() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let fc6 = spec
            .layers()
            .iter()
            .find(|l| l.name() == "fc6")
            .expect("fc6 exists");
        assert_eq!(fc6.weight_count(), 9216 * 4096);
        assert_eq!(fc6.class(), LayerClass::FullyConnected);
    }

    #[test]
    fn vgg16_has_roughly_138m_weights() {
        let spec = NetworkSpec::model(Model::Vgg16, Scale::Full);
        let total = spec.total_weights();
        assert!(
            (130_000_000..145_000_000).contains(&total),
            "got {total} weights"
        );
    }

    #[test]
    fn vgg16_conv_macs_dominate() {
        let spec = NetworkSpec::model(Model::Vgg16, Scale::Full);
        let conv_macs: usize = spec
            .layers()
            .iter()
            .filter(|l| l.class() == LayerClass::Convolutional)
            .map(LayerSpec::macs)
            .sum();
        let fc_macs: usize = spec
            .layers()
            .iter()
            .filter(|l| l.class() == LayerClass::FullyConnected)
            .map(LayerSpec::macs)
            .sum();
        assert!(conv_macs > 50 * fc_macs);
    }

    #[test]
    fn resnet152_weight_count_in_range() {
        let spec = NetworkSpec::model(Model::ResNet152, Scale::Full);
        let total = spec.total_weights();
        // ~58M conv+fc parameters (no batchnorm params counted).
        assert!(
            (50_000_000..70_000_000).contains(&total),
            "got {total} weights"
        );
        // 152-layer nets have (3+8+36+3)*3 + 4 downsample + conv1 + fc layers.
        let weighted = spec.weighted_layers().count();
        assert_eq!(weighted, 50 * 3 + 4 + 1 + 1);
    }

    #[test]
    fn lenet5_weight_count() {
        let spec = NetworkSpec::model(Model::LeNet5, Scale::Full);
        assert_eq!(spec.total_weights(), 500 + 25_000 + 400_000 + 5_000);
    }

    #[test]
    fn mlp_weight_count() {
        let spec = NetworkSpec::model(Model::Mlp, Scale::Full);
        assert_eq!(spec.total_weights(), 784 * 300 + 300 * 100 + 100 * 10);
    }

    #[test]
    fn lstm_weight_count_matches_gate_formula() {
        let spec = NetworkSpec::model(Model::Lstm, Scale::Full);
        assert_eq!(spec.total_weights(), 4 * 600 * (760 + 600));
    }

    #[test]
    fn reduced_scale_shrinks_but_keeps_structure() {
        let full = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let small = NetworkSpec::model(Model::AlexNet, Scale::Reduced(4));
        assert_eq!(full.layers().len(), small.layers().len());
        assert!(small.total_weights() < full.total_weights() / 8);
    }

    #[test]
    fn conv_output_geometry() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let conv1 = &spec.layers()[0];
        assert_eq!(conv1.output_hw(), (55, 55)); // (227-11)/4+1
        let conv2 = spec.layers().iter().find(|l| l.name() == "conv2").unwrap();
        assert_eq!(conv2.output_hw(), (27, 27));
    }

    #[test]
    fn macs_formula_conv() {
        // conv: weights * output positions
        let l = LayerSpec::new(
            "c",
            LayerSpecKind::Conv {
                n_fin: 2,
                n_fout: 3,
                kx: 3,
                ky: 3,
                in_h: 8,
                in_w: 8,
                stride: 1,
                pad: 1,
                groups: 1,
            },
        );
        assert_eq!(l.weight_count(), 54);
        assert_eq!(l.macs(), 54 * 64);
    }

    #[test]
    fn grouped_conv_halves_weights() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let conv2 = spec.layers().iter().find(|l| l.name() == "conv2").unwrap();
        // groups=2: (96/2)*256*25
        assert_eq!(conv2.weight_count(), 48 * 256 * 25);
    }

    #[test]
    fn all_models_build_at_all_scales() {
        for m in Model::all() {
            for s in [Scale::Full, Scale::Reduced(4), Scale::Reduced(16)] {
                let spec = NetworkSpec::model(m, s);
                assert!(spec.total_weights() > 0, "{m} at {s:?}");
                assert!(spec.total_macs() > 0, "{m} at {s:?}");
            }
        }
    }
}
