//! Synthetic classification datasets.
//!
//! The paper's accuracy experiments run on MNIST/Cifar10/ImageNet, which
//! are not available offline. These generators produce learnable synthetic
//! substitutes: class-conditioned Gaussian blobs for MLP-style inputs and
//! class-dependent spatial patterns for CNN-style image inputs. What the
//! pruning experiments need — a task where accuracy degrades measurably as
//! capacity is pruned away — is preserved.

use cs_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled dataset split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Input samples.
    pub inputs: Vec<Tensor>,
    /// Class labels, one per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Gaussian-blob classification: each class is a random unit-ish centroid
/// in `dim` dimensions; samples are centroid + noise.
///
/// # Example
///
/// ```
/// let ds = cs_nn::data::blobs(100, 8, 3, 0.3, 1);
/// assert_eq!(ds.len(), 100);
/// assert!(ds.labels.iter().all(|l| *l < 3));
/// ```
pub fn blobs(samples: usize, dim: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| normal(&mut rng)).collect())
        .collect();
    let mut inputs = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let c = i % classes;
        let x: Vec<f32> = centroids[c]
            .iter()
            .map(|v| v + normal(&mut rng) * noise)
            .collect();
        inputs.push(Tensor::from_vec(Shape::d1(dim), x).expect("length matches dim"));
        labels.push(c);
    }
    Dataset {
        inputs,
        labels,
        classes,
    }
}

/// Synthetic image classification for CNNs: each class has a fixed random
/// low-frequency template over `(c, h, w)`; samples are template + noise.
pub fn images(
    samples: usize,
    shape: (usize, usize, usize),
    classes: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    let (c, h, w) = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    // Low-frequency class templates: sum of a few random sinusoids.
    let templates: Vec<Tensor> = (0..classes)
        .map(|_| {
            let fx = rng.gen_range(1.0..3.0f32);
            let fy = rng.gen_range(1.0..3.0f32);
            let phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let chan_gain: Vec<f32> = (0..c).map(|_| rng.gen_range(0.5..1.5f32)).collect();
            Tensor::from_fn(Shape::d3(c, h, w), |i| {
                let ci = i / (h * w);
                let y = (i / w) % h;
                let x = i % w;
                chan_gain[ci]
                    * ((fx * x as f32 / w as f32 * std::f32::consts::TAU
                        + fy * y as f32 / h as f32 * std::f32::consts::TAU
                        + phase)
                        .sin())
            })
        })
        .collect();
    let mut inputs = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let cls = i % classes;
        let t = &templates[cls];
        let img = Tensor::from_fn(Shape::d3(c, h, w), |j| {
            t.as_slice()[j] + normal(&mut rng) * noise
        });
        inputs.push(img);
        labels.push(cls);
    }
    Dataset {
        inputs,
        labels,
        classes,
    }
}

/// Random input activations with a configurable zero fraction, used to
/// drive dynamic-neuron-sparsity measurements for the large zoo networks.
pub fn sparse_activations(len: usize, zero_fraction: f64, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape::d1(len), |_| {
        if rng.gen_bool(zero_fraction) {
            0.0
        } else {
            rng.gen_range(0.05..1.0f32)
        }
    })
}

/// A LIF-style spike frame: every position is a leaky integrate-and-fire
/// neuron driven by its own constant input current for `steps` ticks,
/// and the frame reports the membrane reading at the final tick — the
/// pre-reset potential when the neuron fires on that tick, exact `+0.0`
/// when it stays silent. Neurons whose drive cannot overcome the leak
/// never fire, and firing neurons only cross threshold on a fraction of
/// ticks, so low `drive` yields the naturally sparse activation frames
/// the gated kernels exploit. Deterministic in `seed`.
pub fn lif_spike_train(len: usize, steps: usize, drive: f64, seed: u64) -> Tensor {
    const LEAK: f32 = 0.2;
    const THRESHOLD: f32 = 1.0;
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape::d1(len), |_| {
        let current = rng.gen_range(0.0..drive.max(f64::EPSILON)) as f32;
        let mut v = 0.0f32;
        let mut frame = 0.0f32;
        for _ in 0..steps.max(1) {
            v = v * (1.0 - LEAK) + current;
            if v >= THRESHOLD {
                frame = v;
                v = 0.0;
            } else {
                frame = 0.0;
            }
        }
        frame
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_balanced_classes() {
        let ds = blobs(99, 10, 3, 0.2, 5);
        let counts = [0usize, 1, 2].map(|c| ds.labels.iter().filter(|l| **l == c).count());
        assert_eq!(counts, [33, 33, 33]);
    }

    #[test]
    fn blobs_are_separable_by_centroid_distance() {
        // With tiny noise, same-class samples are much closer together.
        let ds = blobs(40, 16, 2, 0.01, 9);
        let d = |a: &Tensor, b: &Tensor| -> f32 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        let same = d(&ds.inputs[0], &ds.inputs[2]); // both class 0
        let diff = d(&ds.inputs[0], &ds.inputs[1]); // class 0 vs 1
        assert!(same < diff);
    }

    #[test]
    fn images_have_requested_shape() {
        let ds = images(10, (3, 8, 8), 5, 0.1, 2);
        assert_eq!(ds.inputs[0].shape(), &Shape::d3(3, 8, 8));
        assert_eq!(ds.classes, 5);
    }

    #[test]
    fn sparse_activations_hit_target_zero_fraction() {
        let t = sparse_activations(10_000, 0.6, 3);
        let zf = t.count_zeros() as f64 / t.len() as f64;
        assert!((zf - 0.6).abs() < 0.03, "zero fraction {zf}");
    }

    #[test]
    fn lif_spike_train_is_sparse_and_deterministic() {
        let a = lif_spike_train(10_000, 20, 0.25, 11);
        let b = lif_spike_train(10_000, 20, 0.25, 11);
        assert_eq!(a, b);
        let active = a.as_slice().iter().filter(|v| **v != 0.0).count();
        // Drive 0.25 with leak 0.2: only currents >= ~0.2 ever fire, and
        // firing neurons spike on a minority of ticks — the frame is
        // mostly silent but never fully dead.
        assert!(active > 0, "no neuron fired");
        assert!(
            active < 10_000 / 5,
            "frame too dense: {active}/10000 active"
        );
        // Silent neurons are exact +0.0 — the only value the gate skips.
        assert!(a
            .as_slice()
            .iter()
            .all(|v| v.to_bits() != (-0.0f32).to_bits()));
        // More drive, more spikes.
        let hot = lif_spike_train(10_000, 20, 2.0, 11);
        let hot_active = hot.as_slice().iter().filter(|v| **v != 0.0).count();
        assert!(hot_active > active);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = blobs(10, 4, 2, 0.5, 7);
        let b = blobs(10, 4, 2, 0.5, 7);
        assert_eq!(a.inputs[3], b.inputs[3]);
    }
}
