//! Training: SGD with momentum, softmax cross-entropy and mask-preserving
//! updates.
//!
//! Mask preservation is the mechanism behind the paper's iterative
//! prune-and-finetune loop: after every SGD step, weights belonging to
//! pruned blocks are forced back to zero so the network re-learns within
//! the sparse topology.

use cs_tensor::{ops, Shape, Tensor, TensorError};

use crate::data::Dataset;
use crate::network::Network;

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch: 16,
        }
    }
}

/// Per-layer binary masks pinning pruned weights at zero; indexed like the
/// network's layers, `None` for unmasked layers.
pub type LayerMasks = Vec<Option<Vec<bool>>>;

/// SGD-with-momentum trainer with optional mask-preserving updates.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    velocity: Vec<Option<Vec<f32>>>,
    bias_velocity: Vec<Option<Vec<f32>>>,
}

impl Trainer {
    /// Creates a trainer for the given network structure.
    pub fn new(net: &Network, cfg: TrainConfig) -> Self {
        let velocity = net
            .layers()
            .iter()
            .map(|l| l.weights().map(|w| vec![0.0; w.len()]))
            .collect();
        let bias_velocity = net
            .layers()
            .iter()
            .map(|l| l.weights().map(|w| vec![0.0; bias_len(l, w)]))
            .collect();
        Trainer {
            cfg,
            velocity,
            bias_velocity,
        }
    }

    /// Runs one epoch over the dataset, returning the mean loss.
    ///
    /// When `masks` is provided, masked-out weights are re-zeroed after
    /// every update (the fine-tuning step of iterative pruning).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from forward/backward passes.
    pub fn epoch(
        &mut self,
        net: &mut Network,
        data: &Dataset,
        masks: Option<&LayerMasks>,
    ) -> Result<f32, TensorError> {
        let mut total_loss = 0.0f64;
        let n = data.len();
        let mut idx = 0;
        while idx < n {
            let end = (idx + self.cfg.batch).min(n);
            let mut grad_w: Vec<Option<Vec<f32>>> = net
                .layers()
                .iter()
                .map(|l| l.weights().map(|w| vec![0.0; w.len()]))
                .collect();
            let mut grad_b: Vec<Option<Vec<f32>>> = net
                .layers()
                .iter()
                .map(|l| l.weights().map(|w| vec![0.0; bias_len(l, w)]))
                .collect();
            for s in idx..end {
                let cache = net.forward_cached(&data.inputs[s])?;
                let (loss, dlogits) = softmax_cross_entropy(&cache.output, data.labels[s])?;
                total_loss += f64::from(loss);
                let grads = net.backward(&cache, &dlogits)?;
                for (li, gw) in grads.weights.iter().enumerate() {
                    if let (Some(gw), Some(acc)) = (gw, grad_w[li].as_mut()) {
                        for (a, g) in acc.iter_mut().zip(gw.as_slice()) {
                            *a += g;
                        }
                    }
                    if let (Some(gb), Some(acc)) = (&grads.bias[li], grad_b[li].as_mut()) {
                        for (a, g) in acc.iter_mut().zip(gb) {
                            *a += g;
                        }
                    }
                }
            }
            let scale = 1.0 / (end - idx) as f32;
            self.apply(net, &grad_w, &grad_b, scale, masks);
            idx = end;
        }
        Ok((total_loss / n as f64) as f32)
    }

    fn apply(
        &mut self,
        net: &mut Network,
        grad_w: &[Option<Vec<f32>>],
        grad_b: &[Option<Vec<f32>>],
        scale: f32,
        masks: Option<&LayerMasks>,
    ) {
        let cfg = self.cfg;
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            let mask = masks.and_then(|m| m.get(li)).and_then(|m| m.as_ref());
            if let (Some(w), Some(g), Some(v)) = (
                layer.weights_mut(),
                grad_w[li].as_ref(),
                self.velocity[li].as_mut(),
            ) {
                let ws = w.as_mut_slice();
                for i in 0..ws.len() {
                    let grad = g[i] * scale + cfg.weight_decay * ws[i];
                    v[i] = cfg.momentum * v[i] - cfg.lr * grad;
                    ws[i] += v[i];
                    if let Some(m) = mask {
                        if !m[i] {
                            ws[i] = 0.0;
                            v[i] = 0.0;
                        }
                    }
                }
            }
            if let (Some(g), Some(v)) = (grad_b[li].as_ref(), self.bias_velocity[li].as_mut()) {
                if let Some(bias) = layer_bias_mut(layer) {
                    for i in 0..bias.len() {
                        let grad = g[i] * scale;
                        v[i] = cfg.momentum * v[i] - cfg.lr * grad;
                        bias[i] += v[i];
                    }
                }
            }
        }
    }
}

fn bias_len(layer: &crate::network::Layer, _w: &Tensor) -> usize {
    match &layer.kind {
        crate::network::LayerKind::FullyConnected { bias, .. }
        | crate::network::LayerKind::Conv2d { bias, .. } => bias.len(),
        _ => 0,
    }
}

fn layer_bias_mut(layer: &mut crate::network::Layer) -> Option<&mut Vec<f32>> {
    match &mut layer.kind {
        crate::network::LayerKind::FullyConnected { bias, .. }
        | crate::network::LayerKind::Conv2d { bias, .. } => Some(bias),
        _ => None,
    }
}

/// Softmax cross-entropy loss and its gradient w.r.t. the logits.
///
/// # Errors
///
/// Propagates shape errors from the softmax.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> Result<(f32, Tensor), TensorError> {
    let n = logits.len();
    let row = logits.clone().reshape(Shape::d2(1, n))?;
    let probs = ops::softmax(&row)?;
    let p = probs.as_slice()[label].max(1e-12);
    let loss = -p.ln();
    let grad = Tensor::from_fn(Shape::d1(n), |i| {
        probs.as_slice()[i] - if i == label { 1.0 } else { 0.0 }
    });
    Ok((loss, grad))
}

/// Fraction of samples whose arg-max prediction matches the label.
///
/// # Errors
///
/// Propagates shape errors from the forward pass.
pub fn accuracy(net: &Network, data: &Dataset) -> Result<f64, TensorError> {
    let mut correct = 0usize;
    for (x, label) in data.inputs.iter().zip(&data.labels) {
        let y = net.forward(x)?;
        let pred = argmax(y.as_slice());
        if pred == *label {
            correct += 1;
        }
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, x) in v.iter().enumerate() {
        if *x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let logits = Tensor::from_vec(Shape::d1(4), vec![1.0, 2.0, 0.5, -1.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, 1).unwrap();
        assert!(loss > 0.0);
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
        // Gradient at the true label is negative.
        assert!(grad.as_slice()[1] < 0.0);
    }

    #[test]
    fn mlp_learns_blobs() {
        let ds = data::blobs(120, 8, 3, 0.3, 11);
        let mut net = Network::mlp("learner", &[8, 24, 3], 4);
        let mut tr = Trainer::new(
            &net,
            TrainConfig {
                lr: 0.1,
                ..TrainConfig::default()
            },
        );
        let before = accuracy(&net, &ds).unwrap();
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            last = tr.epoch(&mut net, &ds, None).unwrap();
        }
        let after = accuracy(&net, &ds).unwrap();
        assert!(after > before.max(0.8), "accuracy {before} -> {after}");
        assert!(last < 0.5, "final loss {last}");
    }

    #[test]
    fn masked_training_keeps_pruned_weights_zero() {
        let ds = data::blobs(60, 6, 2, 0.3, 13);
        let mut net = Network::mlp("masked", &[6, 10, 2], 4);
        // Prune half of layer-0 weights.
        let w0_len = net.layers()[0].weights().unwrap().len();
        let mask0: Vec<bool> = (0..w0_len).map(|i| i % 2 == 0).collect();
        {
            let w = net.layers_mut()[0].weights_mut().unwrap();
            for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
                if !mask0[i] {
                    *v = 0.0;
                }
            }
        }
        let masks: LayerMasks = net
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    Some(mask0.clone())
                } else {
                    l.weights().map(|w| vec![true; w.len()])
                }
            })
            .collect();
        let mut tr = Trainer::new(&net, TrainConfig::default());
        for _ in 0..5 {
            tr.epoch(&mut net, &ds, Some(&masks)).unwrap();
        }
        let w = net.layers()[0].weights().unwrap();
        for (i, v) in w.as_slice().iter().enumerate() {
            if !mask0[i] {
                assert_eq!(*v, 0.0, "pruned weight {i} drifted to {v}");
            }
        }
        // Surviving weights did move.
        assert!(w.as_slice().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn cnn_learns_images_a_little() {
        let ds = data::images(60, (1, 8, 8), 2, 0.15, 21);
        let mut net = Network::small_cnn("cnn", (1, 8, 8), 2, 3);
        let mut tr = Trainer::new(
            &net,
            TrainConfig {
                lr: 0.05,
                ..TrainConfig::default()
            },
        );
        for _ in 0..8 {
            tr.epoch(&mut net, &ds, None).unwrap();
        }
        let acc = accuracy(&net, &ds).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn accuracy_of_untrained_net_is_near_chance() {
        let ds = data::blobs(200, 8, 4, 0.3, 17);
        let net = Network::mlp("chance", &[8, 8, 4], 5);
        let acc = accuracy(&net, &ds).unwrap();
        assert!(acc < 0.6);
    }
}
