//! LSTM cell forward pass for the recurrent benchmark workload.
//!
//! The paper's LSTM model (after Sak et al.) is evaluated for compression
//! (its gate matrices `W_ix`, `W_ih`, … are pruned/quantized like FC
//! weights) and for accelerator timing (each gate is a matrix–vector
//! product). This module provides a functional cell so dynamic neuron
//! sparsity of the recurrent state can be measured.

use cs_tensor::{ops, Shape, Tensor, TensorError};

/// Gate ordering within the packed `(n_in + n_hidden, 4 * n_hidden)`
/// weight matrix: input, forget, cell (candidate), output.
pub const GATES: [&str; 4] = ["i", "f", "g", "o"];

/// One LSTM layer with packed weights.
///
/// Weights are stored exactly as the compression pipeline sees them: a
/// single `(n_in + n_hidden, 4 * n_hidden)` matrix whose first `n_in` rows
/// multiply the input (`W_ix`-style) and remaining rows multiply the
/// previous hidden state (`W_ih`-style).
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    n_in: usize,
    n_hidden: usize,
    weights: Tensor,
    bias: Vec<f32>,
}

impl LstmCell {
    /// Creates a cell from packed weights.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `weights` is not
    /// `(n_in + n_hidden, 4 * n_hidden)`.
    pub fn new(n_in: usize, n_hidden: usize, weights: Tensor) -> Result<Self, TensorError> {
        let expect = Shape::d2(n_in + n_hidden, 4 * n_hidden);
        if weights.shape() != &expect {
            return Err(TensorError::ShapeMismatch {
                left: weights.shape().clone(),
                right: expect,
                op: "lstm weights",
            });
        }
        Ok(LstmCell {
            n_in,
            n_hidden,
            weights,
            bias: vec![0.0; 4 * n_hidden],
        })
    }

    /// Input feature size.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Hidden state size.
    pub fn n_hidden(&self) -> usize {
        self.n_hidden
    }

    /// Borrows the packed weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutably borrows the packed weight matrix (for pruning).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// Advances one timestep: `(h', c') = cell(x, h, c)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `x`, `h` or `c` have wrong lengths.
    pub fn step(
        &self,
        x: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> Result<(Tensor, Tensor), TensorError> {
        if x.len() != self.n_in || h.len() != self.n_hidden || c.len() != self.n_hidden {
            return Err(TensorError::ShapeMismatch {
                left: x.shape().clone(),
                right: Shape::d1(self.n_in),
                op: "lstm step",
            });
        }
        // Concatenate [x, h] and do one matvec against packed weights.
        let mut xh = Vec::with_capacity(self.n_in + self.n_hidden);
        xh.extend_from_slice(x.as_slice());
        xh.extend_from_slice(h.as_slice());
        let xh = Tensor::from_vec(Shape::d2(1, self.n_in + self.n_hidden), xh)?;
        let gates = ops::matmul(&xh, &self.weights)?;
        let g = gates.as_slice();
        let nh = self.n_hidden;
        let mut h_new = vec![0.0f32; nh];
        let mut c_new = vec![0.0f32; nh];
        for j in 0..nh {
            let i_g = sigmoid(g[j] + self.bias[j]);
            let f_g = sigmoid(g[nh + j] + self.bias[nh + j]);
            let g_g = (g[2 * nh + j] + self.bias[2 * nh + j]).tanh();
            let o_g = sigmoid(g[3 * nh + j] + self.bias[3 * nh + j]);
            c_new[j] = f_g * c.as_slice()[j] + i_g * g_g;
            h_new[j] = o_g * c_new[j].tanh();
        }
        Ok((
            Tensor::from_vec(Shape::d1(nh), h_new)?,
            Tensor::from_vec(Shape::d1(nh), c_new)?,
        ))
    }

    /// Runs a full sequence from zero state, returning all hidden states.
    ///
    /// # Errors
    ///
    /// Propagates [`LstmCell::step`] errors.
    pub fn run(&self, xs: &[Tensor]) -> Result<Vec<Tensor>, TensorError> {
        let mut h = Tensor::zeros(Shape::d1(self.n_hidden));
        let mut c = Tensor::zeros(Shape::d1(self.n_hidden));
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            let (h2, c2) = self.step(x, &h, &c)?;
            h = h2;
            c = c2;
            out.push(h.clone());
        }
        Ok(out)
    }
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn cell(n_in: usize, n_hidden: usize) -> LstmCell {
        let w = init::xavier(Shape::d2(n_in + n_hidden, 4 * n_hidden), 3);
        LstmCell::new(n_in, n_hidden, w).unwrap()
    }

    #[test]
    fn rejects_bad_weight_shape() {
        let w = Tensor::zeros(Shape::d2(4, 4));
        assert!(LstmCell::new(2, 3, w).is_err());
    }

    #[test]
    fn zero_weights_give_decaying_state() {
        let w = Tensor::zeros(Shape::d2(2 + 3, 12));
        let cell = LstmCell::new(2, 3, w).unwrap();
        let x = Tensor::full(Shape::d1(2), 1.0);
        let h = Tensor::zeros(Shape::d1(3));
        let c = Tensor::full(Shape::d1(3), 1.0);
        let (h2, c2) = cell.step(&x, &h, &c).unwrap();
        // With all-zero gates: i=f=o=0.5, g=0 => c' = 0.5*c.
        for v in c2.as_slice() {
            assert!((v - 0.5).abs() < 1e-6);
        }
        for v in h2.as_slice() {
            assert!((v - 0.5 * 0.5f32.tanh()).abs() < 1e-6);
        }
    }

    #[test]
    fn hidden_state_stays_bounded() {
        let cell = cell(8, 16);
        let xs: Vec<Tensor> = (0..50)
            .map(|i| Tensor::full(Shape::d1(8), (i as f32).sin()))
            .collect();
        let hs = cell.run(&xs).unwrap();
        assert_eq!(hs.len(), 50);
        for h in &hs {
            assert!(h.max_abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn step_rejects_wrong_input_len() {
        let cell = cell(4, 4);
        let x = Tensor::zeros(Shape::d1(3));
        let h = Tensor::zeros(Shape::d1(4));
        let c = Tensor::zeros(Shape::d1(4));
        assert!(cell.step(&x, &h, &c).is_err());
    }

    #[test]
    fn run_is_deterministic() {
        let cell = cell(4, 8);
        let xs: Vec<Tensor> = (0..5).map(|_| Tensor::full(Shape::d1(4), 0.3)).collect();
        let a = cell.run(&xs).unwrap();
        let b = cell.run(&xs).unwrap();
        assert_eq!(a, b);
    }
}
