//! Weight initializers, including the local-convergence generator.
//!
//! The paper's key observation is *local convergence*: after training,
//! larger weights gather into small clusters (Fig. 1, Fig. 4). Since the
//! original trained Caffe models are not available offline, synthetic
//! weights with the same statistical structure are generated instead: a
//! Gaussian base field whose magnitude is boosted inside randomly-planted
//! *hot blocks*. The hot-block fraction directly controls how much weight
//! mass survives coarse-grained pruning, so each benchmark layer can be
//! calibrated to the paper's published sparsity.

use cs_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{LayerSpec, LayerSpecKind};

/// Statistical profile of a synthetically "trained" layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceProfile {
    /// Edge length of the square hot blocks planted in the weight matrix.
    pub block: usize,
    /// Fraction of blocks that are hot (carry the large weights).
    pub hot_fraction: f64,
    /// Magnitude gain applied inside hot blocks.
    pub hot_gain: f32,
    /// Standard deviation of the Gaussian base field.
    pub base_std: f32,
}

impl ConvergenceProfile {
    /// A profile matching the paper's observation that roughly the top 10%
    /// of weights cluster into blocks covering ~10–35% of the matrix.
    pub fn paper_default() -> Self {
        ConvergenceProfile {
            block: 16,
            hot_fraction: 0.12,
            hot_gain: 6.0,
            base_std: 0.01,
        }
    }

    /// Profile targeting a given post-pruning density (fraction of weights
    /// kept). Hot blocks are what survives average pruning, so the hot
    /// fraction is set to the target density.
    pub fn with_target_density(density: f64) -> Self {
        ConvergenceProfile {
            hot_fraction: density.clamp(0.005, 1.0),
            ..ConvergenceProfile::paper_default()
        }
    }

    /// Overrides the planted block size.
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }
}

impl Default for ConvergenceProfile {
    fn default() -> Self {
        ConvergenceProfile::paper_default()
    }
}

/// Draws one standard normal sample via the Box–Muller transform.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Xavier/Glorot uniform initialization for a trainable weight matrix.
///
/// # Example
///
/// ```
/// use cs_tensor::Shape;
/// let w = cs_nn::init::xavier(Shape::d2(64, 32), 42);
/// assert!(w.max_abs() <= (6.0f32 / 96.0).sqrt() + 1e-6);
/// ```
pub fn xavier(shape: Shape, seed: u64) -> Tensor {
    let (fan_in, fan_out) = fans(&shape);
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(shape, |_| rng.gen_range(-bound..=bound))
}

/// Pure Gaussian initialization (an *untrained* layer: no local
/// convergence) — the paper's Fig. 4 "initial" comparison curve.
pub fn gaussian(shape: Shape, std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(shape, |_| normal(&mut rng) * std)
}

/// Generates a synthetically "trained" weight tensor exhibiting local
/// convergence.
///
/// A Gaussian base field is multiplied by `hot_gain` inside a random
/// subset of `block × block` tiles (tiles over the *last two* logical
/// dimensions of the weight layout; for conv tensors the tiling runs over
/// the `(n_fin, n_fout)` plane, matching the paper's blocks of shape
/// `(1, N, 1, 1)` along the output-feature-map dimension).
pub fn local_convergence(shape: Shape, profile: &ConvergenceProfile, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let (rows, cols) = matrix_view_dims(&shape);
    let bl = profile.block.max(1);
    let brows = rows.div_ceil(bl);
    let bcols = cols.div_ceil(bl);
    let hot: Vec<bool> = (0..brows * bcols)
        .map(|_| rng.gen_bool(profile.hot_fraction))
        .collect();
    let mut data = Vec::with_capacity(shape.len());
    for r in 0..rows {
        for c in 0..cols {
            let b = (r / bl) * bcols + (c / bl);
            let gain = if hot[b] { profile.hot_gain } else { 1.0 };
            data.push(normal(&mut rng) * profile.base_std * gain);
        }
    }
    Tensor::from_vec(shape, data).expect("length computed from shape")
}

/// Materializes weights for a layer spec with a deterministic per-layer
/// seed, in the canonical layout used throughout the workspace:
///
/// * FC: `(n_in, n_out)`
/// * Conv: `(n_fin / groups, n_fout, kx, ky)`
/// * LSTM: `(n_in + n_hidden, 4 * n_hidden)`
///
/// # Panics
///
/// Panics when called on a pooling layer (which has no weights).
pub fn materialize(layer: &LayerSpec, profile: &ConvergenceProfile, seed: u64) -> Tensor {
    let shape = weight_shape(layer);
    local_convergence(shape, profile, seed ^ name_hash(layer.name()))
}

/// The canonical weight-tensor shape for a layer spec.
///
/// # Panics
///
/// Panics for pooling layers.
pub fn weight_shape(layer: &LayerSpec) -> Shape {
    match *layer.kind() {
        LayerSpecKind::Conv {
            n_fin,
            n_fout,
            kx,
            ky,
            groups,
            ..
        } => Shape::d4(n_fin / groups, n_fout, kx, ky),
        LayerSpecKind::Fc { n_in, n_out } => Shape::d2(n_in, n_out),
        LayerSpecKind::Lstm { n_in, n_hidden, .. } => Shape::d2(n_in + n_hidden, 4 * n_hidden),
        LayerSpecKind::Pool { .. } => panic!("pooling layers have no weights"),
    }
}

/// Stable FNV-1a hash of a layer name, used for per-layer seeds.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Treats any weight shape as a 2-D matrix for block planting:
/// conv `(fi, fo, kx, ky)` becomes `(fi * kx * ky, fo)`-like row/col counts.
fn matrix_view_dims(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        1 => (1, shape.dim(0)),
        2 => (shape.dim(0), shape.dim(1)),
        4 => (shape.dim(0) * shape.dim(2) * shape.dim(3), shape.dim(1)),
        _ => {
            let n = shape.len();
            let rows = (n as f64).sqrt() as usize;
            (rows.max(1), n / rows.max(1))
        }
    }
}

fn fans(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        2 => (shape.dim(0), shape.dim(1)),
        4 => (
            shape.dim(0) * shape.dim(2) * shape.dim(3),
            shape.dim(1) * shape.dim(2) * shape.dim(3),
        ),
        _ => (shape.len(), shape.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Model, NetworkSpec, Scale};

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let a = xavier(Shape::d2(16, 16), 7);
        let b = xavier(Shape::d2(16, 16), 7);
        assert_eq!(a, b);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(a.max_abs() <= bound);
        let c = xavier(Shape::d2(16, 16), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_std_roughly_matches() {
        let g = gaussian(Shape::d1(20_000), 0.05, 3);
        let var: f32 = g.as_slice().iter().map(|v| v * v).sum::<f32>() / g.len() as f32;
        assert!((var.sqrt() - 0.05).abs() < 0.005);
    }

    #[test]
    fn local_convergence_clusters_large_weights() {
        let profile = ConvergenceProfile {
            block: 8,
            hot_fraction: 0.1,
            hot_gain: 8.0,
            base_std: 0.01,
        };
        let w = local_convergence(Shape::d2(128, 128), &profile, 11);
        // Top-10% threshold.
        let mut mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let thr = mags[w.len() / 10];
        // Count 8x8 blocks holding >= 32 large weights (half the block):
        // impossible under i.i.d. Gaussian, common under local convergence.
        let mut dense_blocks = 0;
        for br in 0..16 {
            for bc in 0..16 {
                let mut cnt = 0;
                for r in 0..8 {
                    for c in 0..8 {
                        if w.get(&[br * 8 + r, bc * 8 + c]).abs() >= thr {
                            cnt += 1;
                        }
                    }
                }
                if cnt >= 32 {
                    dense_blocks += 1;
                }
            }
        }
        assert!(dense_blocks >= 10, "only {dense_blocks} dense blocks");
    }

    #[test]
    fn iid_gaussian_does_not_cluster() {
        let w = gaussian(Shape::d2(128, 128), 0.01, 11);
        let mut mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let thr = mags[w.len() / 10];
        let mut dense_blocks = 0;
        for br in 0..16 {
            for bc in 0..16 {
                let mut cnt = 0;
                for r in 0..8 {
                    for c in 0..8 {
                        if w.get(&[br * 8 + r, bc * 8 + c]).abs() >= thr {
                            cnt += 1;
                        }
                    }
                }
                if cnt >= 32 {
                    dense_blocks += 1;
                }
            }
        }
        assert_eq!(dense_blocks, 0);
    }

    #[test]
    fn materialize_shapes_match_spec() {
        let spec = NetworkSpec::model(Model::LeNet5, Scale::Full);
        let profile = ConvergenceProfile::paper_default();
        for layer in spec.weighted_layers() {
            let w = materialize(layer, &profile, 99);
            assert_eq!(w.len(), layer.weight_count(), "layer {}", layer.name());
        }
    }

    #[test]
    fn materialize_is_per_layer_distinct() {
        let spec = NetworkSpec::model(Model::Mlp, Scale::Full);
        let profile = ConvergenceProfile::paper_default();
        let layers: Vec<_> = spec.weighted_layers().collect();
        let w0 = materialize(layers[0], &profile, 1);
        let w0_again = materialize(layers[0], &profile, 1);
        assert_eq!(w0, w0_again);
        let w1 = materialize(layers[1], &profile, 1);
        assert_ne!(w0.as_slice()[0], w1.as_slice()[0]);
    }

    #[test]
    fn hot_fraction_controls_surviving_mass() {
        // More hot blocks => larger share of weights above the top-10%
        // threshold of the sparse profile.
        let lo = local_convergence(
            Shape::d2(256, 256),
            &ConvergenceProfile::with_target_density(0.05),
            5,
        );
        let hi = local_convergence(
            Shape::d2(256, 256),
            &ConvergenceProfile::with_target_density(0.4),
            5,
        );
        let big = |t: &Tensor| t.as_slice().iter().filter(|v| v.abs() > 0.03).count();
        assert!(big(&hi) > 3 * big(&lo));
    }

    #[test]
    #[should_panic(expected = "no weights")]
    fn weight_shape_panics_for_pooling() {
        let spec = NetworkSpec::model(Model::LeNet5, Scale::Full);
        let pool = spec.layers().iter().find(|l| !l.has_weights()).unwrap();
        let _ = weight_shape(pool);
    }
}
