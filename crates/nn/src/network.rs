//! Runnable sequential networks with forward and backward passes.
//!
//! Only the *small trainable* models (MLP, LeNet-like, Cifar10-quick-like)
//! need to execute; the large zoo networks are handled at the shape level
//! by [`crate::spec`]. The forward pass here is also the functional ground
//! truth against which the accelerator simulators are validated.

use std::fmt;

use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor, TensorError};

use crate::init::{self, ConvergenceProfile};
use crate::spec::{LayerSpecKind, NetworkSpec};

/// The computation performed by one [`Layer`].
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Fully-connected layer: `y = x · W + b` with `W: (n_in, n_out)`.
    FullyConnected {
        /// Weight matrix of shape `(n_in, n_out)`.
        weights: Tensor,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// 2-D convolution with weights `(n_fin, n_fout, kx, ky)`.
    Conv2d {
        /// Weight tensor.
        weights: Tensor,
        /// Per-output-map bias.
        bias: Vec<f32>,
        /// Window geometry.
        geom: Conv2dGeometry,
    },
    /// Rectified linear unit.
    Relu,
    /// Max pooling.
    MaxPool {
        /// Window geometry.
        geom: Conv2dGeometry,
    },
    /// Reshape `(c, h, w)` activations into a flat vector.
    Flatten,
    /// Residual connection: adds the *output* of an earlier layer
    /// (`from`, 0-based index) to this layer's input — the ResNet
    /// shortcut. `from` must precede this layer and produce the same
    /// shape.
    Residual {
        /// Index of the layer whose output is added.
        from: usize,
    },
}

/// A named layer in a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name (used in reports and for per-layer masks).
    pub name: String,
    /// The layer's computation.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// Borrows the layer's weight tensor, if it has one.
    pub fn weights(&self) -> Option<&Tensor> {
        match &self.kind {
            LayerKind::FullyConnected { weights, .. } | LayerKind::Conv2d { weights, .. } => {
                Some(weights)
            }
            _ => None,
        }
    }

    /// Mutably borrows the layer's weight tensor, if it has one.
    pub fn weights_mut(&mut self) -> Option<&mut Tensor> {
        match &mut self.kind {
            LayerKind::FullyConnected { weights, .. } | LayerKind::Conv2d { weights, .. } => {
                Some(weights)
            }
            _ => None,
        }
    }
}

/// Cached values from a forward pass, consumed by the backward pass.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input to each layer (same order as the layers).
    pub inputs: Vec<Tensor>,
    /// Final output.
    pub output: Tensor,
}

/// Per-layer gradients produced by [`Network::backward`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// `d loss / d W` per layer (`None` for weightless layers).
    pub weights: Vec<Option<Tensor>>,
    /// `d loss / d b` per layer (`None` for weightless layers).
    pub bias: Vec<Option<Vec<f32>>>,
}

/// A runnable sequential network.
///
/// # Example
///
/// ```
/// use cs_nn::Network;
/// use cs_tensor::{Shape, Tensor};
///
/// let net = Network::mlp("tiny", &[4, 8, 3], 42);
/// let x = Tensor::zeros(Shape::d1(4));
/// let y = net.forward(&x).unwrap();
/// assert_eq!(y.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from explicit layers.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Network {
            name: name.into(),
            layers,
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by pruning and SGD).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Builds a ReLU MLP with Xavier weights; `dims` lists neuron counts
    /// including input and output. No ReLU after the final layer.
    pub fn mlp(name: impl Into<String>, dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least two dims");
        let mut layers = Vec::new();
        for i in 0..dims.len() - 1 {
            layers.push(Layer::new(
                format!("ip{}", i + 1),
                LayerKind::FullyConnected {
                    weights: init::xavier(Shape::d2(dims[i], dims[i + 1]), seed + i as u64),
                    bias: vec![0.0; dims[i + 1]],
                },
            ));
            if i + 2 < dims.len() {
                layers.push(Layer::new(format!("relu{}", i + 1), LayerKind::Relu));
            }
        }
        Network::new(name, layers)
    }

    /// Builds a small Cifar10-quick-style CNN for `(c, h, w)` inputs:
    /// two conv+pool stages followed by two FC layers. Used by the Fig. 8
    /// max-vs-average pruning experiment.
    pub fn small_cnn(
        name: impl Into<String>,
        in_shape: (usize, usize, usize),
        classes: usize,
        seed: u64,
    ) -> Self {
        let (c, h, w) = in_shape;
        let g5 = Conv2dGeometry::square(5, 1, 2);
        let p2 = Conv2dGeometry::square(2, 2, 0);
        let c1 = 16;
        let c2 = 32;
        let (h1, w1) = (h / 2, w / 2);
        let (h2, w2) = (h1 / 2, w1 / 2);
        let flat = c2 * h2 * w2;
        Network::new(
            name,
            vec![
                Layer::new(
                    "conv1",
                    LayerKind::Conv2d {
                        weights: init::xavier(Shape::d4(c, c1, 5, 5), seed),
                        bias: vec![0.0; c1],
                        geom: g5,
                    },
                ),
                Layer::new("relu1", LayerKind::Relu),
                Layer::new("pool1", LayerKind::MaxPool { geom: p2 }),
                Layer::new(
                    "conv2",
                    LayerKind::Conv2d {
                        weights: init::xavier(Shape::d4(c1, c2, 5, 5), seed + 1),
                        bias: vec![0.0; c2],
                        geom: g5,
                    },
                ),
                Layer::new("relu2", LayerKind::Relu),
                Layer::new("pool2", LayerKind::MaxPool { geom: p2 }),
                Layer::new("flatten", LayerKind::Flatten),
                Layer::new(
                    "ip1",
                    LayerKind::FullyConnected {
                        weights: init::xavier(Shape::d2(flat, 64), seed + 2),
                        bias: vec![0.0; 64],
                    },
                ),
                Layer::new("relu3", LayerKind::Relu),
                Layer::new(
                    "ip2",
                    LayerKind::FullyConnected {
                        weights: init::xavier(Shape::d2(64, classes), seed + 3),
                        bias: vec![0.0; classes],
                    },
                ),
            ],
        )
    }

    /// Appends a ResNet-style residual stage to `layers`: two 3x3 convs
    /// with a ReLU between, then a skip from the stage input and a final
    /// ReLU. Returns the layers for chaining.
    pub fn residual_stage(layers: &mut Vec<Layer>, name: &str, channels: usize, seed: u64) {
        let g3 = Conv2dGeometry::square(3, 1, 1);
        let entry = layers.len(); // input of the stage = output of entry-1
        layers.push(Layer::new(
            format!("{name}_conv1"),
            LayerKind::Conv2d {
                weights: init::xavier(Shape::d4(channels, channels, 3, 3), seed),
                bias: vec![0.0; channels],
                geom: g3,
            },
        ));
        layers.push(Layer::new(format!("{name}_relu1"), LayerKind::Relu));
        layers.push(Layer::new(
            format!("{name}_conv2"),
            LayerKind::Conv2d {
                weights: init::xavier(Shape::d4(channels, channels, 3, 3), seed + 1),
                bias: vec![0.0; channels],
                geom: g3,
            },
        ));
        // Skip from the stage input: the output of layer entry-1 is the
        // input of layer `entry`.
        layers.push(Layer::new(
            format!("{name}_add"),
            LayerKind::Residual {
                from: entry.saturating_sub(1),
            },
        ));
        layers.push(Layer::new(format!("{name}_relu2"), LayerKind::Relu));
    }

    /// Materializes a runnable network from a shape-level spec using the
    /// local-convergence weight generator. ReLU is inserted after every
    /// weighted layer except the last, pools become max pools.
    ///
    /// # Panics
    ///
    /// Panics if the spec contains LSTM layers (use [`crate::lstm`]).
    pub fn from_spec(spec: &NetworkSpec, profile: &ConvergenceProfile, seed: u64) -> Self {
        let weighted = spec.weighted_layers().count();
        let mut seen = 0usize;
        let mut layers = Vec::new();
        for l in spec.layers() {
            match *l.kind() {
                LayerSpecKind::Conv {
                    n_fout,
                    kx,
                    stride,
                    pad,
                    ..
                } => {
                    seen += 1;
                    layers.push(Layer::new(
                        l.name(),
                        LayerKind::Conv2d {
                            weights: init::materialize(l, profile, seed),
                            bias: vec![0.0; n_fout],
                            geom: Conv2dGeometry::square(kx, stride, pad),
                        },
                    ));
                    if seen < weighted {
                        layers.push(Layer::new(format!("{}_relu", l.name()), LayerKind::Relu));
                    }
                }
                LayerSpecKind::Fc { n_out, .. } => {
                    seen += 1;
                    if seen > 1
                        && layers
                            .last()
                            .is_some_and(|p| !matches!(p.kind, LayerKind::Flatten))
                        && layers
                            .iter()
                            .any(|p| matches!(p.kind, LayerKind::Conv2d { .. }))
                        && !layers
                            .iter()
                            .any(|p| matches!(p.kind, LayerKind::FullyConnected { .. }))
                    {
                        layers.push(Layer::new("flatten", LayerKind::Flatten));
                    }
                    layers.push(Layer::new(
                        l.name(),
                        LayerKind::FullyConnected {
                            weights: init::materialize(l, profile, seed),
                            bias: vec![0.0; n_out],
                        },
                    ));
                    if seen < weighted {
                        layers.push(Layer::new(format!("{}_relu", l.name()), LayerKind::Relu));
                    }
                }
                LayerSpecKind::Pool { k, stride, .. } => {
                    layers.push(Layer::new(
                        l.name(),
                        LayerKind::MaxPool {
                            geom: Conv2dGeometry::square(k, stride, 0),
                        },
                    ));
                }
                LayerSpecKind::Lstm { .. } => {
                    panic!("LSTM specs are handled by cs_nn::lstm, not Network")
                }
            }
        }
        Network::new(spec.name(), layers)
    }

    /// Runs a forward pass on one sample.
    ///
    /// # Errors
    ///
    /// Propagates shape errors when the input does not match the first
    /// layer.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        Ok(self.forward_cached(input)?.output)
    }

    /// Runs a forward pass, additionally returning every intermediate
    /// activation (used both for backprop and for the paper's dynamic
    /// neuron-sparsity measurements).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward_cached(&self, input: &Tensor) -> Result<ForwardCache, TensorError> {
        self.forward_cached_impl(input, None)
    }

    /// Runs a forward pass with the matmul/conv kernels fanned out over
    /// the thread pool. Bit-identical to [`Network::forward`]: the pooled
    /// kernels split work over disjoint output rows with unchanged
    /// per-row arithmetic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn forward_pooled(
        &self,
        input: &Tensor,
        pool: &cs_parallel::ThreadPool,
    ) -> Result<Tensor, TensorError> {
        Ok(self.forward_cached_impl(input, Some(pool))?.output)
    }

    fn forward_cached_impl(
        &self,
        input: &Tensor,
        pool: Option<&cs_parallel::ThreadPool>,
    ) -> Result<ForwardCache, TensorError> {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(x.clone());
            x = match &layer.kind {
                LayerKind::Residual { from } => {
                    if *from >= i {
                        return Err(TensorError::InvalidGeometry(format!(
                            "residual source {from} does not precede layer {i}"
                        )));
                    }
                    // The output of layer `from` is the input of `from+1`
                    // (or `x` itself when `from` is the previous layer).
                    let skip = if *from + 1 < inputs.len() {
                        &inputs[*from + 1]
                    } else {
                        &x
                    };
                    ops::add(&x, skip)?
                }
                _ => forward_layer(layer, &x, pool)?,
            };
        }
        Ok(ForwardCache { inputs, output: x })
    }

    /// Backpropagates `d loss / d output` through the network, returning
    /// per-layer weight/bias gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        grad_output: &Tensor,
    ) -> Result<Gradients, TensorError> {
        let n = self.layers.len();
        let mut gw: Vec<Option<Tensor>> = vec![None; n];
        let mut gb: Vec<Option<Vec<f32>>> = vec![None; n];
        // Extra gradient arriving at the *output* of layer k via skips.
        let mut pending: Vec<Option<Tensor>> = vec![None; n];
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            if let Some(extra) = pending[i].take() {
                grad = ops::add(&grad, &extra)?;
            }
            if let LayerKind::Residual { from } = &layer.kind {
                // d(x + skip)/dx = 1 for both operands.
                let slot = &mut pending[*from];
                *slot = Some(match slot.take() {
                    Some(prev) => ops::add(&prev, &grad)?,
                    None => grad.clone(),
                });
                continue; // grad flows unchanged to layer i-1
            }
            let input = &cache.inputs[i];
            let (gx, w, b) = backward_layer(layer, input, &grad)?;
            grad = gx;
            gw[i] = w;
            gb[i] = b;
        }
        Ok(Gradients {
            weights: gw,
            bias: gb,
        })
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} layers)", self.name, self.layers.len())
    }
}

fn forward_layer(
    layer: &Layer,
    x: &Tensor,
    pool: Option<&cs_parallel::ThreadPool>,
) -> Result<Tensor, TensorError> {
    match &layer.kind {
        LayerKind::FullyConnected { weights, bias } => {
            let row = x.clone().reshape(Shape::d2(1, x.len()))?;
            let mut y = match pool {
                Some(p) => ops::matmul_pooled(&row, weights, p)?,
                None => ops::matmul(&row, weights)?,
            };
            for (v, b) in y.as_mut_slice().iter_mut().zip(bias) {
                *v += b;
            }
            y.reshape(Shape::d1(bias.len()))
        }
        LayerKind::Conv2d {
            weights,
            bias,
            geom,
        } => match pool {
            Some(p) => ops::conv2d_pooled(x, weights, Some(bias), geom, p),
            None => ops::conv2d(x, weights, Some(bias), geom),
        },
        LayerKind::Relu => Ok(ops::relu(x)),
        LayerKind::MaxPool { geom } => ops::max_pool2d(x, geom),
        LayerKind::Flatten => x.clone().reshape(Shape::d1(x.len())),
        LayerKind::Residual { .. } => {
            unreachable!("residual layers are evaluated by the network loop")
        }
    }
}

#[allow(clippy::type_complexity)]
fn backward_layer(
    layer: &Layer,
    input: &Tensor,
    grad_out: &Tensor,
) -> Result<(Tensor, Option<Tensor>, Option<Vec<f32>>), TensorError> {
    match &layer.kind {
        LayerKind::FullyConnected { weights, bias: _ } => {
            let n_in = weights.shape().dim(0);
            let n_out = weights.shape().dim(1);
            let x = input.clone().reshape(Shape::d2(1, n_in))?;
            let dy = grad_out.clone().reshape(Shape::d2(1, n_out))?;
            let dw = ops::matmul(&ops::transpose(&x)?, &dy)?;
            let db = dy.as_slice().to_vec();
            let dx = ops::matmul(&dy, &ops::transpose(weights)?)?;
            Ok((dx.reshape(Shape::d1(n_in))?, Some(dw), Some(db)))
        }
        LayerKind::Conv2d {
            weights,
            bias: _,
            geom,
        } => conv2d_backward(input, weights, geom, grad_out),
        LayerKind::Relu => {
            let dx = Tensor::from_fn(input.shape().clone(), |i| {
                if input.as_slice()[i] > 0.0 {
                    grad_out.as_slice()[i]
                } else {
                    0.0
                }
            });
            Ok((dx, None, None))
        }
        LayerKind::MaxPool { geom } => {
            let dx = max_pool_backward(input, geom, grad_out)?;
            Ok((dx, None, None))
        }
        LayerKind::Flatten => Ok((grad_out.clone().reshape(input.shape().clone())?, None, None)),
        LayerKind::Residual { .. } => {
            unreachable!("residual layers are handled by Network::backward")
        }
    }
}

#[allow(clippy::type_complexity)]
fn conv2d_backward(
    input: &Tensor,
    weights: &Tensor,
    geom: &Conv2dGeometry,
    grad_out: &Tensor,
) -> Result<(Tensor, Option<Tensor>, Option<Vec<f32>>), TensorError> {
    let (n_fin, n_fout, kx, ky) = (
        weights.shape().dim(0),
        weights.shape().dim(1),
        weights.shape().dim(2),
        weights.shape().dim(3),
    );
    let (h, w) = (input.shape().dim(1), input.shape().dim(2));
    let (oh, ow) = geom.output_size(h, w)?;

    // grad_out is (n_fout, oh, ow); as a matrix (oh*ow, n_fout).
    let dy_mat = Tensor::from_fn(Shape::d2(oh * ow, n_fout), |i| {
        let pos = i / n_fout;
        let fo = i % n_fout;
        grad_out.as_slice()[fo * oh * ow + pos]
    });
    let cols = ops::im2col(input, geom)?; // (oh*ow, c*kx*ky)

    // dW_mat = cols^T · dy  -> (c*kx*ky, n_fout)
    let dw_mat = ops::matmul(&ops::transpose(&cols)?, &dy_mat)?;
    let dw = Tensor::from_fn(Shape::d4(n_fin, n_fout, kx, ky), |i| {
        let fi = i / (n_fout * kx * ky);
        let rem = i % (n_fout * kx * ky);
        let fo = rem / (kx * ky);
        let kk = rem % (kx * ky);
        let row = fi * kx * ky + kk;
        dw_mat.as_slice()[row * n_fout + fo]
    });

    // db = sum over positions of dy.
    let mut db = vec![0.0f32; n_fout];
    for pos in 0..oh * ow {
        for (fo, d) in db.iter_mut().enumerate() {
            *d += dy_mat.as_slice()[pos * n_fout + fo];
        }
    }

    // dx_cols = dy · W_mat^T with W_mat (c*kx*ky, n_fout).
    let w_mat = Tensor::from_fn(Shape::d2(n_fin * kx * ky, n_fout), |i| {
        let row = i / n_fout;
        let fo = i % n_fout;
        let fi = row / (kx * ky);
        let kk = row % (kx * ky);
        weights.get(&[fi, fo, kk / ky, kk % ky])
    });
    let dx_cols = ops::matmul(&dy_mat, &ops::transpose(&w_mat)?)?;

    // col2im accumulate.
    let mut dx = Tensor::zeros(input.shape().clone());
    let cols_per_row = n_fin * kx * ky;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let base_x = (oy * geom.stride_x) as isize - geom.pad_x as isize;
            let base_y = (ox * geom.stride_y) as isize - geom.pad_y as isize;
            for ci in 0..n_fin {
                for kxi in 0..kx {
                    let ix = base_x + kxi as isize;
                    if ix < 0 || ix as usize >= h {
                        continue;
                    }
                    for kyi in 0..ky {
                        let iy = base_y + kyi as isize;
                        if iy < 0 || iy as usize >= w {
                            continue;
                        }
                        let col = (ci * kx + kxi) * ky + kyi;
                        let v = dx_cols.as_slice()[row * cols_per_row + col];
                        let off = (ci * h + ix as usize) * w + iy as usize;
                        dx.as_mut_slice()[off] += v;
                    }
                }
            }
        }
    }
    Ok((dx, Some(dw), Some(db)))
}

fn max_pool_backward(
    input: &Tensor,
    geom: &Conv2dGeometry,
    grad_out: &Tensor,
) -> Result<Tensor, TensorError> {
    let (c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let (oh, ow) = geom.output_size(h, w)?;
    let mut dx = Tensor::zeros(input.shape().clone());
    let data = input.as_slice();
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = None;
                for kx in 0..geom.kx {
                    let ix = (oy * geom.stride_x + kx) as isize - geom.pad_x as isize;
                    if ix < 0 || ix as usize >= h {
                        continue;
                    }
                    for ky in 0..geom.ky {
                        let iy = (ox * geom.stride_y + ky) as isize - geom.pad_y as isize;
                        if iy < 0 || iy as usize >= w {
                            continue;
                        }
                        let off = (ci * h + ix as usize) * w + iy as usize;
                        if data[off] > best {
                            best = data[off];
                            best_off = Some(off);
                        }
                    }
                }
                if let Some(off) = best_off {
                    dx.as_mut_slice()[off] += grad_out.as_slice()[(ci * oh + oy) * ow + ox];
                }
            }
        }
    }
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Model, Scale};

    #[test]
    fn mlp_forward_dims() {
        let net = Network::mlp("m", &[10, 20, 5], 1);
        let y = net.forward(&Tensor::zeros(Shape::d1(10))).unwrap();
        assert_eq!(y.len(), 5);
    }

    #[test]
    fn small_cnn_forward_dims() {
        let net = Network::small_cnn("c", (3, 16, 16), 10, 2);
        let y = net.forward(&Tensor::zeros(Shape::d3(3, 16, 16))).unwrap();
        assert_eq!(y.len(), 10);
    }

    #[test]
    fn from_spec_lenet_runs() {
        let spec = NetworkSpec::model(Model::LeNet5, Scale::Full);
        let net = Network::from_spec(&spec, &ConvergenceProfile::paper_default(), 3);
        let y = net.forward(&Tensor::zeros(Shape::d3(1, 28, 28))).unwrap();
        assert_eq!(y.len(), 10);
    }

    #[test]
    fn from_spec_cifar_runs() {
        let spec = NetworkSpec::model(Model::Cifar10Quick, Scale::Full);
        let net = Network::from_spec(&spec, &ConvergenceProfile::paper_default(), 3);
        let mut x = Tensor::zeros(Shape::d3(3, 32, 32));
        x.as_mut_slice().iter_mut().enumerate().for_each(|(i, v)| {
            *v = (i % 7) as f32 * 0.1;
        });
        let y = net.forward(&x).unwrap();
        assert_eq!(y.len(), 10);
    }

    /// Numerical gradient check on a tiny MLP.
    #[test]
    fn fc_backward_matches_numeric_gradient() {
        let mut net = Network::mlp("g", &[3, 4, 2], 7);
        let x = Tensor::from_vec(Shape::d1(3), vec![0.3, -0.2, 0.7]).unwrap();
        // loss = sum(output^2) / 2 so dloss/dy = y.
        let loss = |net: &Network, x: &Tensor| -> f32 {
            let y = net.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let cache = net.forward_cached(&x).unwrap();
        let dy = cache.output.clone();
        let grads = net.backward(&cache, &dy).unwrap();

        let eps = 1e-3;
        // Check a few weight entries of layer 0 and layer 2 (ip2).
        for (li, wi) in [(0usize, 0usize), (0, 5), (2, 3)] {
            let analytic = grads.weights[li].as_ref().unwrap().as_slice()[wi];
            let orig = net.layers()[li].weights().unwrap().as_slice()[wi];
            net.layers_mut()[li].weights_mut().unwrap().as_mut_slice()[wi] = orig + eps;
            let lp = loss(&net, &x);
            net.layers_mut()[li].weights_mut().unwrap().as_mut_slice()[wi] = orig - eps;
            let lm = loss(&net, &x);
            net.layers_mut()[li].weights_mut().unwrap().as_mut_slice()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "layer {li} w[{wi}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_backward_matches_numeric_gradient() {
        let mut net = Network::new(
            "cg",
            vec![
                Layer::new(
                    "conv",
                    LayerKind::Conv2d {
                        weights: init::xavier(Shape::d4(1, 2, 3, 3), 5),
                        bias: vec![0.1, -0.1],
                        geom: Conv2dGeometry::square(3, 1, 1),
                    },
                ),
                Layer::new("relu", LayerKind::Relu),
                Layer::new(
                    "pool",
                    LayerKind::MaxPool {
                        geom: Conv2dGeometry::square(2, 2, 0),
                    },
                ),
                Layer::new("flat", LayerKind::Flatten),
            ],
        );
        let x = Tensor::from_fn(Shape::d3(1, 4, 4), |i| ((i * 37) % 11) as f32 * 0.1 - 0.4);
        let loss = |net: &Network, x: &Tensor| -> f32 {
            let y = net.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let cache = net.forward_cached(&x).unwrap();
        let grads = net.backward(&cache, &cache.output).unwrap();
        let eps = 1e-3;
        for wi in [0usize, 4, 9, 17] {
            let analytic = grads.weights[0].as_ref().unwrap().as_slice()[wi];
            let orig = net.layers()[0].weights().unwrap().as_slice()[wi];
            net.layers_mut()[0].weights_mut().unwrap().as_mut_slice()[wi] = orig + eps;
            let lp = loss(&net, &x);
            net.layers_mut()[0].weights_mut().unwrap().as_mut_slice()[wi] = orig - eps;
            let lm = loss(&net, &x);
            net.layers_mut()[0].weights_mut().unwrap().as_mut_slice()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "w[{wi}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn forward_cached_records_every_layer_input() {
        let net = Network::mlp("t", &[4, 6, 6, 2], 9);
        let cache = net.forward_cached(&Tensor::zeros(Shape::d1(4))).unwrap();
        assert_eq!(cache.inputs.len(), net.layers().len());
    }

    #[test]
    fn forward_pooled_is_bit_identical_to_serial() {
        let pool = cs_parallel::ThreadPool::new(4);
        // MLP path (pooled matmul).
        let mlp = Network::mlp("t", &[16, 32, 10], 3);
        let x = Tensor::from_fn(Shape::d1(16), |i| ((i * 7) % 13) as f32 * 0.1 - 0.6);
        let serial = mlp.forward(&x).unwrap();
        let pooled = mlp.forward_pooled(&x, &pool).unwrap();
        assert_eq!(serial, pooled);
        // Conv path (pooled im2col + matmul), with pooling and flatten.
        let net = Network::new(
            "c",
            vec![
                Layer::new(
                    "conv",
                    LayerKind::Conv2d {
                        weights: init::xavier(Shape::d4(1, 4, 3, 3), 5),
                        bias: vec![0.1, -0.1, 0.0, 0.2],
                        geom: Conv2dGeometry::square(3, 1, 1),
                    },
                ),
                Layer::new("relu", LayerKind::Relu),
                Layer::new(
                    "pool",
                    LayerKind::MaxPool {
                        geom: Conv2dGeometry::square(2, 2, 0),
                    },
                ),
                Layer::new("flat", LayerKind::Flatten),
            ],
        );
        let xc = Tensor::from_fn(Shape::d3(1, 8, 8), |i| ((i * 37) % 19) as f32 * 0.05 - 0.4);
        let serial = net.forward(&xc).unwrap();
        let pooled = net.forward_pooled(&xc, &pool).unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn weights_mut_allows_pruning() {
        let mut net = Network::mlp("p", &[4, 4], 1);
        net.layers_mut()[0]
            .weights_mut()
            .unwrap()
            .map_inplace(|_| 0.0);
        let y = net.forward(&Tensor::full(Shape::d1(4), 1.0)).unwrap();
        assert!(y.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn residual_stage_forward_is_identity_plus_branch() {
        // A residual stage whose convs are zeroed must be a pure
        // identity (plus the final ReLU).
        let mut layers = vec![Layer::new("stem_relu", LayerKind::Relu)];
        Network::residual_stage(&mut layers, "res1", 4, 3);
        let mut net = Network::new("res", layers);
        for l in net.layers_mut() {
            if let Some(w) = l.weights_mut() {
                w.map_inplace(|_| 0.0);
            }
        }
        let x = Tensor::from_fn(Shape::d3(4, 6, 6), |i| (i % 5) as f32 * 0.3);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.as_slice(), x.map(|v| v.max(0.0)).as_slice());
    }

    #[test]
    fn residual_changes_output_when_branch_is_nonzero() {
        let mut layers = vec![Layer::new("stem_relu", LayerKind::Relu)];
        Network::residual_stage(&mut layers, "res1", 4, 3);
        let net = Network::new("res", layers);
        let x = Tensor::from_fn(Shape::d3(4, 6, 6), |i| (i % 5) as f32 * 0.3);
        let y = net.forward(&x).unwrap();
        assert_ne!(y.as_slice(), x.as_slice());
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn residual_backward_matches_numeric_gradient() {
        let mut layers = vec![Layer::new("stem_relu", LayerKind::Relu)];
        Network::residual_stage(&mut layers, "res1", 2, 7);
        let mut net = Network::new("resg", layers);
        let x = Tensor::from_fn(Shape::d3(2, 4, 4), |i| ((i * 29) % 13) as f32 * 0.07 - 0.3);
        let loss = |net: &Network, x: &Tensor| -> f32 {
            let y = net.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let cache = net.forward_cached(&x).unwrap();
        let grads = net.backward(&cache, &cache.output).unwrap();
        let eps = 1e-3;
        // Check weights in both convs of the residual branch.
        for li in [1usize, 3] {
            for wi in [0usize, 7] {
                let analytic = grads.weights[li].as_ref().unwrap().as_slice()[wi];
                let orig = net.layers()[li].weights().unwrap().as_slice()[wi];
                net.layers_mut()[li].weights_mut().unwrap().as_mut_slice()[wi] = orig + eps;
                let lp = loss(&net, &x);
                net.layers_mut()[li].weights_mut().unwrap().as_mut_slice()[wi] = orig - eps;
                let lm = loss(&net, &x);
                net.layers_mut()[li].weights_mut().unwrap().as_mut_slice()[wi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "layer {li} w[{wi}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn residual_source_must_precede_layer() {
        let net = Network::new(
            "bad",
            vec![Layer::new("add", LayerKind::Residual { from: 0 })],
        );
        assert!(net.forward(&Tensor::zeros(Shape::d1(4))).is_err());
    }

    #[test]
    fn relu_layer_zeroes_negatives_in_forward() {
        let net = Network::new("r", vec![Layer::new("relu", LayerKind::Relu)]);
        let y = net
            .forward(&Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.5, 2.0]).unwrap())
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.5, 2.0]);
    }
}
