//! Neural-network substrate for the Cambricon-S reproduction.
//!
//! The paper evaluates on seven networks (LeNet-5, a 3-layer MLP, the
//! Cifar10 quick model, AlexNet, VGG16, ResNet-152 and an LSTM acoustic
//! model). This crate provides:
//!
//! * [`spec`] — *shape-level* descriptions ([`spec::NetworkSpec`]) of all
//!   seven networks at their published layer geometries. Compression and
//!   accelerator-timing experiments work from these specs plus per-layer
//!   weight tensors materialized on demand, so the full models never need
//!   to be resident at once.
//! * [`network`] — *runnable* sequential networks with forward inference,
//!   used for the small trainable models and for validating the
//!   accelerator simulators functionally.
//! * [`train`] — SGD with momentum, softmax cross-entropy and
//!   mask-preserving updates (the fine-tuning step of iterative pruning).
//! * [`init`] — weight initializers, including the *local convergence
//!   generator* that plants block-clustered large weights so synthetic
//!   models reproduce the paper's Fig. 1/Fig. 4 weight statistics.
//! * [`data`] — synthetic classification datasets (no external data gates).
//! * [`lstm`] — an LSTM cell for the recurrent workload.
//!
//! # Example
//!
//! ```
//! use cs_nn::spec::{Model, NetworkSpec, Scale};
//!
//! let alexnet = NetworkSpec::model(Model::AlexNet, Scale::Full);
//! let total: usize = alexnet.layers().iter().map(|l| l.weight_count()).sum();
//! assert!(total > 50_000_000); // ~60M synapses
//! ```

pub mod data;
pub mod init;
pub mod lstm;
pub mod network;
pub mod spec;
pub mod train;

pub use network::{Layer, LayerKind, Network};
pub use spec::{LayerClass, LayerSpec, Model, NetworkSpec, Scale};
