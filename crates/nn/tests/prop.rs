//! Property-based tests for the NN substrate.

use cs_nn::init::{self, ConvergenceProfile};
use cs_nn::network::{LayerKind, Network};
use cs_nn::spec::{LayerSpec, LayerSpecKind, Model, NetworkSpec, Scale};
use cs_tensor::{Shape, Tensor};
use proptest::prelude::*;

proptest! {
    /// Spec arithmetic: conv MACs always equal weights × output
    /// positions; FC MACs equal weights.
    #[test]
    fn spec_mac_identities(fin in 1usize..64, fout in 1usize..64, k in 1usize..6,
                           hw in 6usize..32, stride in 1usize..3) {
        prop_assume!(hw >= k);
        let conv = LayerSpec::new("c", LayerSpecKind::Conv {
            n_fin: fin, n_fout: fout, kx: k, ky: k,
            in_h: hw, in_w: hw, stride, pad: 0, groups: 1,
        });
        let (oh, ow) = conv.output_hw();
        prop_assert_eq!(conv.macs(), conv.weight_count() * oh * ow);
        let fc = LayerSpec::new("f", LayerSpecKind::Fc { n_in: fin, n_out: fout });
        prop_assert_eq!(fc.macs(), fc.weight_count());
    }

    /// The local-convergence generator is deterministic in its seed and
    /// its output scales with the configured std.
    #[test]
    fn generator_determinism(rows in 4usize..48, cols in 4usize..48, seed in 0u64..1000) {
        let p = ConvergenceProfile::paper_default();
        let a = init::local_convergence(Shape::d2(rows, cols), &p, seed);
        let b = init::local_convergence(Shape::d2(rows, cols), &p, seed);
        prop_assert_eq!(&a, &b);
        let c = init::local_convergence(Shape::d2(rows, cols), &p, seed + 1);
        prop_assert_ne!(a, c);
    }

    /// MLP forward is linear between ReLUs: scaling the final layer's
    /// weights scales the output.
    #[test]
    fn final_layer_scaling(alpha in 0.1f32..4.0, seed in 0u64..100) {
        let mut net = Network::mlp("s", &[6, 8, 4], seed);
        let x = Tensor::from_fn(Shape::d1(6), |i| (i as f32 - 2.5) * 0.3);
        let y1 = net.forward(&x).unwrap();
        let last = net.layers().len() - 1;
        net.layers_mut()[last].weights_mut().unwrap().map_inplace(|v| v * alpha);
        let y2 = net.forward(&x).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * alpha - b).abs() < 1e-3 * (1.0 + a.abs() * alpha),
                         "{} vs {}", a * alpha, b);
        }
    }

    /// Zeroing an MLP's first layer forces constant output regardless of
    /// the input (bias-only propagation).
    #[test]
    fn dead_first_layer_is_input_invariant(seed in 0u64..100) {
        let mut net = Network::mlp("z", &[5, 7, 3], seed);
        net.layers_mut()[0].weights_mut().unwrap().map_inplace(|_| 0.0);
        let y1 = net.forward(&Tensor::full(Shape::d1(5), 1.0)).unwrap();
        let y2 = net.forward(&Tensor::full(Shape::d1(5), -3.0)).unwrap();
        prop_assert_eq!(y1, y2);
    }

    /// Every model spec has consistent per-layer arithmetic at any scale.
    #[test]
    fn specs_consistent_at_any_scale(factor in 1usize..32) {
        for m in Model::all() {
            let spec = NetworkSpec::model(m, Scale::Reduced(factor));
            let total: usize = spec.layers().iter().map(|l| l.weight_count()).sum();
            prop_assert_eq!(total, spec.total_weights());
            for l in spec.weighted_layers() {
                prop_assert!(l.weight_count() > 0);
                prop_assert!(l.input_neurons() > 0);
                prop_assert!(l.output_neurons() > 0);
            }
        }
    }

    /// ReLU networks produce non-negative outputs after a trailing ReLU.
    #[test]
    fn relu_tail_is_nonnegative(seed in 0u64..100) {
        let mut layers = Network::mlp("r", &[4, 6, 6], seed).layers().to_vec();
        layers.push(cs_nn::Layer::new("tail", LayerKind::Relu));
        let net = Network::new("r2", layers);
        let x = Tensor::from_fn(Shape::d1(4), |i| (i as f32) - 1.5);
        let y = net.forward(&x).unwrap();
        prop_assert!(y.as_slice().iter().all(|v| *v >= 0.0));
    }
}
