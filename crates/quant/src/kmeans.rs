//! 1-D k-means (Lloyd's algorithm) for weight clustering.
//!
//! Weight quantization only needs scalar clustering, which permits a fast
//! exact implementation: values are sorted once, centroids stay sorted,
//! and each Lloyd assignment step is a linear sweep over cluster
//! boundaries (midpoints between adjacent centroids). Centroids are
//! initialized at quantiles, which is deterministic and close to optimal
//! for the unimodal-ish weight distributions in practice.

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, sorted ascending.
    pub centroids: Vec<f32>,
    /// Per-input nearest-centroid index (into `centroids`).
    pub assignments: Vec<u16>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Clusters `values` into exactly `min(k, distinct values)` groups with
/// up to `max_iters` Lloyd iterations.
///
/// When there are fewer distinct values than `k`, one centroid per
/// distinct value is returned (quantization is then lossless). With `k`
/// or more distinct values, exactly `k` centroids come back: duplicate
/// quantile seeds are topped back up from unused distinct values, and
/// clusters that empty out during Lloyd iterations are reseeded by
/// splitting the widest populated cluster instead of being dropped.
///
/// # Panics
///
/// Panics if `k == 0` or `values` is empty.
pub fn kmeans_1d(values: &[f32], k: usize, max_iters: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!values.is_empty(), "cannot cluster zero values");

    // Sort a copy; remember nothing (assignment is recomputed at the end
    // against the original order).
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));

    // Deduplicate for centroid seeding.
    let mut distinct: Vec<f32> = Vec::with_capacity(sorted.len().min(4096));
    for v in &sorted {
        if distinct.last() != Some(v) {
            distinct.push(*v);
        }
    }
    let k = k.min(distinct.len());

    // Quantile initialization over the sorted values. Repeated values can
    // make several quantiles coincide; dedup and then top the seeds back
    // up to `k` from the distinct values not yet used (a sorted merge
    // walk — seeds are themselves drawn from `distinct`, so exact `==`
    // matching is valid). This guarantees exactly `min(k, distinct)`
    // seeds, where the old code could silently start with fewer.
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| {
            let pos = (i * 2 + 1) * sorted.len() / (2 * k);
            sorted[pos.min(sorted.len() - 1)]
        })
        .collect();
    centroids.dedup();
    if centroids.len() < k {
        let need = k - centroids.len();
        let mut added = 0usize;
        let mut ci = 0usize;
        let mut topped = Vec::with_capacity(k);
        for &d in &distinct {
            if ci < centroids.len() && centroids[ci] == d {
                topped.push(d);
                ci += 1;
            } else if added < need {
                topped.push(d);
                added += 1;
            }
        }
        centroids = topped;
    }
    debug_assert_eq!(centroids.len(), k);

    for _ in 0..max_iters {
        // Boundaries are midpoints between adjacent centroids.
        let kk = centroids.len();
        let mut sums = vec![0.0f64; kk];
        let mut counts = vec![0usize; kk];
        let mut mins = vec![f32::INFINITY; kk];
        let mut maxs = vec![f32::NEG_INFINITY; kk];
        let mut ci = 0usize;
        for v in &sorted {
            while ci + 1 < kk && (centroids[ci] + centroids[ci + 1]) / 2.0 < *v {
                ci += 1;
            }
            sums[ci] += f64::from(*v);
            counts[ci] += 1;
            mins[ci] = mins[ci].min(*v);
            maxs[ci] = maxs[ci].max(*v);
        }
        let mut moved = false;
        let mut next = vec![0.0f32; kk];
        let mut empties = Vec::new();
        for (i, c) in centroids.iter().enumerate() {
            if counts[i] == 0 {
                // Keep the slot; reseeded below. Dropping empty clusters
                // here is what used to collapse the codebook below `k`.
                empties.push(i);
                next[i] = *c;
            } else {
                let m = (sums[i] / counts[i] as f64) as f32;
                if (m - c).abs() > 1e-7 {
                    moved = true;
                }
                next[i] = m;
            }
        }
        // Reseed each empty cluster by splitting the widest populated
        // cluster: the empty centroid jumps to the donor's max value,
        // which the donor's mean sits strictly below whenever its span is
        // positive. While empties remain and k <= distinct, pigeonhole
        // guarantees some cluster holds >= 2 values with positive span.
        for e in empties {
            let mut donor = None;
            let mut best_span = 0.0f32;
            for i in 0..kk {
                if counts[i] >= 2 {
                    let span = maxs[i] - mins[i];
                    if span > best_span {
                        best_span = span;
                        donor = Some(i);
                    }
                }
            }
            if let Some(d) = donor {
                next[e] = maxs[d];
                // Shrink the donor's recorded range so a further reseed
                // this round picks a different extreme or donor.
                maxs[d] = next[d];
                moved = true;
            }
        }
        next.sort_by(|a, b| a.partial_cmp(b).expect("finite centroids"));
        centroids = next;
        if !moved {
            break;
        }
    }

    // Final assignment in original order + inertia.
    let mut assignments = Vec::with_capacity(values.len());
    let mut inertia = 0.0f64;
    for v in values {
        let idx = nearest(&centroids, *v);
        let d = f64::from(v - centroids[idx]);
        inertia += d * d;
        assignments.push(idx as u16);
    }
    KMeansResult {
        centroids,
        assignments,
        inertia,
    }
}

fn nearest(centroids: &[f32], v: f32) -> usize {
    // Binary search over the sorted centroids.
    let mut lo = 0usize;
    let mut hi = centroids.len();
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if centroids[mid] <= v {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // lo is the last centroid <= v (or 0); compare with its neighbour.
    if lo + 1 < centroids.len() && (centroids[lo + 1] - v).abs() < (v - centroids[lo]).abs() {
        lo + 1
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_clusters() {
        let values = vec![0.0, 0.1, 0.05, 10.0, 10.1, 9.9];
        let r = kmeans_1d(&values, 2, 20);
        assert_eq!(r.centroids.len(), 2);
        assert!((r.centroids[0] - 0.05).abs() < 0.01);
        assert!((r.centroids[1] - 10.0).abs() < 0.1);
        assert_eq!(&r.assignments[..3], &[0, 0, 0]);
        assert_eq!(&r.assignments[3..], &[1, 1, 1]);
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let values = vec![1.0, 1.0, 2.0, 2.0];
        let r = kmeans_1d(&values, 8, 20);
        assert!(r.centroids.len() <= 2);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let values: Vec<f32> = (0..500).map(|i| ((i * 37) % 101) as f32 / 101.0).collect();
        let r2 = kmeans_1d(&values, 2, 30);
        let r8 = kmeans_1d(&values, 8, 30);
        let r32 = kmeans_1d(&values, 32, 30);
        assert!(r8.inertia < r2.inertia);
        assert!(r32.inertia < r8.inertia);
    }

    #[test]
    fn assignments_point_to_nearest_centroid() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let r = kmeans_1d(&values, 4, 30);
        for (v, a) in values.iter().zip(&r.assignments) {
            let d_assigned = (v - r.centroids[usize::from(*a)]).abs();
            for c in &r.centroids {
                assert!(d_assigned <= (v - c).abs() + 1e-6);
            }
        }
    }

    #[test]
    fn centroids_sorted() {
        let values: Vec<f32> = (0..300).map(|i| ((i * 97) % 31) as f32).collect();
        let r = kmeans_1d(&values, 8, 30);
        for w in r.centroids.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn single_value() {
        let r = kmeans_1d(&[3.5], 4, 10);
        assert_eq!(r.centroids, vec![3.5]);
        assert_eq!(r.assignments, vec![0]);
    }

    #[test]
    fn repeated_values_do_not_collapse_centroids() {
        // Regression: quantile seeding over heavily repeated values used
        // to produce duplicate seeds, `dedup()` removed them, and empty
        // clusters were dropped mid-Lloyd — the codebook came back with
        // fewer than `k` centroids despite >= k distinct values.
        let values = vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 5.0, 5.0];
        let r = kmeans_1d(&values, 4, 20);
        assert_eq!(r.centroids.len(), 4, "centroids: {:?}", r.centroids);
        // Four distinct values into four clusters: lossless.
        assert!(r.inertia < 1e-9, "inertia: {}", r.inertia);
    }

    #[test]
    fn skewed_repeats_keep_exactly_min_k_distinct_centroids() {
        // A long run of a single value plus a few outliers, across a range
        // of k values: the result must always have min(k, distinct) many
        // centroids, stay sorted, and keep assignments in range.
        let mut values = vec![0.25f32; 400];
        values.extend_from_slice(&[-3.0, -1.0, 0.5, 1.5, 2.0, 7.0, 9.0]);
        let distinct = 8usize;
        for k in [1usize, 2, 3, 4, 6, 8, 16, 64] {
            let r = kmeans_1d(&values, k, 30);
            assert_eq!(
                r.centroids.len(),
                k.min(distinct),
                "k={k} centroids: {:?}",
                r.centroids
            );
            for w in r.centroids.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for a in &r.assignments {
                assert!(usize::from(*a) < r.centroids.len());
            }
        }
    }

    #[test]
    fn empty_cluster_reseed_reduces_inertia() {
        // Two tight groups far apart plus heavy repeats in the middle.
        // With dropped clusters, k=4 would degenerate; with reseeding the
        // lossless 4-centroid solution must be found.
        let mut values = vec![0.0f32; 100];
        values.extend(std::iter::repeat_n(100.0f32, 100));
        values.push(50.0);
        values.push(51.0);
        let r = kmeans_1d(&values, 4, 50);
        assert_eq!(r.centroids.len(), 4, "centroids: {:?}", r.centroids);
        assert!(r.inertia < 1e-6, "inertia: {}", r.inertia);
    }
}
