//! 1-D k-means (Lloyd's algorithm) for weight clustering.
//!
//! Weight quantization only needs scalar clustering, which permits a fast
//! exact implementation: values are sorted once, centroids stay sorted,
//! and each Lloyd assignment step is a linear sweep over cluster
//! boundaries (midpoints between adjacent centroids). Centroids are
//! initialized at quantiles, which is deterministic and close to optimal
//! for the unimodal-ish weight distributions in practice.

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, sorted ascending.
    pub centroids: Vec<f32>,
    /// Per-input nearest-centroid index (into `centroids`).
    pub assignments: Vec<u16>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Clusters `values` into at most `k` groups with up to `max_iters` Lloyd
/// iterations.
///
/// When there are fewer distinct values than `k`, fewer centroids are
/// returned (quantization is then lossless).
///
/// # Panics
///
/// Panics if `k == 0` or `values` is empty.
pub fn kmeans_1d(values: &[f32], k: usize, max_iters: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!values.is_empty(), "cannot cluster zero values");

    // Sort a copy; remember nothing (assignment is recomputed at the end
    // against the original order).
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));

    // Deduplicate for centroid seeding.
    let mut distinct: Vec<f32> = Vec::with_capacity(sorted.len().min(4096));
    for v in &sorted {
        if distinct.last() != Some(v) {
            distinct.push(*v);
        }
    }
    let k = k.min(distinct.len());

    // Quantile initialization over the sorted values.
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| {
            let pos = (i * 2 + 1) * sorted.len() / (2 * k);
            sorted[pos.min(sorted.len() - 1)]
        })
        .collect();
    centroids.dedup();

    for _ in 0..max_iters {
        // Boundaries are midpoints between adjacent centroids.
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        let mut ci = 0usize;
        for v in &sorted {
            while ci + 1 < centroids.len() && (centroids[ci] + centroids[ci + 1]) / 2.0 < *v {
                ci += 1;
            }
            sums[ci] += f64::from(*v);
            counts[ci] += 1;
        }
        let mut moved = false;
        let mut next = Vec::with_capacity(centroids.len());
        for (i, c) in centroids.iter().enumerate() {
            if counts[i] == 0 {
                continue; // drop empty clusters
            }
            let m = (sums[i] / counts[i] as f64) as f32;
            if (m - c).abs() > 1e-7 {
                moved = true;
            }
            next.push(m);
        }
        centroids = next;
        if !moved {
            break;
        }
    }

    // Final assignment in original order + inertia.
    let mut assignments = Vec::with_capacity(values.len());
    let mut inertia = 0.0f64;
    for v in values {
        let idx = nearest(&centroids, *v);
        let d = f64::from(v - centroids[idx]);
        inertia += d * d;
        assignments.push(idx as u16);
    }
    KMeansResult {
        centroids,
        assignments,
        inertia,
    }
}

fn nearest(centroids: &[f32], v: f32) -> usize {
    // Binary search over the sorted centroids.
    let mut lo = 0usize;
    let mut hi = centroids.len();
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if centroids[mid] <= v {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // lo is the last centroid <= v (or 0); compare with its neighbour.
    if lo + 1 < centroids.len() && (centroids[lo + 1] - v).abs() < (v - centroids[lo]).abs() {
        lo + 1
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_clusters() {
        let values = vec![0.0, 0.1, 0.05, 10.0, 10.1, 9.9];
        let r = kmeans_1d(&values, 2, 20);
        assert_eq!(r.centroids.len(), 2);
        assert!((r.centroids[0] - 0.05).abs() < 0.01);
        assert!((r.centroids[1] - 10.0).abs() < 0.1);
        assert_eq!(&r.assignments[..3], &[0, 0, 0]);
        assert_eq!(&r.assignments[3..], &[1, 1, 1]);
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let values = vec![1.0, 1.0, 2.0, 2.0];
        let r = kmeans_1d(&values, 8, 20);
        assert!(r.centroids.len() <= 2);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let values: Vec<f32> = (0..500).map(|i| ((i * 37) % 101) as f32 / 101.0).collect();
        let r2 = kmeans_1d(&values, 2, 30);
        let r8 = kmeans_1d(&values, 8, 30);
        let r32 = kmeans_1d(&values, 32, 30);
        assert!(r8.inertia < r2.inertia);
        assert!(r32.inertia < r8.inertia);
    }

    #[test]
    fn assignments_point_to_nearest_centroid() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let r = kmeans_1d(&values, 4, 30);
        for (v, a) in values.iter().zip(&r.assignments) {
            let d_assigned = (v - r.centroids[usize::from(*a)]).abs();
            for c in &r.centroids {
                assert!(d_assigned <= (v - c).abs() + 1e-6);
            }
        }
    }

    #[test]
    fn centroids_sorted() {
        let values: Vec<f32> = (0..300).map(|i| ((i * 97) % 31) as f32).collect();
        let r = kmeans_1d(&values, 8, 30);
        for w in r.centroids.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn single_value() {
        let r = kmeans_1d(&[3.5], 4, 10);
        assert_eq!(r.centroids, vec![3.5]);
        assert_eq!(r.assignments, vec![0]);
    }
}
