//! Weight quantization: k-means clustering, global and local codebooks.
//!
//! Quantization replaces each surviving weight with a small dictionary
//! index into a codebook of shared centroid values (the paper's Fig. 3).
//! **Local quantization** (Fig. 9) — the paper's refinement — splits the
//! weight stream into regions and clusters each region separately, which
//! exploits local convergence to reach the same accuracy with fewer bits
//! per index (e.g. AlexNet fc6: 4-bit local vs 5-bit global dictionaries,
//! 19.8% smaller).
//!
//! Region partitioning here follows the row-major surviving-weight stream
//! (contiguous chunks), which preserves the spatial locality of the
//! paper's sub-matrices after compaction.
//!
//! # Example
//!
//! ```
//! use cs_quant::{quantize_global, quantize_local};
//!
//! let values: Vec<f32> = (0..256).map(|i| (i % 16) as f32).collect();
//! let q = quantize_global(&values, 4).unwrap();
//! let decoded = q.decode();
//! let err: f32 = values.iter().zip(&decoded).map(|(a, b)| (a - b).abs()).sum();
//! assert!(err < 1.0); // 16 distinct values, 16 clusters
//! let ql = quantize_local(&values, 4, 4).unwrap();
//! assert_eq!(ql.codebook_count(), 4);
//! ```

use std::fmt;

pub mod kmeans;

pub use kmeans::{kmeans_1d, KMeansResult};

/// Error type for quantization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// Bits per index outside the supported 1..=16 range.
    BadBits(u8),
    /// No values to quantize.
    Empty,
    /// Region count of zero.
    NoRegions,
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::BadBits(b) => write!(f, "bits per index {b} outside 1..=16"),
            QuantError::Empty => write!(f, "no values to quantize"),
            QuantError::NoRegions => write!(f, "region count must be positive"),
        }
    }
}

impl std::error::Error for QuantError {}

/// One codebook of centroid values.
///
/// Centroids are stored as `f32` here; size accounting charges 16 bits per
/// entry, matching the accelerator's 16-bit weight LUT (WDM).
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    centroids: Vec<f32>,
}

impl Codebook {
    /// Creates a codebook from centroids.
    pub fn new(centroids: Vec<f32>) -> Self {
        Codebook { centroids }
    }

    /// The centroid values.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Returns `true` for an empty codebook.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Looks a value up by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value(&self, index: u16) -> f32 {
        self.centroids[usize::from(index)]
    }

    /// Nearest-centroid index for a value.
    pub fn encode(&self, v: f32) -> u16 {
        let mut best = 0usize;
        let mut bd = f32::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = (c - v).abs();
            if d < bd {
                bd = d;
                best = i;
            }
        }
        best as u16
    }

    /// Size in bytes at 16 bits per entry (the WDM LUT width).
    pub fn byte_size(&self) -> usize {
        self.centroids.len() * 2
    }
}

/// A quantized weight stream: dictionary indices plus one or more
/// codebooks.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    bits: u8,
    region_len: usize,
    codebooks: Vec<Codebook>,
    indices: Vec<u16>,
}

impl QuantizedLayer {
    /// Bits per dictionary index.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of codebooks (1 for global quantization).
    pub fn codebook_count(&self) -> usize {
        self.codebooks.len()
    }

    /// All codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// The dictionary (one index per value).
    pub fn indices(&self) -> &[u16] {
        &self.indices
    }

    /// Values per region (the last region may be shorter).
    pub fn region_len(&self) -> usize {
        self.region_len
    }

    /// Number of quantized values.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Dictionary size in bits (`len * bits`).
    pub fn dictionary_bits(&self) -> usize {
        self.indices.len() * usize::from(self.bits)
    }

    /// Total codebook size in bytes.
    pub fn codebook_bytes(&self) -> usize {
        self.codebooks.iter().map(Codebook::byte_size).sum()
    }

    /// Compressed weight size in bytes: dictionary + codebooks (the
    /// paper's `W_q`).
    pub fn byte_size(&self) -> usize {
        self.dictionary_bits().div_ceil(8) + self.codebook_bytes()
    }

    /// Reconstructs the (lossy) value stream.
    pub fn decode(&self) -> Vec<f32> {
        self.indices
            .iter()
            .enumerate()
            .map(|(i, idx)| {
                let region = (i / self.region_len).min(self.codebooks.len() - 1);
                self.codebooks[region].value(*idx)
            })
            .collect()
    }

    /// Mean squared reconstruction error against the original stream.
    ///
    /// # Panics
    ///
    /// Panics when `original` has a different length.
    pub fn mse(&self, original: &[f32]) -> f64 {
        assert_eq!(original.len(), self.len(), "length mismatch");
        if original.is_empty() {
            return 0.0;
        }
        let decoded = self.decode();
        original
            .iter()
            .zip(&decoded)
            .map(|(a, b)| {
                let d = f64::from(a - b);
                d * d
            })
            .sum::<f64>()
            / original.len() as f64
    }
}

fn check_bits(bits: u8) -> Result<(), QuantError> {
    if bits == 0 || bits > 16 {
        return Err(QuantError::BadBits(bits));
    }
    Ok(())
}

/// Quantizes a value stream with a single shared codebook of
/// `2^bits` centroids (the paper's *global quantization*, Fig. 3).
///
/// # Errors
///
/// Returns [`QuantError`] for empty input or unsupported bit widths.
pub fn quantize_global(values: &[f32], bits: u8) -> Result<QuantizedLayer, QuantError> {
    check_bits(bits)?;
    if values.is_empty() {
        return Err(QuantError::Empty);
    }
    let k = 1usize << bits;
    let result = kmeans_1d(values, k, 25);
    let codebook = Codebook::new(result.centroids);
    let indices = result.assignments;
    Ok(QuantizedLayer {
        bits,
        region_len: values.len(),
        codebooks: vec![codebook],
        indices,
    })
}

/// Quantizes a value stream with one codebook per region (the paper's
/// *local quantization*, Fig. 9). Regions are contiguous equal-length
/// chunks of the stream.
///
/// # Errors
///
/// Returns [`QuantError`] for empty input, zero regions, or unsupported
/// bit widths.
pub fn quantize_local(
    values: &[f32],
    bits: u8,
    regions: usize,
) -> Result<QuantizedLayer, QuantError> {
    check_bits(bits)?;
    if values.is_empty() {
        return Err(QuantError::Empty);
    }
    if regions == 0 {
        return Err(QuantError::NoRegions);
    }
    let regions = regions.min(values.len());
    let region_len = values.len().div_ceil(regions);
    let k = 1usize << bits;
    let mut codebooks = Vec::with_capacity(regions);
    let mut indices = Vec::with_capacity(values.len());
    for chunk in values.chunks(region_len) {
        let result = kmeans_1d(chunk, k, 25);
        indices.extend(result.assignments);
        codebooks.push(Codebook::new(result.centroids));
    }
    Ok(QuantizedLayer {
        bits,
        region_len,
        codebooks,
        indices,
    })
}

/// Parallel [`quantize_local`]: regions are clustered independently by
/// the pool, one k-means run per region. Bit-identical to the serial
/// version — each region's k-means sees exactly the same chunk.
///
/// # Errors
///
/// Same conditions as [`quantize_local`].
pub fn quantize_local_pooled(
    values: &[f32],
    bits: u8,
    regions: usize,
    pool: &cs_parallel::ThreadPool,
) -> Result<QuantizedLayer, QuantError> {
    check_bits(bits)?;
    if values.is_empty() {
        return Err(QuantError::Empty);
    }
    if regions == 0 {
        return Err(QuantError::NoRegions);
    }
    let regions = regions.min(values.len());
    let region_len = values.len().div_ceil(regions);
    let k = 1usize << bits;
    let n_chunks = values.len().div_ceil(region_len);
    let mut results: Vec<Option<KMeansResult>> = vec![None; n_chunks];
    pool.parallel_chunks_mut(&mut results, 1, |ci, slot| {
        let start = ci * region_len;
        let end = (start + region_len).min(values.len());
        slot[0] = Some(kmeans_1d(&values[start..end], k, 25));
    });
    let mut codebooks = Vec::with_capacity(n_chunks);
    let mut indices = Vec::with_capacity(values.len());
    for result in results.into_iter().flatten() {
        indices.extend(result.assignments);
        codebooks.push(Codebook::new(result.centroids));
    }
    Ok(QuantizedLayer {
        bits,
        region_len,
        codebooks,
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_values(n: usize, seed: u64) -> Vec<f32> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn global_quantization_is_lossless_when_k_covers_values() {
        let values: Vec<f32> = (0..100).map(|i| (i % 8) as f32).collect();
        let q = quantize_global(&values, 3).unwrap();
        assert!(q.mse(&values) < 1e-9);
        assert_eq!(q.decode().len(), values.len());
    }

    #[test]
    fn more_bits_less_error() {
        let values = lcg_values(2000, 5);
        let q2 = quantize_global(&values, 2).unwrap();
        let q4 = quantize_global(&values, 4).unwrap();
        let q6 = quantize_global(&values, 6).unwrap();
        assert!(q4.mse(&values) < q2.mse(&values));
        assert!(q6.mse(&values) < q4.mse(&values));
    }

    #[test]
    fn local_beats_global_on_locally_clustered_data() {
        // Two regions drawn from different value ranges: per-region
        // codebooks fit each range with the same bit budget.
        let mut values = Vec::new();
        values.extend(lcg_values(1000, 1).iter().map(|v| v * 0.1)); // small
        values.extend(lcg_values(1000, 2).iter().map(|v| v * 10.0 + 50.0)); // big
        let qg = quantize_global(&values, 3).unwrap();
        let ql = quantize_local(&values, 3, 2).unwrap();
        assert!(
            ql.mse(&values) < qg.mse(&values) / 2.0,
            "local {} vs global {}",
            ql.mse(&values),
            qg.mse(&values)
        );
    }

    #[test]
    fn size_accounting() {
        let values = lcg_values(1024, 3);
        let q = quantize_global(&values, 4).unwrap();
        assert_eq!(q.dictionary_bits(), 1024 * 4);
        assert_eq!(q.codebook_bytes(), 16 * 2);
        assert_eq!(q.byte_size(), 512 + 32);
        let ql = quantize_local(&values, 4, 8).unwrap();
        assert_eq!(ql.codebook_count(), 8);
        assert_eq!(ql.dictionary_bits(), 1024 * 4);
        assert!(ql.codebook_bytes() <= 8 * 16 * 2);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(quantize_global(&[], 4), Err(QuantError::Empty));
        assert_eq!(quantize_global(&[1.0], 0), Err(QuantError::BadBits(0)));
        assert_eq!(quantize_global(&[1.0], 17), Err(QuantError::BadBits(17)));
        assert_eq!(quantize_local(&[1.0], 4, 0), Err(QuantError::NoRegions));
    }

    #[test]
    fn regions_clamped_to_value_count() {
        let q = quantize_local(&[1.0, 2.0], 2, 100).unwrap();
        assert!(q.codebook_count() <= 2);
        assert_eq!(q.decode().len(), 2);
    }

    #[test]
    fn pooled_local_quantization_matches_serial() {
        let pool = cs_parallel::ThreadPool::new(4);
        let values = lcg_values(3000, 7);
        for regions in [1usize, 3, 8, 17] {
            let serial = quantize_local(&values, 4, regions).unwrap();
            let pooled = quantize_local_pooled(&values, 4, regions, &pool).unwrap();
            assert_eq!(serial, pooled, "mismatch at regions={regions}");
        }
        assert_eq!(
            quantize_local_pooled(&[], 4, 2, &pool),
            Err(QuantError::Empty)
        );
        assert_eq!(
            quantize_local_pooled(&[1.0], 4, 0, &pool),
            Err(QuantError::NoRegions)
        );
    }

    #[test]
    fn codebook_encode_decode() {
        let cb = Codebook::new(vec![-1.0, 0.0, 1.0]);
        assert_eq!(cb.encode(0.9), 2);
        assert_eq!(cb.encode(-0.7), 0);
        assert_eq!(cb.value(1), 0.0);
        assert_eq!(cb.byte_size(), 6);
    }
}
