//! Property-based tests for k-means and quantization.

use cs_quant::{kmeans_1d, quantize_global, quantize_local};
use proptest::prelude::*;

proptest! {
    /// Assignments always point to the nearest centroid.
    #[test]
    fn kmeans_assigns_nearest(values in proptest::collection::vec(-100.0f32..100.0, 1..400),
                              k in 1usize..32) {
        let r = kmeans_1d(&values, k, 25);
        for (v, a) in values.iter().zip(&r.assignments) {
            let d = (v - r.centroids[usize::from(*a)]).abs();
            for c in &r.centroids {
                prop_assert!(d <= (v - c).abs() + 1e-4);
            }
        }
    }

    /// Centroids are sorted and lie within the data range.
    #[test]
    fn kmeans_centroids_in_range(values in proptest::collection::vec(-50.0f32..50.0, 1..400),
                                 k in 1usize..16) {
        let r = kmeans_1d(&values, k, 25);
        let lo = values.iter().fold(f32::INFINITY, |a, b| a.min(*b));
        let hi = values.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
        for w in r.centroids.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for c in &r.centroids {
            prop_assert!(*c >= lo - 1e-4 && *c <= hi + 1e-4);
        }
    }

    /// Inertia never increases with more clusters.
    #[test]
    fn kmeans_inertia_monotone_in_k(values in proptest::collection::vec(-10.0f32..10.0, 16..300)) {
        let i2 = kmeans_1d(&values, 2, 30).inertia;
        let i4 = kmeans_1d(&values, 4, 30).inertia;
        let i16 = kmeans_1d(&values, 16, 30).inertia;
        prop_assert!(i4 <= i2 + 1e-6);
        prop_assert!(i16 <= i4 + 1e-6);
    }

    /// Quantization never grows: the compressed byte size is below the
    /// fp32 original for realistic widths.
    #[test]
    fn quantization_compresses(values in proptest::collection::vec(-1.0f32..1.0, 64..2000),
                               bits in 2u8..8) {
        let q = quantize_global(&values, bits).unwrap();
        prop_assert!(q.byte_size() < values.len() * 4);
        prop_assert_eq!(q.decode().len(), values.len());
    }

    /// Local quantization error never exceeds the per-region value range
    /// and improves (or matches) global at equal bits on any input.
    #[test]
    fn local_no_worse_than_global_within_tolerance(
        values in proptest::collection::vec(-5.0f32..5.0, 64..1000),
        bits in 2u8..6) {
        let g = quantize_global(&values, bits).unwrap();
        let l = quantize_local(&values, bits, 4).unwrap();
        // Local quantization has strictly more degrees of freedom per
        // value; allow small slack for k-means local minima.
        prop_assert!(l.mse(&values) <= g.mse(&values) * 1.5 + 1e-9,
                     "local {} vs global {}", l.mse(&values), g.mse(&values));
    }

    /// Dictionary indices always address valid codebook entries.
    #[test]
    fn indices_address_codebooks(values in proptest::collection::vec(-3.0f32..3.0, 8..500),
                                 bits in 1u8..6, regions in 1usize..6) {
        let q = quantize_local(&values, bits, regions).unwrap();
        let region_len = q.region_len();
        for (i, idx) in q.indices().iter().enumerate() {
            let region = (i / region_len).min(q.codebook_count() - 1);
            prop_assert!(usize::from(*idx) < q.codebooks()[region].len());
        }
    }
}
