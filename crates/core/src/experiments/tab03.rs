//! Table III — static and dynamic sparsity per network.
//!
//! SSS and SNS are measured from the pruning masks the pipeline
//! produces. DNS is measured by propagating sampled activations through
//! the materialized (synthetic-weight) layers: each layer's output
//! density is the fraction of sampled post-ReLU outputs that are
//! non-zero, and feeds the next layer's input distribution. Because the
//! synthetic weights are zero-mean, measured DNS sits near 50% — the
//! right order for the paper's 40–80% band (the exact values depend on
//! trained biases we cannot reproduce; Figs. 15–20 therefore use the
//! paper's published DNS as workload parameters instead, see
//! `crate::workload`).

use cs_nn::init::{self, ConvergenceProfile};
use cs_nn::spec::{LayerClass, Model, NetworkSpec, Scale};
use cs_sparsity::convergence::matrix_view;
use cs_sparsity::{stats, Mask};
use cs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cs_compress::config::ModelCompressionConfig;
use cs_compress::pipeline::prune_layer;

use crate::render_table;

/// Per-class sparsity triple (percentages, remaining/total).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassSparsity {
    /// Static synapse sparsity (%).
    pub sss: f64,
    /// Static neuron sparsity (%).
    pub sns: f64,
    /// Dynamic neuron sparsity (%).
    pub dns: f64,
    /// Number of layers aggregated.
    pub layers: usize,
}

/// One network's Table III row.
#[derive(Debug, Clone)]
pub struct ModelSparsity {
    /// The model.
    pub model: Model,
    /// Convolutional-layer aggregate (None when the model has none).
    pub conv: Option<ClassSparsity>,
    /// Fully-connected aggregate.
    pub fc: Option<ClassSparsity>,
    /// LSTM aggregate.
    pub lstm: Option<ClassSparsity>,
}

/// Result of the Table III experiment.
#[derive(Debug, Clone)]
pub struct Tab03Result {
    /// One row per model.
    pub rows: Vec<ModelSparsity>,
}

impl Tab03Result {
    /// Renders the table.
    pub fn render(&self) -> String {
        let header = ["model", "class", "SSS%", "SNS%", "DNS%"];
        let mut rows = Vec::new();
        for m in &self.rows {
            for (class, s) in [("C", m.conv), ("F", m.fc), ("L", m.lstm)] {
                if let Some(s) = s {
                    rows.push(vec![
                        m.model.to_string(),
                        class.to_string(),
                        format!("{:.2}", s.sss),
                        format!("{:.2}", s.sns),
                        format!("{:.2}", s.dns),
                    ]);
                }
            }
        }
        format!(
            "Table III: sparsity in NNs\n{}",
            render_table(&header, &rows)
        )
    }
}

fn half_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32).abs()
}

/// Measures the post-ReLU output density of one layer by sampling
/// `samples` output neurons against synthetic inputs of the given
/// density.
pub fn sample_layer_dns(
    weights: &Tensor,
    mask: &Mask,
    input_density: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let (rows, cols) = matrix_view(weights);
    let data = weights.as_slice();
    let bits = mask.bits();
    let mut rng = StdRng::seed_from_u64(seed);
    let input: Vec<f32> = (0..rows)
        .map(|_| {
            if rng.gen_bool(input_density.clamp(0.0, 1.0)) {
                half_normal(&mut rng)
            } else {
                0.0
            }
        })
        .collect();
    let mut positive = 0usize;
    let samples = samples.min(cols).max(1);
    for s in 0..samples {
        let o = (s * cols / samples).min(cols - 1);
        let mut acc = 0.0f32;
        for (i, x) in input.iter().enumerate() {
            if *x != 0.0 && bits[i * cols + o] {
                acc += data[i * cols + o] * x;
            }
        }
        if acc > 0.0 {
            positive += 1;
        }
    }
    positive as f64 / samples as f64
}

/// Runs the Table III measurement for all seven models.
pub fn run(scale: Scale, seed: u64) -> Tab03Result {
    let mut rows = Vec::new();
    for model in Model::all() {
        let spec = NetworkSpec::model(model, scale);
        let cfg = ModelCompressionConfig::paper(model);
        let mut agg: [ClassSparsity; 3] = Default::default();
        let mut prev_dns = 1.0f64;
        for layer in spec.weighted_layers() {
            let lc = cfg.for_layer(layer);
            let profile = ConvergenceProfile::with_target_density(lc.target_density);
            let weights = init::materialize(layer, &profile, seed);
            let mask = prune_layer(&weights, lc).expect("valid density");
            let dns = sample_layer_dns(&weights, &mask, prev_dns, 256, seed ^ 0xf00d);
            prev_dns = dns.max(0.05);
            let slot = match layer.class() {
                LayerClass::Convolutional => 0,
                LayerClass::FullyConnected => 1,
                _ => 2,
            };
            agg[slot].sss += 100.0 * stats::synapse_sparsity(&mask);
            agg[slot].sns += 100.0 * stats::static_neuron_sparsity(&mask);
            agg[slot].dns += 100.0 * dns;
            agg[slot].layers += 1;
        }
        let finish = |s: ClassSparsity| {
            if s.layers == 0 {
                None
            } else {
                Some(ClassSparsity {
                    sss: s.sss / s.layers as f64,
                    sns: s.sns / s.layers as f64,
                    dns: s.dns / s.layers as f64,
                    layers: s.layers,
                })
            }
        };
        rows.push(ModelSparsity {
            model,
            conv: finish(agg[0]),
            fc: finish(agg[1]),
            lstm: finish(agg[2]),
        });
    }
    Tab03Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_table_matches_targets_and_structure() {
        let r = run(Scale::Reduced(16), 3);
        assert_eq!(r.rows.len(), 7);
        let alexnet = r.rows.iter().find(|m| m.model == Model::AlexNet).unwrap();
        let conv = alexnet.conv.unwrap();
        // SSS close to the 35.25% target (within block granularity).
        assert!((conv.sss - 35.25).abs() < 8.0, "conv SSS {}", conv.sss);
        // Conv SNS stays high (essentially 100% at full scale; the
        // 16x-reduced test models lose a few whole input maps, and the
        // exact count shifts with the weight generator's stream).
        assert!(conv.sns > 60.0, "conv SNS {}", conv.sns);
        // DNS lands mid-band for ReLU layers.
        assert!((20.0..85.0).contains(&conv.dns), "conv DNS {}", conv.dns);
        // MLP has no conv layers.
        let mlp = r.rows.iter().find(|m| m.model == Model::Mlp).unwrap();
        assert!(mlp.conv.is_none());
        assert!(mlp.fc.is_some());
        assert!(r.render().contains("Table III"));
    }

    #[test]
    fn fc_sns_drops_at_aggressive_pruning() {
        let r = run(Scale::Reduced(16), 3);
        let vgg = r.rows.iter().find(|m| m.model == Model::Vgg16).unwrap();
        let fc = vgg.fc.unwrap();
        // 4.84% density leaves some input neurons dead.
        assert!(fc.sns < 100.0, "fc SNS {}", fc.sns);
    }
}
