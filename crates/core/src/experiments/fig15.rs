//! Figs. 15–17 — speedup over CPU, GPU, DianNao and Cambricon-X.
//!
//! Fig. 15 covers whole networks; Figs. 16 and 17 restrict to the
//! convolutional and fully-connected layers respectively (pass a class
//! filter to [`run`]).

use cs_accel::config::AccelConfig;
use cs_baselines::cpu_gpu::{self, PlatformModel};
use cs_baselines::{cambricon_x_layer, diannao_layer};
use cs_nn::spec::{LayerClass, Model, Scale};

use crate::render_table;
use crate::workload::{paper_workload, NetworkWorkload};

/// Platform identifiers in figure order.
pub const PLATFORMS: [&str; 8] = [
    "CPU-Caffe",
    "CPU-Sparse",
    "GPU-Caffe",
    "GPU-cuBLAS",
    "GPU-cuSparse",
    "DianNao",
    "Cambricon-X",
    "ACC-dense",
];

/// One network's timings.
#[derive(Debug, Clone)]
pub struct ModelSpeedup {
    /// The network.
    pub model: Model,
    /// Our (sparse) execution time in seconds.
    pub ours_seconds: f64,
    /// Baseline execution times in [`PLATFORMS`] order, seconds.
    pub baseline_seconds: [f64; 8],
}

impl ModelSpeedup {
    /// Speedups of ours over each baseline.
    pub fn speedups(&self) -> [f64; 8] {
        let mut out = [0.0; 8];
        for (o, b) in out.iter_mut().zip(&self.baseline_seconds) {
            *o = b / self.ours_seconds;
        }
        out
    }
}

/// Result of the speedup experiment.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// Which layer class was included (None = all, Fig. 15).
    pub class_filter: Option<LayerClass>,
    /// Per-network rows.
    pub rows: Vec<ModelSpeedup>,
}

impl Fig15Result {
    /// Geometric-mean speedup over each baseline.
    pub fn geomean(&self) -> [f64; 8] {
        let mut acc = [0.0f64; 8];
        for row in &self.rows {
            for (a, s) in acc.iter_mut().zip(row.speedups()) {
                *a += s.ln();
            }
        }
        let n = self.rows.len().max(1) as f64;
        acc.map(|v| (v / n).exp())
    }

    /// Renders the figure as a speedup table.
    pub fn render(&self) -> String {
        let fig = match self.class_filter {
            None => "Fig.15 overall",
            Some(LayerClass::Convolutional) => "Fig.16 convolutional layers",
            Some(LayerClass::FullyConnected) => "Fig.17 fully-connected layers",
            _ => "speedup",
        };
        let mut header = vec!["model"];
        header.extend(PLATFORMS);
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.model.to_string()];
                row.extend(r.speedups().iter().map(|s| format!("{s:.1}x")));
                row
            })
            .collect();
        let mut gm = vec!["geomean".to_string()];
        gm.extend(self.geomean().iter().map(|s| format!("{s:.1}x")));
        rows.push(gm);
        format!(
            "{fig}: speedup of Cambricon-S (sparse) over baselines\n{}",
            render_table(&header, &rows)
        )
    }
}

fn filtered(wl: &NetworkWorkload, filter: Option<LayerClass>) -> NetworkWorkload {
    match filter {
        None => wl.clone(),
        Some(class) => NetworkWorkload {
            model: wl.model,
            layers: wl
                .layers
                .iter()
                .filter(|l| l.class == class)
                .cloned()
                .collect(),
        },
    }
}

fn software_seconds(wl: &NetworkWorkload, platform: &PlatformModel) -> f64 {
    wl.layers
        .iter()
        .map(|l| platform.layer_seconds(&l.timing))
        .sum()
}

/// Runs the speedup comparison; `class_filter` selects Fig. 16/17.
pub fn run(class_filter: Option<LayerClass>) -> Fig15Result {
    let cfg = AccelConfig::paper_default();
    let ghz = cfg.freq_ghz * 1e9;
    let mut rows = Vec::new();
    for model in Model::all() {
        let wl = filtered(&paper_workload(model, Scale::Full), class_filter);
        if wl.layers.is_empty() {
            continue;
        }
        let ours: u64 = wl.run_ours(&cfg).iter().map(|r| r.stats.cycles).sum();
        let ours_seconds = ours as f64 / ghz;
        let acc_dense: u64 = wl.run_ours_dense(&cfg).iter().map(|r| r.stats.cycles).sum();
        let diannao: u64 = wl
            .layers
            .iter()
            .map(|l| diannao_layer(&l.timing).stats.cycles)
            .sum();
        let x: u64 = wl
            .layers
            .iter()
            .map(|l| cambricon_x_layer(&l.timing).stats.cycles)
            .sum();
        let baseline_seconds = [
            software_seconds(&wl, &cpu_gpu::cpu_caffe()),
            software_seconds(&wl, &cpu_gpu::cpu_sparse()),
            software_seconds(&wl, &cpu_gpu::gpu_caffe()),
            software_seconds(&wl, &cpu_gpu::gpu_cublas()),
            software_seconds(&wl, &cpu_gpu::gpu_cusparse()),
            diannao as f64 / ghz,
            x as f64 / ghz,
            acc_dense as f64 / ghz,
        ];
        rows.push(ModelSpeedup {
            model,
            ours_seconds,
            baseline_seconds,
        });
    }
    Fig15Result { class_filter, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_speedups_have_paper_shape() {
        let r = run(None);
        assert_eq!(r.rows.len(), 7);
        let gm = r.geomean();
        // Paper headline factors: CPU-Sparse 331x, GPU-cuSparse 19.3x,
        // DianNao 13.1x, Cambricon-X 1.71x, ACC-dense 4.32x. Shapes: each
        // baseline slower than ours, with the right ordering.
        let [cpu, cpu_sp, gpu, cublas, cusparse, diannao, x, dense] = gm;
        assert!(cpu_sp > cpu, "sparse CPU slower than dense CPU");
        assert!(cpu > gpu, "GPU faster than CPU");
        assert!(gpu > 1.0 && cublas > 1.0 && cusparse > 1.0);
        assert!((4.0..40.0).contains(&diannao), "DianNao geomean {diannao}");
        assert!((1.1..4.0).contains(&x), "Cambricon-X geomean {x}");
        assert!((1.5..10.0).contains(&dense), "ACC-dense geomean {dense}");
        assert!(diannao > x, "DianNao slower than Cambricon-X");
        assert!(r.render().contains("Fig.15"));
    }

    #[test]
    fn conv_and_fc_figures_filter_layers() {
        let conv = run(Some(LayerClass::Convolutional));
        // MLP and LSTM have no conv layers.
        assert_eq!(conv.rows.len(), 5);
        let fc = run(Some(LayerClass::FullyConnected));
        assert!(fc.rows.len() >= 5);
        assert!(conv.render().contains("Fig.16"));
        assert!(fc.render().contains("Fig.17"));
    }

    #[test]
    fn fc_speedup_over_x_exceeds_conv_speedup_over_x() {
        // Paper: 2.15x (FC) vs 1.66x (conv) over Cambricon-X thanks to
        // quantization + index sharing in memory-bound FC layers.
        let conv = run(Some(LayerClass::Convolutional)).geomean()[6];
        let fc = run(Some(LayerClass::FullyConnected)).geomean()[6];
        assert!(fc > conv, "fc {fc} vs conv {conv}");
    }
}
