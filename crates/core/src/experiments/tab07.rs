//! Table VII — FC-layer latency against EIE.
//!
//! Both accelerators are granted all-synapses-on-chip (EIE's design
//! point); the comparison is pure computation time on the six big FC
//! layers of AlexNet and VGG16.

use cs_accel::config::AccelConfig;
use cs_accel::timing::LayerTiming;
use cs_baselines::eie::{self, EieModel};

use crate::render_table;

/// One layer's comparison.
#[derive(Debug, Clone)]
pub struct EieRow {
    /// Layer label (e.g. `alexnet/fc6`).
    pub layer: String,
    /// EIE latency in µs (published).
    pub eie_us: f64,
    /// EIE latency in µs (our analytic model, sanity reference).
    pub eie_model_us: f64,
    /// Our accelerator's latency in µs.
    pub ours_us: f64,
}

/// Result of the Table VII experiment.
#[derive(Debug, Clone)]
pub struct Tab07Result {
    /// Six FC layers.
    pub rows: Vec<EieRow>,
}

impl Tab07Result {
    /// Geometric-mean speedup over published EIE latencies.
    pub fn geomean_speedup(&self) -> f64 {
        let s: f64 = self.rows.iter().map(|r| (r.eie_us / r.ours_us).ln()).sum();
        (s / self.rows.len().max(1) as f64).exp()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let header = ["layer", "EIE(us)", "EIE-model(us)", "ACC(us)", "speedup"];
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.layer.clone(),
                    format!("{:.2}", r.eie_us),
                    format!("{:.2}", r.eie_model_us),
                    format!("{:.2}", r.ours_us),
                    format!("{:.2}x", r.eie_us / r.ours_us),
                ]
            })
            .collect();
        rows.push(vec![
            "geomean".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.2}x", self.geomean_speedup()),
        ]);
        format!(
            "Table VII: FC-layer latency vs EIE (all synapses on-chip)\n{}",
            render_table(&header, &rows)
        )
    }
}

/// The six FC layers with the paper's sparsities: (label, n_in, n_out,
/// static density, dynamic density).
pub fn layers() -> Vec<(String, LayerTiming)> {
    let cases = [
        ("alexnet/fc6", 9216usize, 4096usize, 0.1007, 0.6073),
        ("alexnet/fc7", 4096, 4096, 0.1007, 0.6073),
        ("alexnet/fc8", 4096, 1000, 0.1007, 0.6073),
        ("vgg16/fc6", 25088, 4096, 0.0484, 0.5697),
        ("vgg16/fc7", 4096, 4096, 0.0484, 0.5697),
        ("vgg16/fc8", 4096, 1000, 0.0484, 0.5697),
    ];
    cases
        .into_iter()
        .map(|(label, n_in, n_out, sd, dd)| {
            (label.to_string(), LayerTiming::fc(n_in, n_out, sd, dd, 4))
        })
        .collect()
}

/// Runs the Table VII comparison.
pub fn run() -> Tab07Result {
    let cfg = AccelConfig::paper_default();
    let eie_model = EieModel::paper_default();
    let rows = layers()
        .into_iter()
        .map(|(label, timing)| {
            let eie_us = eie::PAPER_LATENCIES
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, v)| *v)
                .expect("published latency exists");
            EieRow {
                layer: label,
                eie_us,
                eie_model_us: eie_model.fc_micros(&timing),
                ours_us: eie::our_fc_micros(&cfg, &timing),
            }
        })
        .collect();
    Tab07Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn we_beat_eie_on_every_layer() {
        let r = run();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(
                row.ours_us < row.eie_us,
                "{}: ours {} vs EIE {}",
                row.layer,
                row.ours_us,
                row.eie_us
            );
        }
        // Paper geomean: 1.65x. Accept the same order of magnitude.
        let gm = r.geomean_speedup();
        assert!((1.2..6.0).contains(&gm), "geomean {gm}");
        assert!(r.render().contains("Table VII"));
    }

    #[test]
    fn eie_model_tracks_published_latencies() {
        let r = run();
        for row in &r.rows {
            let ratio = row.eie_model_us / row.eie_us;
            assert!(
                (0.1..10.0).contains(&ratio),
                "{}: model {} vs published {}",
                row.layer,
                row.eie_model_us,
                row.eie_us
            );
        }
    }
}
