//! Table V — comparison against Deep Compression and CNNpack.
//!
//! The Deep Compression and CNNpack columns are published constants (we
//! cannot re-run those systems); our column is computed by the pipeline.
//! Accuracy deltas for the large ImageNet models require trained
//! reference models and are reported as published; the small trainable
//! models' accuracy behaviour is covered end-to-end by the Fig. 8
//! experiment.

use cs_nn::spec::{Model, Scale};

use crate::experiments::tab04;
use crate::render_table;

/// Published baselines for one model (from the paper's Table V).
#[derive(Debug, Clone, Copy)]
pub struct PublishedRow {
    /// Model.
    pub model: Model,
    /// Reference top-1 error (%).
    pub ref_top1_err: f64,
    /// Deep Compression sparsity (%).
    pub dc_sparsity: f64,
    /// Deep Compression ratio.
    pub dc_ratio: f64,
    /// CNNpack ratio (None when not reported).
    pub cnnpack_ratio: Option<f64>,
    /// Paper's (Cambricon-S) sparsity (%).
    pub paper_sparsity: f64,
    /// Paper's compression ratio.
    pub paper_ratio: f64,
    /// Paper's top-1 error after compression (%).
    pub paper_top1_err: f64,
}

/// The paper's Table V constants.
pub fn published() -> Vec<PublishedRow> {
    vec![
        PublishedRow {
            model: Model::AlexNet,
            ref_top1_err: 42.78,
            dc_sparsity: 11.15,
            dc_ratio: 35.0,
            cnnpack_ratio: Some(39.0),
            paper_sparsity: 11.03,
            paper_ratio: 79.0,
            paper_top1_err: 42.72,
        },
        PublishedRow {
            model: Model::Vgg16,
            ref_top1_err: 31.50,
            dc_sparsity: 7.61,
            dc_ratio: 49.0,
            cnnpack_ratio: Some(46.0),
            paper_sparsity: 8.07,
            paper_ratio: 98.0,
            paper_top1_err: 31.33,
        },
        PublishedRow {
            model: Model::LeNet5,
            ref_top1_err: 0.80,
            dc_sparsity: 8.43,
            dc_ratio: 39.0,
            cnnpack_ratio: None,
            paper_sparsity: 8.60,
            paper_ratio: 82.0,
            paper_top1_err: 0.95,
        },
        PublishedRow {
            model: Model::Mlp,
            ref_top1_err: 1.64,
            dc_sparsity: 8.18,
            dc_ratio: 40.0,
            cnnpack_ratio: None,
            paper_sparsity: 9.87,
            paper_ratio: 82.0,
            paper_top1_err: 1.91,
        },
        PublishedRow {
            model: Model::Cifar10Quick,
            ref_top1_err: 24.20,
            dc_sparsity: 5.02,
            dc_ratio: 45.0,
            cnnpack_ratio: None,
            paper_sparsity: 7.07,
            paper_ratio: 69.0,
            paper_top1_err: 24.22,
        },
        PublishedRow {
            model: Model::ResNet152,
            ref_top1_err: 25.00,
            dc_sparsity: 55.00,
            dc_ratio: 8.0,
            cnnpack_ratio: None,
            paper_sparsity: 55.83,
            paper_ratio: 10.0,
            paper_top1_err: 25.05,
        },
        PublishedRow {
            model: Model::Lstm,
            ref_top1_err: 20.23,
            dc_sparsity: 11.53,
            dc_ratio: 35.0,
            cnnpack_ratio: None,
            paper_sparsity: 12.56,
            paper_ratio: 77.0,
            paper_top1_err: 20.72,
        },
    ]
}

/// Result of the Table V experiment.
#[derive(Debug, Clone)]
pub struct Tab05Result {
    /// Published baseline/paper values.
    pub published: Vec<PublishedRow>,
    /// Our measured compression ratios, in the same model order.
    pub measured_ratio: Vec<f64>,
}

impl Tab05Result {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let header = [
            "model",
            "DeepCmp r_c",
            "CNNpack r_c",
            "paper r_c",
            "ours r_c",
            "ours/DeepCmp",
        ];
        let rows: Vec<Vec<String>> = self
            .published
            .iter()
            .zip(&self.measured_ratio)
            .map(|(p, m)| {
                vec![
                    p.model.to_string(),
                    format!("{:.0}x", p.dc_ratio),
                    p.cnnpack_ratio
                        .map(|r| format!("{r:.0}x"))
                        .unwrap_or_else(|| "-".into()),
                    format!("{:.0}x", p.paper_ratio),
                    format!("{m:.0}x"),
                    format!("{:.2}x", m / p.dc_ratio),
                ]
            })
            .collect();
        format!(
            "Table V: compression comparison (baseline columns are published values)\n{}",
            render_table(&header, &rows)
        )
    }
}

/// Runs the experiment (measures our ratios, pairs with constants).
///
/// # Errors
///
/// Propagates compression failures.
pub fn run(scale: Scale, seed: u64) -> Result<Tab05Result, cs_compress::CompressError> {
    let tab4 = tab04::run(scale, seed)?;
    let published = published();
    let measured_ratio = published
        .iter()
        .map(|p| {
            tab4.reports
                .iter()
                .find(|r| r.model == p.model)
                .map(|r| r.overall_ratio())
                .unwrap_or(0.0)
        })
        .collect();
    Ok(Tab05Result {
        published,
        measured_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_ratios_beat_deep_compression_on_big_fc_nets() {
        let r = run(Scale::Reduced(8), 5).unwrap();
        for (p, m) in r.published.iter().zip(&r.measured_ratio) {
            if matches!(p.model, Model::AlexNet | Model::Vgg16) {
                assert!(
                    *m > p.dc_ratio,
                    "{}: ours {m:.0} vs DC {}",
                    p.model,
                    p.dc_ratio
                );
            }
        }
        assert!(r.render().contains("Table V"));
    }

    #[test]
    fn published_constants_are_complete() {
        assert_eq!(published().len(), 7);
    }
}
