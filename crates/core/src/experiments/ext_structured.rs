//! Extension — accuracy vs. density across sparsity patterns.
//!
//! The paper prunes coarse blocks only; ROADMAP item 3 adds the two
//! hardware-native structured patterns (2:4 semi-structured and
//! bank-balanced). This experiment asks what those patterns *cost in
//! accuracy* at matched density: the same trained CNN is pruned under
//! each pattern, fine-tuned with mask-preserving SGD, and re-evaluated.
//! Coarse pruning picks the globally best blocks for a density target;
//! 2:4 and bank-balanced must keep survivors evenly spread across
//! every input group, so they trade selection freedom for the
//! branch-free kernels benchmarked in `exp_kernels`.
//!
//! Only the FC layers are pattern-pruned (the structured formats and
//! kernels are FC-side); conv layers stay dense so the comparison
//! isolates the pattern effect.

use cs_nn::data::{self, Dataset};
use cs_nn::network::{LayerKind, Network};
use cs_nn::train::{accuracy, LayerMasks, TrainConfig, Trainer};
use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
use cs_sparsity::{structured, PruneMode};
use cs_tensor::TensorError;

use crate::render_table;

/// How the FC layers of one experiment arm are pruned.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternArm {
    /// Coarse 4x4 block pruning to the given density (the baseline the
    /// structured patterns are judged against).
    Coarse(f64),
    /// A structured pattern; its density is fixed by the pattern.
    Structured(PruneMode),
}

impl PatternArm {
    /// Human-readable arm label.
    pub fn label(&self) -> String {
        match self {
            PatternArm::Coarse(d) => format!("coarse@{:.2}", d),
            PatternArm::Structured(PruneMode::BankBalanced { bank, k }) => {
                format!("bank{bank}:{k}")
            }
            PatternArm::Structured(m) => m.name().to_string(),
        }
    }
}

/// One pattern's data point.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternPoint {
    /// Arm label (`coarse@0.50`, `two_four`, `bank16:8`, ...).
    pub label: String,
    /// Exact FC density actually kept (counted from the masks).
    pub density: f64,
    /// Accuracy after pruning + mask-preserving fine-tuning.
    pub accuracy: f64,
}

/// Result of the structured-pattern accuracy experiment.
#[derive(Debug, Clone)]
pub struct ExtStructuredResult {
    /// Accuracy of the unpruned trained model.
    pub base_accuracy: f64,
    /// One point per arm, in the order run.
    pub points: Vec<PatternPoint>,
}

impl ExtStructuredResult {
    /// Renders the pattern/density/accuracy table.
    pub fn render(&self) -> String {
        let header = ["pattern", "fc density%", "accuracy", "delta vs base"];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.2}", 100.0 * p.density),
                    format!("{:.3}", p.accuracy),
                    format!("{:+.3}", p.accuracy - self.base_accuracy),
                ]
            })
            .collect();
        format!(
            "Ext: accuracy vs density across sparsity patterns (base accuracy {:.3})\n{}",
            self.base_accuracy,
            render_table(&header, &rows)
        )
    }
}

/// Experiment parameters (shrink for smoke tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtStructuredParams {
    /// Training-set size.
    pub samples: usize,
    /// Image side (single channel).
    pub image_side: usize,
    /// Classes.
    pub classes: usize,
    /// Base-training epochs.
    pub train_epochs: usize,
    /// Fine-tuning epochs after each pruning.
    pub finetune_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExtStructuredParams {
    /// Full-size run (minutes in release builds).
    pub fn full() -> Self {
        ExtStructuredParams {
            samples: 240,
            image_side: 12,
            classes: 4,
            train_epochs: 15,
            finetune_epochs: 8,
            seed: 11,
        }
    }

    /// Tiny smoke-test configuration.
    pub fn smoke() -> Self {
        ExtStructuredParams {
            samples: 48,
            image_side: 8,
            classes: 2,
            train_epochs: 5,
            finetune_epochs: 2,
            seed: 11,
        }
    }
}

/// The arms every run compares: each structured pattern next to a
/// coarse baseline at the same density (2:4 and bank 16:8 both keep
/// 50%; bank 16:4 keeps 25%).
pub fn arms() -> Vec<PatternArm> {
    vec![
        PatternArm::Coarse(0.50),
        PatternArm::Structured(PruneMode::TwoFour),
        PatternArm::Structured(PruneMode::BankBalanced { bank: 16, k: 8 }),
        PatternArm::Coarse(0.25),
        PatternArm::Structured(PruneMode::BankBalanced { bank: 16, k: 4 }),
    ]
}

/// Prunes the FC layers under one arm; returns the per-layer masks and
/// the exact FC density kept.
fn prune_fc(net: &mut Network, arm: &PatternArm) -> Result<(LayerMasks, f64), TensorError> {
    let mut masks: LayerMasks = Vec::with_capacity(net.layers().len());
    let (mut kept, mut total) = (0usize, 0usize);
    for layer in net.layers_mut() {
        let is_fc = matches!(layer.kind, LayerKind::FullyConnected { .. });
        match (is_fc, layer.weights_mut()) {
            (true, Some(w)) => {
                let mask = match arm {
                    PatternArm::Coarse(d) => coarse::prune_to_density(
                        w,
                        &CoarseConfig::fc(4, 4, PruneMetric::Average),
                        *d,
                    )?,
                    PatternArm::Structured(mode) => structured::structured_mask(w, mode)?,
                };
                mask.apply(w);
                kept += mask.bits().iter().filter(|b| **b).count();
                total += mask.bits().len();
                masks.push(Some(mask.bits().to_vec()));
            }
            _ => masks.push(None),
        }
    }
    let density = if total == 0 {
        0.0
    } else {
        kept as f64 / total as f64
    };
    Ok((masks, density))
}

fn finetune(
    net: &mut Network,
    data: &Dataset,
    masks: &LayerMasks,
    epochs: usize,
) -> Result<(), TensorError> {
    let mut tr = Trainer::new(
        net,
        TrainConfig {
            lr: 0.02,
            ..TrainConfig::default()
        },
    );
    for _ in 0..epochs {
        tr.epoch(net, data, Some(masks))?;
    }
    Ok(())
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates training/shape errors.
pub fn run(p: &ExtStructuredParams) -> Result<ExtStructuredResult, TensorError> {
    let ds = data::images(
        p.samples,
        (1, p.image_side, p.image_side),
        p.classes,
        0.25,
        p.seed,
    );
    let mut base = Network::small_cnn("ext-s", (1, p.image_side, p.image_side), p.classes, p.seed);
    let mut tr = Trainer::new(
        &base,
        TrainConfig {
            lr: 0.05,
            ..TrainConfig::default()
        },
    );
    for _ in 0..p.train_epochs {
        tr.epoch(&mut base, &ds, None)?;
    }
    let base_accuracy = accuracy(&base, &ds)?;

    let mut points = Vec::new();
    for arm in arms() {
        let mut net = base.clone();
        let (masks, density) = prune_fc(&mut net, &arm)?;
        finetune(&mut net, &ds, &masks, p.finetune_epochs)?;
        points.push(PatternPoint {
            label: arm.label(),
            density,
            accuracy: accuracy(&net, &ds)?,
        });
    }
    Ok(ExtStructuredResult {
        base_accuracy,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_exact_pattern_densities() {
        let r = run(&ExtStructuredParams::smoke()).unwrap();
        assert!(r.base_accuracy > 0.6, "base {}", r.base_accuracy);
        assert_eq!(r.points.len(), arms().len());
        for p in &r.points {
            assert!((0.0..=1.0).contains(&p.accuracy), "{p:?}");
        }
        // The smoke CNN's FC widths divide evenly by 4 and 16, so the
        // structured arms keep *exactly* their pattern density.
        let by_label = |l: &str| {
            r.points
                .iter()
                .find(|p| p.label == l)
                .unwrap_or_else(|| panic!("missing arm {l}"))
        };
        assert_eq!(by_label("two_four").density, 0.5);
        assert_eq!(by_label("bank16:8").density, 0.5);
        assert_eq!(by_label("bank16:4").density, 0.25);
        assert!(r.render().contains("accuracy vs density"));
    }
}
