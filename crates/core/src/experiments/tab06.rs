//! Table VI — hardware characteristics (area/power breakdown).

use cs_energy::model::{
    cambricon_s_modules, indexing_modules_s, total_area_mm2, total_power_mw, Platform,
};

use crate::render_table;

/// Result of the Table VI experiment.
#[derive(Debug, Clone)]
pub struct Tab06Result {
    /// Total area in mm².
    pub total_area: f64,
    /// Total power in mW.
    pub total_power: f64,
    /// Per-module rows: (name, area, area %, power, power %).
    pub modules: Vec<(String, f64, f64, f64, f64)>,
    /// Area of the sparsity components (NSM + SSM + WDM + SIB).
    pub sparsity_area: f64,
    /// Power of the sparsity components.
    pub sparsity_power: f64,
}

impl Tab06Result {
    /// Renders Table VI.
    pub fn render(&self) -> String {
        let header = ["module", "area(mm2)", "area%", "power(mW)", "power%"];
        let mut rows = vec![vec![
            "Total".to_string(),
            format!("{:.2}", self.total_area),
            "100.00".to_string(),
            format!("{:.2}", self.total_power),
            "100.00".to_string(),
        ]];
        for (n, a, ap, p, pp) in &self.modules {
            rows.push(vec![
                n.clone(),
                format!("{a:.2}"),
                format!("{ap:.2}"),
                format!("{p:.2}"),
                format!("{pp:.2}"),
            ]);
        }
        format!(
            "Table VI: hardware characteristics (TSMC 65nm, 1 GHz, 512 GOP/s)\n{}\n\
             sparsity components: {:.2} mm2 ({:.1}% of area), {:.2} mW ({:.1}% of power)\n\
             indexing (NSM+SSM) vs Cambricon-X IM: {:.2}x area, {:.2}x power saving",
            render_table(&header, &rows),
            self.sparsity_area,
            100.0 * self.sparsity_area / self.total_area,
            self.sparsity_power,
            100.0 * self.sparsity_power / self.total_power,
            1.98 / indexing_modules_s().area_mm2,
            332.62 / indexing_modules_s().power_mw,
        )
    }
}

/// Builds the table from the model constants.
pub fn run() -> Tab06Result {
    let total_area = total_area_mm2(Platform::CambriconS);
    let total_power = total_power_mw(Platform::CambriconS);
    let mods = cambricon_s_modules();
    let modules = mods
        .iter()
        .map(|m| {
            (
                m.name.to_string(),
                m.area_mm2,
                100.0 * m.area_mm2 / total_area,
                m.power_mw,
                100.0 * m.power_mw / total_power,
            )
        })
        .collect();
    let spars = |name: &str| mods.iter().find(|m| m.name == name).unwrap();
    let sparsity_area = spars("NSM").area_mm2
        + spars("SSM").area_mm2
        + spars("WDM").area_mm2
        + spars("SIB").area_mm2;
    let sparsity_power = spars("NSM").power_mw
        + spars("SSM").power_mw
        + spars("WDM").power_mw
        + spars("SIB").power_mw;
    Tab06Result {
        total_area,
        total_power,
        modules,
        sparsity_area,
        sparsity_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_sparsity_share_match_paper() {
        let r = run();
        assert!((r.total_area - 6.73).abs() < 1e-9);
        assert!((r.total_power - 798.55).abs() < 1e-9);
        // Paper: sparsity components are 2.48-2.53 mm2 (~37%) and
        // ~195-201 mW (~25%).
        assert!((r.sparsity_area - 2.53).abs() < 0.1, "{}", r.sparsity_area);
        assert!(
            (r.sparsity_power - 201.4).abs() < 10.0,
            "{}",
            r.sparsity_power
        );
        assert!(r.render().contains("Table VI"));
    }
}
