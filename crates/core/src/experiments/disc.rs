//! Discussion-section ablations: entropy decoding on-chip, shared vs.
//! distributed NSM/SIB, the fixed-alias WDM, and the index-traffic
//! reduction from coarse-grained sparsity.

use cs_accel::config::AccelConfig;
use cs_baselines::cambricon_x_layer;
use cs_energy::ablation;
use cs_energy::model::{total_area_mm2, total_power_mw, Platform};
use cs_nn::spec::{Model, Scale};

use crate::workload::paper_workload;

/// Result of the ablation study.
#[derive(Debug, Clone)]
pub struct DiscResult {
    /// Entropy-decoder alternative: extra area (mm²) and power (mW).
    pub entropy_area_mm2: f64,
    /// Extra power for on-chip entropy decoding.
    pub entropy_power_mw: f64,
    /// Area factor of the chip with entropy decoding.
    pub entropy_area_factor: f64,
    /// Power factor of the chip with entropy decoding.
    pub entropy_power_factor: f64,
    /// FC speedup entropy decoding would buy (paper: 1.18×).
    pub entropy_fc_speedup: f64,
    /// Distributed-NSM alternative cost.
    pub distributed_nsm_area: f64,
    /// Distributed-NSM alternative power.
    pub distributed_nsm_power: f64,
    /// Distributed-SIB extra SRAM in KB.
    pub distributed_sib_kb: f64,
    /// Flexible-WDM extra area.
    pub flexible_wdm_area: f64,
    /// Index-byte reduction of ours vs Cambricon-X's fine-grained
    /// indexes, geomean over the seven networks (paper: 26.83×).
    pub index_reduction: f64,
}

impl DiscResult {
    /// Renders the study.
    pub fn render(&self) -> String {
        format!(
            "Discussion ablations\n\
             --------------------\n\
             entropy decoding on-chip: +{:.2} mm2, +{:.1} mW ({:.2}x area, {:.2}x power)\n\
             \x20 for only {:.2}x FC speedup and none in conv -> rejected\n\
             distributed NSMs (16x): +{:.2} mm2, +{:.1} mW -> shared NSM wins\n\
             distributed SIBs: +{:.0} KB SRAM -> shared SIB wins\n\
             flexible any-bit WDM: +{:.2} mm2 -> 4-bit-aliased WDM wins\n\
             synapse-index DRAM traffic vs fine-grained (Cambricon-X): {:.1}x smaller",
            self.entropy_area_mm2,
            self.entropy_power_mw,
            self.entropy_area_factor,
            self.entropy_power_factor,
            self.entropy_fc_speedup,
            self.distributed_nsm_area,
            self.distributed_nsm_power,
            self.distributed_sib_kb,
            self.flexible_wdm_area,
            self.index_reduction,
        )
    }
}

/// Runs all ablations.
pub fn run() -> DiscResult {
    let cfg = AccelConfig::paper_default();
    let ent = ablation::entropy_decoders(cfg.tn, cfg.tm);
    let area = total_area_mm2(Platform::CambriconS);
    let power = total_power_mw(Platform::CambriconS);
    let nsm = ablation::distributed_nsm();
    let sib = ablation::distributed_sib();
    let wdm = ablation::flexible_wdm();

    // Index traffic: ours (shared block indexes) vs Cambricon-X
    // (fine-grained per-synapse indexes), over all networks.
    let mut ln_sum = 0.0;
    let mut n = 0usize;
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        let ours: u64 = wl
            .layers
            .iter()
            .map(|l| {
                let groups = l.timing.n_out.div_ceil(cfg.tn) as u64;
                (groups * l.timing.n_in as u64).div_ceil(8)
            })
            .sum();
        let x: u64 = wl
            .layers
            .iter()
            .map(|l| {
                let run = cambricon_x_layer(&l.timing);
                // Isolate the index component of X's reads.
                ((l.timing.n_in * l.timing.n_out) as u64)
                    .div_ceil(8)
                    .min(run.stats.dram_read_bytes)
            })
            .sum();
        ln_sum += (x as f64 / ours as f64).ln();
        n += 1;
    }
    DiscResult {
        entropy_area_mm2: ent.area_mm2,
        entropy_power_mw: ent.power_mw,
        entropy_area_factor: (area + ent.area_mm2) / area,
        entropy_power_factor: (power + ent.power_mw) / power,
        entropy_fc_speedup: ablation::entropy_decoding_fc_speedup(),
        distributed_nsm_area: nsm.area_mm2,
        distributed_nsm_power: nsm.power_mw,
        distributed_sib_kb: sib.sram_kb,
        flexible_wdm_area: wdm.area_mm2,
        index_reduction: (ln_sum / n.max(1) as f64).exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_numbers_match_paper() {
        let r = run();
        assert!((r.entropy_area_mm2 - 6.94).abs() < 0.05);
        assert!((r.entropy_area_factor - 2.03).abs() < 0.02);
        assert!((r.entropy_power_factor - 2.22).abs() < 0.02);
        assert!((r.distributed_nsm_area - 10.35).abs() < 0.01);
        assert_eq!(r.distributed_sib_kb, 15.0);
        // Shared block indexes are ~16x smaller (group size) than
        // per-synapse indexes; the paper reports 26.83x including
        // entropy coding.
        assert!(r.index_reduction > 8.0, "{}", r.index_reduction);
        assert!(r.render().contains("ablations"));
    }
}
