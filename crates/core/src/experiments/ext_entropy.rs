//! Extension experiment: Huffman vs. adaptive arithmetic coding in the
//! entropy stage.
//!
//! The paper names both coders (Section III-C) but only builds Huffman.
//! This extension runs the full pipeline with each coder over all seven
//! networks, quantifying what the alternative would have bought.

use cs_compress::config::{EntropyCoder, ModelCompressionConfig};
use cs_compress::pipeline::compress_model;
use cs_nn::spec::{Model, NetworkSpec, Scale};

use crate::render_table;

/// One network's coder comparison.
#[derive(Debug, Clone)]
pub struct EntropyRow {
    /// The model.
    pub model: Model,
    /// `W_c` bytes with Huffman coding.
    pub huffman_wc: usize,
    /// `W_c` bytes with arithmetic coding.
    pub arith_wc: usize,
    /// Overall ratio with Huffman.
    pub huffman_rc: f64,
    /// Overall ratio with arithmetic coding.
    pub arith_rc: f64,
}

/// Result of the coder comparison.
#[derive(Debug, Clone)]
pub struct ExtEntropyResult {
    /// One row per model.
    pub rows: Vec<EntropyRow>,
}

impl ExtEntropyResult {
    /// Mean size advantage of arithmetic over Huffman (1.0 = parity).
    pub fn mean_advantage(&self) -> f64 {
        let s: f64 = self
            .rows
            .iter()
            .map(|r| r.huffman_wc as f64 / r.arith_wc.max(1) as f64)
            .sum();
        s / self.rows.len().max(1) as f64
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let header = [
            "model",
            "huffman Wc",
            "arith Wc",
            "huffman r_c",
            "arith r_c",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.model.to_string(),
                    format!("{:.1}K", r.huffman_wc as f64 / 1e3),
                    format!("{:.1}K", r.arith_wc as f64 / 1e3),
                    format!("{:.0}x", r.huffman_rc),
                    format!("{:.0}x", r.arith_rc),
                ]
            })
            .collect();
        format!(
            "Extension: entropy-coder comparison (mean arith advantage {:.3}x)\n{}",
            self.mean_advantage(),
            render_table(&header, &rows)
        )
    }
}

fn with_coder(mut cfg: ModelCompressionConfig, coder: EntropyCoder) -> ModelCompressionConfig {
    cfg.conv.entropy = coder;
    cfg.fc.entropy = coder;
    cfg.lstm.entropy = coder;
    for (_, c) in &mut cfg.overrides {
        c.entropy = coder;
    }
    cfg
}

/// Runs the comparison for all seven networks.
///
/// # Errors
///
/// Propagates compression failures.
pub fn run(scale: Scale, seed: u64) -> Result<ExtEntropyResult, cs_compress::CompressError> {
    let mut rows = Vec::new();
    for model in Model::all() {
        let spec = NetworkSpec::model(model, scale);
        let huff = compress_model(
            &spec,
            &with_coder(ModelCompressionConfig::paper(model), EntropyCoder::Huffman),
            seed,
        )?;
        let arith = compress_model(
            &spec,
            &with_coder(
                ModelCompressionConfig::paper(model),
                EntropyCoder::Arithmetic,
            ),
            seed,
        )?;
        rows.push(EntropyRow {
            model,
            huffman_wc: huff.wc_bytes(),
            arith_wc: arith.wc_bytes(),
            huffman_rc: huff.overall_ratio(),
            arith_rc: arith.overall_ratio(),
        });
    }
    Ok(ExtEntropyResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coders_are_within_a_few_percent_of_each_other() {
        let r = run(Scale::Reduced(16), 5).unwrap();
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            let ratio = row.huffman_wc as f64 / row.arith_wc.max(1) as f64;
            assert!(
                (0.7..1.5).contains(&ratio),
                "{}: huffman {} vs arith {}",
                row.model,
                row.huffman_wc,
                row.arith_wc
            );
        }
        assert!(r.render().contains("entropy-coder"));
    }
}
