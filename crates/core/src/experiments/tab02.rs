//! Table II — AlexNet compression vs. pruning block size `N`.
//!
//! The paper retrains AlexNet at every block size, accepting whatever
//! sparsity keeps top-1 accuracy at 42.8%: larger blocks force a *denser*
//! network to stay accurate. That accuracy-driven density schedule is an
//! input here (interpolated from Table II's readable anchors: at `N = 16`
//! conv keeps 35.25% / FC 10.05%, while `r_c` falls from 79× back to 65×
//! by `N = 64`); the pipeline then computes the resulting weight/index
//! sizes and compression ratio for each `N`.

use cs_compress::config::{EntropyCoder, LayerCompressionConfig, ModelCompressionConfig};
use cs_compress::gate::GatePolicy;
use cs_compress::pipeline::{compress_model, ModelReport};
use cs_nn::spec::{LayerClass, Model, NetworkSpec, Scale};
use cs_sparsity::coarse::{CoarseConfig, PruneMetric};
use cs_sparsity::PruneMode;

use crate::render_table;

/// One block-size data point.
#[derive(Debug, Clone)]
pub struct BlockSizePoint {
    /// Block size `N` (conv blocks `(1, N, 1, 1)`, FC blocks `(N, N)`).
    pub n: usize,
    /// Conv density required to hold accuracy.
    pub conv_density: f64,
    /// FC density required to hold accuracy.
    pub fc_density: f64,
    /// Full compression report at this block size.
    pub report: ModelReport,
}

/// Result of the Table II sweep.
#[derive(Debug, Clone)]
pub struct Tab02Result {
    /// Data points in increasing `N`.
    pub points: Vec<BlockSizePoint>,
}

impl Tab02Result {
    /// Renders the Table II rows.
    pub fn render(&self) -> String {
        let header = ["N", "C:W%", "F:W%", "W(MB)", "I(KB)", "r_p", "r_q", "r_c"];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.n.to_string(),
                    format!("{:.2}", 100.0 * p.conv_density),
                    format!("{:.2}", 100.0 * p.fc_density),
                    format!("{:.2}", p.report.wc_bytes() as f64 / 1e6),
                    format!("{:.2}", p.report.ic_bytes() as f64 / 1e3),
                    format!("{:.0}x", p.report.pruning_ratio()),
                    format!("{:.0}x", p.report.quantized_ratio()),
                    format!("{:.0}x", p.report.overall_ratio()),
                ]
            })
            .collect();
        format!(
            "Table II: AlexNet compression vs pruning block size\n{}",
            render_table(&header, &rows)
        )
    }

    /// The block size with the best overall ratio (the paper picks 16).
    pub fn best_n(&self) -> usize {
        self.points
            .iter()
            .max_by(|a, b| {
                a.report
                    .overall_ratio()
                    .partial_cmp(&b.report.overall_ratio())
                    .expect("finite ratios")
            })
            .map(|p| p.n)
            .unwrap_or(16)
    }
}

/// Accuracy-preserving densities per block size (see module docs).
pub fn density_schedule(n: usize) -> (f64, f64) {
    // (conv density, fc density); anchored at N=16 -> (0.3525, 0.1005),
    // tightening slightly for small blocks and loosening fast past 16.
    match n {
        0..=1 => (0.330, 0.0920),
        2 => (0.335, 0.0935),
        4 => (0.340, 0.0955),
        8 => (0.346, 0.0980),
        16 => (0.3525, 0.1005),
        32 => (0.400, 0.1300),
        _ => (0.480, 0.2100),
    }
}

/// Runs the sweep over `N ∈ {1, 2, 4, 8, 16, 32, 64}`.
///
/// # Errors
///
/// Propagates compression-pipeline failures.
pub fn run(scale: Scale, seed: u64) -> Result<Tab02Result, cs_compress::CompressError> {
    let spec = NetworkSpec::model(Model::AlexNet, scale);
    let mut points = Vec::new();
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let (cd, fd) = density_schedule(n);
        let cfg = ModelCompressionConfig {
            conv: LayerCompressionConfig {
                mode: PruneMode::Coarse,
                coarse: CoarseConfig::conv(1, n, 1, 1, PruneMetric::Average),
                target_density: cd,
                quant_bits: 8,
                region_values: 16_384,
                entropy: EntropyCoder::Huffman,
                gate: GatePolicy::Auto,
            },
            fc: LayerCompressionConfig {
                mode: PruneMode::Coarse,
                coarse: CoarseConfig::fc(n, n, PruneMetric::Average),
                target_density: fd,
                quant_bits: 4,
                region_values: 16_384,
                entropy: EntropyCoder::Huffman,
                gate: GatePolicy::Auto,
            },
            lstm: ModelCompressionConfig::paper(Model::AlexNet).lstm,
            overrides: Vec::new(),
        };
        let report = compress_model(&spec, &cfg, seed)?;
        points.push(BlockSizePoint {
            n,
            conv_density: report
                .class_density(LayerClass::Convolutional)
                .unwrap_or(cd),
            fc_density: report
                .class_density(LayerClass::FullyConnected)
                .unwrap_or(fd),
            report,
        });
    }
    Ok(Tab02Result { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_peaks_at_intermediate_block_size() {
        let r = run(Scale::Reduced(16), 3).unwrap();
        assert_eq!(r.points.len(), 7);
        let best = r.best_n();
        assert!(
            (8..=32).contains(&best),
            "best N {best}; ratios: {:?}",
            r.points
                .iter()
                .map(|p| (p.n, p.report.overall_ratio()))
                .collect::<Vec<_>>()
        );
        // N=16 clearly beats N=1 and N=64 (the paper's 79x vs 40x/65x).
        let ratio = |n: usize| {
            r.points
                .iter()
                .find(|p| p.n == n)
                .unwrap()
                .report
                .overall_ratio()
        };
        assert!(ratio(16) > ratio(1));
        assert!(ratio(16) > ratio(64));
    }

    #[test]
    fn index_size_shrinks_with_block_size() {
        let r = run(Scale::Reduced(16), 3).unwrap();
        let idx = |n: usize| {
            r.points
                .iter()
                .find(|p| p.n == n)
                .unwrap()
                .report
                .index_bytes()
        };
        assert!(idx(1) > 50 * idx(16), "{} vs {}", idx(1), idx(16));
        assert!(r.render().contains("Table II"));
    }
}
