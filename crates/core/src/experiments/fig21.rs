//! Fig. 21 — sparsity sensitivity: speedup of sparse over dense
//! execution as synapse and neuron sparsity vary independently.
//!
//! Four curves, as in the paper: (a) conv layer, synapse-sparsity sweep
//! at dense neurons; (b) conv layer, neuron-sparsity sweep at dense
//! synapses; (c/d) the same for a fully-connected layer. Structural
//! limits cap the conv curves at 16× (NSM selects 16 of 256) and the
//! neuron-only curves at ~4× (SSM selects 16 of 64); FC layers are
//! memory-bound so synapse sparsity translates directly to time while
//! neuron sparsity buys nothing.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{simulate_layer, simulate_layer_dense, LayerTiming};

use crate::render_table;

/// One sweep curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Curve label.
    pub label: String,
    /// `(density, speedup-over-dense)` points, density decreasing.
    pub points: Vec<(f64, f64)>,
}

impl Curve {
    /// Maximum speedup along the curve.
    pub fn max_speedup(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }
}

/// Result of the sensitivity sweep.
#[derive(Debug, Clone)]
pub struct Fig21Result {
    /// The four curves.
    pub curves: Vec<Curve>,
}

impl Fig21Result {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let header = ["curve", "density%", "speedup"];
        let mut rows = Vec::new();
        for c in &self.curves {
            for (d, s) in &c.points {
                rows.push(vec![
                    c.label.clone(),
                    format!("{:.1}", 100.0 * d),
                    format!("{s:.2}x"),
                ]);
            }
        }
        format!(
            "Fig.21 speedup of sparse over dense execution\n{}",
            render_table(&header, &rows)
        )
    }
}

const DENSITIES: [f64; 9] = [1.0, 0.95, 0.75, 0.50, 0.35, 0.25, 0.10, 0.05, 0.01];

fn sweep(label: &str, template: &LayerTiming, vary_synapse: bool, cfg: &AccelConfig) -> Curve {
    let dense_cycles = simulate_layer_dense(cfg, template).stats.cycles;
    let points = DENSITIES
        .iter()
        .map(|&d| {
            let mut l = template.clone();
            // Sweeps isolate sparsity: weights stay 16-bit.
            l.weight_bits = 16;
            if vary_synapse {
                l.static_density = d;
                l.dynamic_density = 1.0;
            } else {
                l.static_density = 1.0;
                l.dynamic_density = d;
            }
            let cycles = simulate_layer(cfg, &l).stats.cycles;
            (d, dense_cycles as f64 / cycles as f64)
        })
        .collect();
    Curve {
        label: label.to_string(),
        points,
    }
}

/// Runs the four sweeps.
pub fn run() -> Fig21Result {
    let cfg = AccelConfig::paper_default();
    let conv = LayerTiming::conv(256, 256, 3, 13, 13, 13, 13, 1.0, 1.0, 16);
    let fc = LayerTiming::fc(4096, 4096, 1.0, 1.0, 16);
    Fig21Result {
        curves: vec![
            sweep("conv/SS", &conv, true, &cfg),
            sweep("conv/NS", &conv, false, &cfg),
            sweep("fc/SS", &fc, true, &cfg),
            sweep("fc/NS", &fc, false, &cfg),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve<'a>(r: &'a Fig21Result, label: &str) -> &'a Curve {
        r.curves.iter().find(|c| c.label == label).unwrap()
    }

    #[test]
    fn conv_synapse_sweep_approaches_but_never_exceeds_16x() {
        let r = run();
        let c = curve(&r, "conv/SS");
        let max = c.max_speedup();
        assert!((10.0..=16.2).contains(&max), "max {max}");
        // Monotone: lower density -> higher speedup.
        for w in c.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn conv_neuron_sweep_saturates_near_4x() {
        // SSM selects 16 of 64: at most ~4x from neuron sparsity alone.
        let r = run();
        let max = curve(&r, "conv/NS").max_speedup();
        assert!((2.5..=4.2).contains(&max), "max {max}");
    }

    #[test]
    fn fc_synapse_sweep_gains_at_low_density() {
        // Paper: gains even at 95% density, large at 1% (~59x).
        let r = run();
        let c = curve(&r, "fc/SS");
        let at95 = c.points.iter().find(|p| p.0 == 0.95).unwrap().1;
        assert!(at95 > 1.0, "at 95%: {at95}");
        let at1 = c.points.iter().find(|p| p.0 == 0.01).unwrap().1;
        assert!(at1 > 20.0, "at 1%: {at1}");
    }

    #[test]
    fn fc_neuron_sparsity_buys_nothing() {
        // FC time is weight-traffic-bound; neuron sparsity does not
        // reduce memory accesses.
        let r = run();
        let max = curve(&r, "fc/NS").max_speedup();
        assert!(max < 1.3, "max {max}");
        assert!(r.render().contains("Fig.21"));
    }
}
