//! Extension — dynamic activation sparsity under the prescan gate.
//!
//! The paper's Table III separates static (weight) sparsity from the
//! dynamic sparsity activations gain after ReLU; the hardware exploits
//! the former through pruning and the latter through neuron gating.
//! This experiment drives the software engine's prescan-and-skip gate
//! (`cs_compress::gate`) with LIF-style spike frames of rising drive
//! and measures what the gate actually delivers: the fraction of input
//! blocks proven all-zero and skipped, next to the frame's own active
//! fraction. Every gated forward is checked bit-for-bit against the
//! ungated kernel and the dense matmul reference, so the table doubles
//! as a correctness sweep: skipping is a pure scheduling decision and
//! must never change a single output bit.

use cs_compress::engine::{CompiledFcLayer, FcKernel};
use cs_compress::gate::{GatePlan, GatePolicy, GateStats};
use cs_compress::CompressError;
use cs_nn::data::lif_spike_train;
use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
use cs_tensor::{ops, Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::render_table;

/// One spike-rate data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActSparsityPoint {
    /// LIF drive (input-current ceiling); higher drive, more spikes.
    pub drive: f64,
    /// Fraction of input neurons that fired, averaged over the frames.
    pub active_fraction: f64,
    /// Merged gate stats over every frame at this drive.
    pub stats: GateStats,
    /// Output positions whose gated bits differed from the ungated or
    /// dense reference (must be 0; reported so the table shows it).
    pub bit_mismatches: usize,
}

/// Result of the activation-sparsity sweep.
#[derive(Debug, Clone)]
pub struct ExtActSparsityResult {
    /// Prescan block size the benefit model picked for the layer.
    pub block: usize,
    /// Weight density of the pruned layer.
    pub density: f64,
    /// One point per drive, in the order of [`drives`].
    pub points: Vec<ActSparsityPoint>,
}

impl ExtActSparsityResult {
    /// Renders the drive/active/skip table.
    pub fn render(&self) -> String {
        let header = ["drive", "active%", "blocks", "skipped", "skip%", "mismatch"];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.drive),
                    format!("{:.2}", 100.0 * p.active_fraction),
                    p.stats.blocks.to_string(),
                    p.stats.zero_blocks.to_string(),
                    format!("{:.1}", 100.0 * p.stats.skip_fraction()),
                    p.bit_mismatches.to_string(),
                ]
            })
            .collect();
        format!(
            "Ext: dynamic activation sparsity (block {}, weight density {:.0}%)\n{}",
            self.block,
            100.0 * self.density,
            render_table(&header, &rows)
        )
    }

    /// Highest skip fraction observed across the sweep.
    pub fn peak_skip_fraction(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.stats.skip_fraction())
            .fold(0.0, f64::max)
    }

    /// Total gated-vs-reference bit mismatches (must be 0).
    pub fn total_mismatches(&self) -> usize {
        self.points.iter().map(|p| p.bit_mismatches).sum()
    }
}

/// Experiment parameters (shrink for smoke tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtActSparsityParams {
    /// Layer input width.
    pub n_in: usize,
    /// Layer output width.
    pub n_out: usize,
    /// Weight density the layer is pruned to.
    pub density: f64,
    /// Spike frames per drive.
    pub frames: usize,
    /// LIF integration ticks per frame.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExtActSparsityParams {
    /// Full-size run (seconds in release builds).
    pub fn full() -> Self {
        ExtActSparsityParams {
            n_in: 1024,
            n_out: 512,
            density: 0.25,
            frames: 8,
            steps: 20,
            seed: 11,
        }
    }

    /// Tiny smoke-test configuration.
    pub fn smoke() -> Self {
        ExtActSparsityParams {
            n_in: 256,
            n_out: 128,
            density: 0.25,
            frames: 3,
            steps: 20,
            seed: 11,
        }
    }
}

/// The LIF drives every run sweeps, from near-silent to saturating.
pub fn drives() -> Vec<f64> {
    vec![0.21, 0.25, 0.4, 0.8, 2.0]
}

/// Runs the sweep.
///
/// # Errors
///
/// Propagates compression/shape failures from layer construction.
pub fn run(p: &ExtActSparsityParams) -> Result<ExtActSparsityResult, CompressError> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let w = Tensor::from_fn(Shape::d2(p.n_in, p.n_out), |_| rng.gen_range(-0.5..0.5f32));
    // 16-wide blocks so the mask is shared across each output group of
    // the shared-index format (the paper's `T_n = 16`).
    let mask = coarse::prune_to_density(
        &w,
        &CoarseConfig::fc(16, 16, PruneMetric::Average),
        p.density,
    )
    .map_err(CompressError::from)?;
    let layer = CompiledFcLayer::compile_fc("act", &w, &mask, 16, 8)?;
    let density = layer.density();
    let kernel = FcKernel::BlockCsr(layer);
    // The benefit model gates this geometry on its own; keep a forced
    // fallback so smoke-scale runs still exercise the gated path.
    let plan = kernel
        .plan_gate(GatePolicy::Auto)
        .unwrap_or(GatePlan { block: 16 });
    let dense = kernel.to_dense();

    let mut points = Vec::new();
    for (d, drive) in drives().into_iter().enumerate() {
        let mut stats = GateStats::default();
        let mut active = 0usize;
        let mut mismatches = 0usize;
        for f in 0..p.frames {
            let frame = lif_spike_train(
                p.n_in,
                p.steps,
                drive,
                p.seed.wrapping_add(1 + (d * p.frames + f) as u64),
            );
            let input = frame.as_slice();
            active += input.iter().filter(|v| **v != 0.0).count();
            let ungated = kernel.forward_alloc(input);
            let mut gated = vec![0.0f32; kernel.n_out()];
            stats.merge(kernel.forward_gated(input, &mut gated, &plan));
            let x = Tensor::from_vec(Shape::d2(1, input.len()), input.to_vec())?;
            let reference = ops::matmul(&x, &dense).map_err(CompressError::from)?;
            mismatches += gated
                .iter()
                .zip(&ungated)
                .zip(reference.as_slice())
                .filter(|((g, u), r)| g.to_bits() != u.to_bits() || g.to_bits() != r.to_bits())
                .count();
        }
        points.push(ActSparsityPoint {
            drive,
            active_fraction: active as f64 / (p.frames * p.n_in) as f64,
            stats,
            bit_mismatches: mismatches,
        });
    }
    Ok(ExtActSparsityResult {
        block: plan.block,
        density,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_skips_blocks_and_stays_bit_identical() {
        let r = run(&ExtActSparsityParams::smoke()).unwrap();
        assert_eq!(r.points.len(), drives().len());
        assert_eq!(r.total_mismatches(), 0);
        // Near-silent frames skip most blocks; saturating drive skips
        // fewer (the sweep is why the benefit model exists).
        let first = r.points.first().unwrap().stats.skip_fraction();
        let last = r.points.last().unwrap().stats.skip_fraction();
        assert!(first > 0.5, "low drive skipped only {first}");
        assert!(first > last, "skip {first} should exceed {last}");
        // Active fraction rises with drive.
        assert!(
            r.points.first().unwrap().active_fraction < r.points.last().unwrap().active_fraction
        );
        assert!(r.peak_skip_fraction() >= first);
        assert!(r.render().contains("dynamic activation sparsity"));
    }
}
