//! Extension experiment: architecture scaling — how throughput and the
//! sparse speedup change with the PE array size (`T_n × T_m`).
//!
//! The paper fixes `T_m = T_n = 16` "compatible with the pruning block
//! size"; this sweep shows why: smaller arrays waste the available
//! sparsity headroom, while larger arrays outgrow the block size (groups
//! of 16 outputs can no longer fill all PEs) and become memory-bound.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{simulate_layer, simulate_layer_dense};
use cs_nn::spec::{Model, Scale};

use crate::render_table;
use crate::workload::paper_workload;

/// One array-size data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// PEs (`T_n`) = multipliers per PE (`T_m`).
    pub t: usize,
    /// Peak GOP/s of this build.
    pub peak_gops: f64,
    /// AlexNet sparse cycles.
    pub sparse_cycles: u64,
    /// AlexNet dense cycles on the same build.
    pub dense_cycles: u64,
}

impl ScalingPoint {
    /// Sparse-over-dense speedup at this array size.
    pub fn sparse_speedup(&self) -> f64 {
        self.dense_cycles as f64 / self.sparse_cycles.max(1) as f64
    }
}

/// Result of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ExtScalingResult {
    /// Points in increasing array size.
    pub points: Vec<ScalingPoint>,
}

impl ExtScalingResult {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let header = [
            "Tn=Tm",
            "peak GOP/s",
            "sparse cycles",
            "dense cycles",
            "sparse gain",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.t.to_string(),
                    format!("{:.0}", p.peak_gops),
                    p.sparse_cycles.to_string(),
                    p.dense_cycles.to_string(),
                    format!("{:.2}x", p.sparse_speedup()),
                ]
            })
            .collect();
        format!(
            "Extension: PE-array scaling on AlexNet\n{}",
            render_table(&header, &rows)
        )
    }
}

/// Sweeps `T ∈ {8, 16, 32, 64}` on the AlexNet workload.
pub fn run() -> ExtScalingResult {
    let wl = paper_workload(Model::AlexNet, Scale::Full);
    let points = [8usize, 16, 32, 64]
        .into_iter()
        .map(|t| {
            let cfg = AccelConfig {
                tn: t,
                tm: t,
                ..AccelConfig::paper_default()
            };
            let sparse: u64 = wl
                .layers
                .iter()
                .map(|l| simulate_layer(&cfg, &l.timing).stats.cycles)
                .sum();
            let dense: u64 = wl
                .layers
                .iter()
                .map(|l| simulate_layer_dense(&cfg, &l.timing).stats.cycles)
                .sum();
            ScalingPoint {
                t,
                peak_gops: cfg.peak_gops(),
                sparse_cycles: sparse,
                dense_cycles: dense,
            }
        })
        .collect();
    ExtScalingResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_arrays_are_faster_but_saturate() {
        let r = run();
        assert_eq!(r.points.len(), 4);
        // Monotone improvement in absolute cycles...
        for w in r.points.windows(2) {
            assert!(w[1].sparse_cycles <= w[0].sparse_cycles);
        }
        // ...but with diminishing returns: 8->16 helps more than 32->64.
        let gain =
            |i: usize| r.points[i].sparse_cycles as f64 / r.points[i + 1].sparse_cycles as f64;
        assert!(gain(0) >= gain(2), "{} vs {}", gain(0), gain(2));
        assert!(r.render().contains("scaling"));
    }

    #[test]
    fn sparse_gain_holds_across_sizes() {
        let r = run();
        for p in &r.points {
            assert!(
                p.sparse_speedup() > 1.5,
                "T={} speedup {}",
                p.t,
                p.sparse_speedup()
            );
        }
    }
}
