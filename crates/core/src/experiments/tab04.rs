//! Table IV — full compression results for all seven networks.

use cs_compress::config::ModelCompressionConfig;
use cs_compress::pipeline::{compress_model, ModelReport};
use cs_nn::spec::{LayerClass, Model, NetworkSpec, Scale};

use crate::render_table;

/// Result of the Table IV experiment.
#[derive(Debug, Clone)]
pub struct Tab04Result {
    /// One compression report per model.
    pub reports: Vec<ModelReport>,
    /// Scale the networks were materialized at.
    pub scale: Scale,
}

fn human(bytes: usize) -> String {
    if bytes >= 1_000_000 {
        format!("{:.2}M", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{:.2}K", bytes as f64 / 1e3)
    } else {
        format!("{bytes}B")
    }
}

impl Tab04Result {
    /// Renders the Table IV rows.
    pub fn render(&self) -> String {
        let header = [
            "model", "C%", "F/L%", "W_p", "I", "r_p", "W_q", "r_q", "W_c", "I_c", "r_c", "R(Irr)",
        ];
        let rows: Vec<Vec<String>> = self
            .reports
            .iter()
            .map(|r| {
                let c = r
                    .class_density(LayerClass::Convolutional)
                    .map(|d| format!("{:.2}", 100.0 * d))
                    .unwrap_or_else(|| "-".into());
                let f = r
                    .class_density(LayerClass::FullyConnected)
                    .or_else(|| r.class_density(LayerClass::Lstm))
                    .map(|d| format!("{:.2}", 100.0 * d))
                    .unwrap_or_else(|| "-".into());
                vec![
                    r.model.to_string(),
                    c,
                    f,
                    human(r.wp_bytes()),
                    human(r.index_bytes()),
                    format!("{:.1}x", r.pruning_ratio()),
                    human(r.wq_bytes()),
                    format!("{:.0}x", r.quantized_ratio()),
                    human(r.wc_bytes()),
                    human(r.ic_bytes()),
                    format!("{:.0}x", r.overall_ratio()),
                    format!("{:.2}x", r.reduced_irregularity()),
                ]
            })
            .collect();
        format!(
            "Table IV: compression results (scale {:?})\n{}",
            self.scale,
            render_table(&header, &rows)
        )
    }

    /// Mean reduced irregularity across models (paper: 20.13×).
    pub fn mean_irregularity(&self) -> f64 {
        let sum: f64 = self
            .reports
            .iter()
            .map(ModelReport::reduced_irregularity)
            .sum();
        sum / self.reports.len().max(1) as f64
    }
}

/// Compresses all seven networks with the paper's settings.
///
/// # Errors
///
/// Propagates compression failures.
pub fn run(scale: Scale, seed: u64) -> Result<Tab04Result, cs_compress::CompressError> {
    let mut reports = Vec::new();
    for model in Model::all() {
        let spec = NetworkSpec::model(model, scale);
        let cfg = ModelCompressionConfig::paper(model);
        reports.push(compress_model(&spec, &cfg, seed)?);
    }
    Ok(Tab04Result { reports, scale })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_compress_with_paper_shape() {
        let r = run(Scale::Reduced(8), 5).unwrap();
        assert_eq!(r.reports.len(), 7);
        for rep in &r.reports {
            let rc = rep.overall_ratio();
            match rep.model {
                // Deep nets with dense FC / moderate conv pruning
                // compress far less (paper: 10x).
                Model::ResNet152 => assert!((2.0..30.0).contains(&rc), "resnet rc {rc}"),
                // Tiny test-scale models pay fixed codebook overheads;
                // full-scale ratios land near the paper's 69-98x.
                _ => assert!(rc > 10.0, "{} rc {rc}", rep.model),
            }
            assert!(rep.reduced_irregularity() >= 1.0);
        }
        // Large FC-heavy nets compress the most.
        let rc_of = |m: Model| {
            r.reports
                .iter()
                .find(|x| x.model == m)
                .unwrap()
                .overall_ratio()
        };
        assert!(rc_of(Model::AlexNet) > rc_of(Model::ResNet152));
        assert!(r.mean_irregularity() > 2.0);
        assert!(r.render().contains("Table IV"));
    }
}
