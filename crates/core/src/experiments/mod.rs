//! Experiment drivers — one per table/figure of the paper's evaluation.
//!
//! Every driver returns a structured result type plus a `render()`
//! method producing the text table/series the paper reports. The
//! `exp_*` binaries in `cs-bench` are thin wrappers around these, and
//! the integration tests smoke-run them at reduced scale.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Fig. 1 local convergence maps | [`fig01`] |
//! | Fig. 4 larger-weight CDFs | [`fig04`] |
//! | Table II block-size sweep | [`tab02`] |
//! | Table III SSS/SNS/DNS | [`tab03`] |
//! | Fig. 8 max vs. average pruning | [`fig08`] |
//! | Table IV compression results | [`tab04`] |
//! | Table V comparison vs. Deep Compression / CNNpack | [`tab05`] |
//! | Table VI hardware characteristics | [`tab06`] |
//! | Figs. 15–17 speedups | [`fig15`] |
//! | Figs. 18–20 energy | [`fig18`] |
//! | Fig. 21 sparsity sensitivity | [`fig21`] |
//! | Table VII EIE comparison | [`tab07`] |
//! | Discussion ablations | [`disc`] |
//! | Extension: entropy-coder comparison | [`ext_entropy`] |
//! | Extension: compression DSE | [`ext_dse`] |
//! | Extension: measured Table I capability matrix | [`ext_table1`] |
//! | Extension: PE-array scaling | [`ext_scaling`] |
//! | Extension: structured-pattern accuracy | [`ext_structured`] |
//! | Extension: dynamic activation sparsity | [`ext_actsparsity`] |

pub mod disc;
pub mod ext_actsparsity;
pub mod ext_dse;
pub mod ext_entropy;
pub mod ext_scaling;
pub mod ext_structured;
pub mod ext_table1;
pub mod fig01;
pub mod fig04;
pub mod fig08;
pub mod fig15;
pub mod fig18;
pub mod fig21;
pub mod tab02;
pub mod tab03;
pub mod tab04;
pub mod tab05;
pub mod tab06;
pub mod tab07;
