//! Figs. 18–20 — energy efficiency and energy breakdowns.
//!
//! Fig. 18 compares energy efficiency (1/energy, normalized to
//! Cambricon-S) against the GPU, DianNao and Cambricon-X, including
//! off-chip accesses. Figs. 19/20 break our energy down per component
//! with and without DRAM.

use cs_accel::config::AccelConfig;
use cs_accel::timing::simulate_layer;
use cs_baselines::cpu_gpu;
use cs_baselines::{cambricon_x_layer, diannao_layer};
use cs_energy::energy::{
    energy_cambricon_s, energy_cambricon_x, energy_diannao, EnergyBreakdown, EnergyModel,
};
use cs_nn::spec::{Model, Scale};

use crate::render_table;
use crate::workload::paper_workload;

/// Per-network energies in joules.
#[derive(Debug, Clone)]
pub struct ModelEnergy {
    /// The network.
    pub model: Model,
    /// Our total energy (J), including DRAM.
    pub ours_j: f64,
    /// Our energy without DRAM.
    pub ours_onchip_j: f64,
    /// GPU energy.
    pub gpu_j: f64,
    /// DianNao energy.
    pub diannao_j: f64,
    /// DianNao on-chip energy.
    pub diannao_onchip_j: f64,
    /// Cambricon-X energy.
    pub x_j: f64,
    /// Cambricon-X on-chip energy.
    pub x_onchip_j: f64,
    /// Our per-component breakdown (pJ).
    pub ours_breakdown: EnergyBreakdown,
}

/// Result of the energy experiments.
#[derive(Debug, Clone)]
pub struct Fig18Result {
    /// One row per network.
    pub rows: Vec<ModelEnergy>,
}

impl Fig18Result {
    /// Geometric-mean efficiency gains `[gpu, diannao, x]` (with DRAM).
    pub fn geomean_efficiency(&self) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        for r in &self.rows {
            acc[0] += (r.gpu_j / r.ours_j).ln();
            acc[1] += (r.diannao_j / r.ours_j).ln();
            acc[2] += (r.x_j / r.ours_j).ln();
        }
        let n = self.rows.len().max(1) as f64;
        acc.map(|v| (v / n).exp())
    }

    /// Renders Fig. 18 (efficiency vs baselines).
    pub fn render(&self) -> String {
        let header = ["model", "vs GPU", "vs DianNao", "vs Cambricon-X"];
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.model.to_string(),
                    format!("{:.1}x", r.gpu_j / r.ours_j),
                    format!("{:.1}x", r.diannao_j / r.ours_j),
                    format!("{:.2}x", r.x_j / r.ours_j),
                ]
            })
            .collect();
        let gm = self.geomean_efficiency();
        rows.push(vec![
            "geomean".into(),
            format!("{:.1}x", gm[0]),
            format!("{:.1}x", gm[1]),
            format!("{:.2}x", gm[2]),
        ]);
        format!(
            "Fig.18 energy efficiency of Cambricon-S over baselines (incl. DRAM)\n{}",
            render_table(&header, &rows)
        )
    }

    /// Renders Fig. 19 (breakdown including DRAM).
    pub fn render_fig19(&self) -> String {
        let header = ["model", "DRAM%", "SRAM%", "logic%", "CP%"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let b = &r.ours_breakdown;
                let t = b.total_pj();
                let logic = b.selector_pj + b.ssm_pj + b.wdm_pj + b.pefu_pj;
                vec![
                    r.model.to_string(),
                    format!("{:.1}", 100.0 * b.dram_pj / t),
                    format!("{:.1}", 100.0 * b.onchip_sram_pj() / t),
                    format!("{:.1}", 100.0 * logic / t),
                    format!("{:.1}", 100.0 * b.cp_pj / t),
                ]
            })
            .collect();
        format!(
            "Fig.19 energy breakdown with off-chip accesses\n{}",
            render_table(&header, &rows)
        )
    }

    /// Renders Fig. 20 (on-chip-only breakdown).
    pub fn render_fig20(&self) -> String {
        let header = [
            "model", "NBin%", "NBout%", "SB%", "SIB%", "NSM%", "SSM%", "WDM%", "PEFU%", "CP%",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let b = &r.ours_breakdown;
                let t = b.onchip_pj();
                let pct = |v: f64| format!("{:.1}", 100.0 * v / t);
                vec![
                    r.model.to_string(),
                    pct(b.nbin_pj),
                    pct(b.nbout_pj),
                    pct(b.sb_pj),
                    pct(b.sib_pj),
                    pct(b.selector_pj),
                    pct(b.ssm_pj),
                    pct(b.wdm_pj),
                    pct(b.pefu_pj),
                    pct(b.cp_pj),
                ]
            })
            .collect();
        format!(
            "Fig.20 energy breakdown without off-chip accesses\n{}",
            render_table(&header, &rows)
        )
    }
}

/// Runs the energy comparison for all networks.
pub fn run() -> Fig18Result {
    let cfg = AccelConfig::paper_default();
    let em = EnergyModel::default_65nm();
    let mut rows = Vec::new();
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        let mut ours = EnergyBreakdown::default();
        let mut dn = EnergyBreakdown::default();
        let mut x = EnergyBreakdown::default();
        let mut gpu_j = 0.0;
        let gpu = cpu_gpu::gpu_caffe();
        for l in &wl.layers {
            let run = simulate_layer(&cfg, &l.timing);
            ours = add(ours, energy_cambricon_s(&run.stats, &em));
            dn = add(dn, energy_diannao(&diannao_layer(&l.timing).stats, &em));
            x = add(
                x,
                energy_cambricon_x(&cambricon_x_layer(&l.timing).stats, &em),
            );
            gpu_j += gpu.layer_joules(&l.timing);
        }
        rows.push(ModelEnergy {
            model,
            ours_j: ours.total_pj() * 1e-12,
            ours_onchip_j: ours.onchip_pj() * 1e-12,
            gpu_j,
            diannao_j: dn.total_pj() * 1e-12,
            diannao_onchip_j: dn.onchip_pj() * 1e-12,
            x_j: x.total_pj() * 1e-12,
            x_onchip_j: x.onchip_pj() * 1e-12,
            ours_breakdown: ours,
        });
    }
    Fig18Result { rows }
}

fn add(a: EnergyBreakdown, b: EnergyBreakdown) -> EnergyBreakdown {
    EnergyBreakdown {
        nbin_pj: a.nbin_pj + b.nbin_pj,
        nbout_pj: a.nbout_pj + b.nbout_pj,
        sb_pj: a.sb_pj + b.sb_pj,
        sib_pj: a.sib_pj + b.sib_pj,
        selector_pj: a.selector_pj + b.selector_pj,
        ssm_pj: a.ssm_pj + b.ssm_pj,
        wdm_pj: a.wdm_pj + b.wdm_pj,
        pefu_pj: a.pefu_pj + b.pefu_pj,
        cp_pj: a.cp_pj + b.cp_pj,
        dram_pj: a.dram_pj + b.dram_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_ordering_matches_paper() {
        let r = run();
        assert_eq!(r.rows.len(), 7);
        let [gpu, dn, x] = r.geomean_efficiency();
        // Paper: 49.6x vs GPU, 9.16x vs DianNao, 1.37x vs Cambricon-X.
        assert!(gpu > dn, "GPU {gpu} vs DianNao {dn}");
        assert!(dn > x, "DianNao {dn} vs X {x}");
        assert!(x > 1.0, "X {x}");
        assert!((1.05..5.0).contains(&x), "vs X: {x}");
        assert!((2.0..40.0).contains(&dn), "vs DianNao: {dn}");
        assert!(gpu > 5.0, "vs GPU: {gpu}");
    }

    #[test]
    fn dram_dominates_and_sram_dominates_onchip() {
        let r = run();
        for m in &r.rows {
            let b = &m.ours_breakdown;
            assert!(
                b.dram_fraction() > 0.5,
                "{}: DRAM {}",
                m.model,
                b.dram_fraction()
            );
            let sram = b.onchip_sram_pj() / b.onchip_pj();
            assert!((0.25..0.98).contains(&sram), "{}: SRAM {sram}", m.model);
        }
        assert!(r.render().contains("Fig.18"));
        assert!(r.render_fig19().contains("Fig.19"));
        assert!(r.render_fig20().contains("Fig.20"));
    }

    #[test]
    fn memory_intensive_nets_have_highest_dram_share() {
        let r = run();
        let frac = |m: Model| {
            r.rows
                .iter()
                .find(|x| x.model == m)
                .unwrap()
                .ours_breakdown
                .dram_fraction()
        };
        // Paper: LSTM and MLP consume >98% in main memory, more than the
        // conv-heavy networks.
        assert!(frac(Model::Mlp) > frac(Model::Vgg16));
        assert!(frac(Model::Lstm) > frac(Model::Vgg16));
    }
}
