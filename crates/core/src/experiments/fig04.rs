//! Fig. 4 — CDF of larger-weight counts per sliding window.
//!
//! Five representative trained layers (fc6 of AlexNet, fc6 of VGG16, ip1
//! of the MLP, `W_ix` of the LSTM, conv2 of AlexNet) are windowed with
//! `k = 4` (conv2: `k = 2`) and `m = 10%`; a randomly initialized layer
//! is the control. Trained layers show windows holding more than six
//! larger weights — impossible-in-practice under i.i.d. initialization.

use cs_nn::init::{self, ConvergenceProfile};
use cs_nn::spec::{Model, NetworkSpec, Scale};
use cs_sparsity::convergence;
use cs_tensor::Shape;

use crate::render_table;

/// One CDF curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Layer label.
    pub label: String,
    /// Window size used.
    pub k: usize,
    /// `cdf[x]` = fraction of windows with ≤ x larger weights.
    pub cdf: Vec<f64>,
    /// Largest observed label.
    pub max_label: usize,
}

/// Result of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// Curves for the five trained layers plus the random control.
    pub curves: Vec<Curve>,
}

impl Fig04Result {
    /// Renders the CDFs as a table (one row per curve, columns = counts).
    pub fn render(&self) -> String {
        let max_cols = 10usize;
        let mut header: Vec<String> = vec!["layer".into(), "k".into(), "max".into()];
        header.extend((0..=max_cols).map(|i| format!("<={i}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .map(|c| {
                let mut row = vec![c.label.clone(), c.k.to_string(), c.max_label.to_string()];
                for i in 0..=max_cols {
                    let v = c.cdf.get(i).copied().unwrap_or(1.0);
                    row.push(format!("{v:.3}"));
                }
                row
            })
            .collect();
        format!(
            "Fig.4 CDF of larger-weight count per window (m=10%)\n{}",
            render_table(&header_refs, &rows)
        )
    }
}

fn curve_for(label: &str, w: &cs_tensor::Tensor, k: usize) -> Curve {
    let hist = convergence::window_histogram(w, k, 0.10);
    Curve {
        label: label.to_string(),
        k,
        cdf: convergence::cdf(&hist),
        max_label: convergence::max_label(&hist),
    }
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale, seed: u64) -> Fig04Result {
    let profile = ConvergenceProfile::paper_default().with_block(8);
    let mut curves = Vec::new();
    let cases: [(&str, Model, &str, usize); 5] = [
        ("alexnet/fc6", Model::AlexNet, "fc6", 4),
        ("vgg16/fc6", Model::Vgg16, "fc6", 4),
        ("mlp/ip1", Model::Mlp, "ip1", 4),
        ("lstm/Wix", Model::Lstm, "lstm1", 4),
        ("alexnet/conv2", Model::AlexNet, "conv2", 2),
    ];
    for (label, model, layer_name, k) in cases {
        let spec = NetworkSpec::model(model, scale);
        let layer = spec
            .layers()
            .iter()
            .find(|l| l.name() == layer_name)
            .expect("layer exists in spec");
        let w = init::materialize(layer, &profile, seed);
        curves.push(curve_for(label, &w, k));
    }
    // Random control at a representative FC size.
    let rand = init::gaussian(Shape::d2(512, 512), 0.01, seed ^ 0xdead);
    curves.push(curve_for("random-init", &rand, 4));
    Fig04Result { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_layers_have_heavier_tails_than_random() {
        let r = run(Scale::Reduced(8), 3);
        assert_eq!(r.curves.len(), 6);
        let random = r.curves.last().unwrap();
        // Paper: initialized layers rarely exceed a handful of larger
        // weights per 4x4 window; trained layers reach far into the tail.
        assert!(random.max_label <= 8, "random tail {}", random.max_label);
        for c in &r.curves[..3] {
            if c.k == 4 {
                assert!(
                    c.max_label > random.max_label,
                    "{} tail {} vs random {}",
                    c.label,
                    c.max_label,
                    random.max_label
                );
                assert!(c.max_label > 6, "{} tail {}", c.label, c.max_label);
            }
        }
        assert!(r.render().contains("alexnet/fc6"));
    }

    #[test]
    fn cdfs_are_monotone() {
        let r = run(Scale::Reduced(8), 5);
        for c in &r.curves {
            for w in c.cdf.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }
}
