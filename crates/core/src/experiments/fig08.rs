//! Fig. 8 — max pruning vs. average pruning accuracy.
//!
//! A Cifar10-quick-style CNN is trained on synthetic images, then pruned
//! coarse-grained to a range of sparsities under both block metrics and
//! fine-tuned with mask-preserving SGD. The paper's finding — *average*
//! pruning holds accuracy better at low density (< 15%) — reproduces on
//! the synthetic task.

use cs_nn::data::{self, Dataset};
use cs_nn::network::{LayerKind, Network};
use cs_nn::train::{accuracy, LayerMasks, TrainConfig, Trainer};
use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
use cs_tensor::TensorError;

use crate::render_table;

/// One sparsity data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityPoint {
    /// Fraction of weights kept.
    pub density: f64,
    /// Accuracy after max pruning + fine-tuning.
    pub acc_max: f64,
    /// Accuracy after average pruning + fine-tuning.
    pub acc_avg: f64,
}

/// Result of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig08Result {
    /// Accuracy of the unpruned trained model.
    pub base_accuracy: f64,
    /// Points in decreasing density.
    pub points: Vec<SparsityPoint>,
}

impl Fig08Result {
    /// Renders the accuracy curves.
    pub fn render(&self) -> String {
        let header = ["density%", "max-prune acc", "avg-prune acc"];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", 100.0 * p.density),
                    format!("{:.3}", p.acc_max),
                    format!("{:.3}", p.acc_avg),
                ]
            })
            .collect();
        format!(
            "Fig.8 max vs avg pruning (base accuracy {:.3})\n{}",
            self.base_accuracy,
            render_table(&header, &rows)
        )
    }
}

/// Experiment parameters (shrink for smoke tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig08Params {
    /// Training-set size.
    pub samples: usize,
    /// Image side (single channel).
    pub image_side: usize,
    /// Classes.
    pub classes: usize,
    /// Base-training epochs.
    pub train_epochs: usize,
    /// Fine-tuning epochs after each pruning.
    pub finetune_epochs: usize,
    /// Densities to evaluate.
    pub densities: &'static [f64],
    /// RNG seed.
    pub seed: u64,
}

impl Fig08Params {
    /// Full-size run (a few minutes in release builds).
    pub fn full() -> Self {
        Fig08Params {
            samples: 240,
            image_side: 12,
            classes: 4,
            train_epochs: 15,
            finetune_epochs: 8,
            densities: &[0.40, 0.25, 0.15, 0.10, 0.05],
            seed: 11,
        }
    }

    /// Tiny smoke-test configuration.
    pub fn smoke() -> Self {
        Fig08Params {
            samples: 48,
            image_side: 8,
            classes: 2,
            train_epochs: 5,
            finetune_epochs: 2,
            densities: &[0.30, 0.10],
            seed: 11,
        }
    }
}

fn prune_network(
    net: &mut Network,
    density: f64,
    metric: PruneMetric,
) -> Result<LayerMasks, TensorError> {
    let mut masks: LayerMasks = Vec::with_capacity(net.layers().len());
    for layer in net.layers_mut() {
        let cfg = match layer.kind {
            LayerKind::Conv2d { .. } => Some(CoarseConfig::conv(1, 4, 1, 1, metric)),
            LayerKind::FullyConnected { .. } => Some(CoarseConfig::fc(4, 4, metric)),
            _ => None,
        };
        match (cfg, layer.weights_mut()) {
            (Some(cfg), Some(w)) => {
                let mask = coarse::prune_to_density(w, &cfg, density)?;
                mask.apply(w);
                masks.push(Some(mask.bits().to_vec()));
            }
            _ => masks.push(None),
        }
    }
    Ok(masks)
}

fn finetune(
    net: &mut Network,
    data: &Dataset,
    masks: &LayerMasks,
    epochs: usize,
) -> Result<(), TensorError> {
    let mut tr = Trainer::new(
        net,
        TrainConfig {
            lr: 0.02,
            ..TrainConfig::default()
        },
    );
    for _ in 0..epochs {
        tr.epoch(net, data, Some(masks))?;
    }
    Ok(())
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates training/shape errors.
pub fn run(p: &Fig08Params) -> Result<Fig08Result, TensorError> {
    let ds = data::images(
        p.samples,
        (1, p.image_side, p.image_side),
        p.classes,
        0.25,
        p.seed,
    );
    let mut base = Network::small_cnn("fig8", (1, p.image_side, p.image_side), p.classes, p.seed);
    let mut tr = Trainer::new(
        &base,
        TrainConfig {
            lr: 0.05,
            ..TrainConfig::default()
        },
    );
    for _ in 0..p.train_epochs {
        tr.epoch(&mut base, &ds, None)?;
    }
    let base_accuracy = accuracy(&base, &ds)?;

    let mut points = Vec::new();
    for &density in p.densities {
        let mut accs = [0.0f64; 2];
        for (i, metric) in [PruneMetric::Max, PruneMetric::Average]
            .into_iter()
            .enumerate()
        {
            let mut net = base.clone();
            let masks = prune_network(&mut net, density, metric)?;
            finetune(&mut net, &ds, &masks, p.finetune_epochs)?;
            accs[i] = accuracy(&net, &ds)?;
        }
        points.push(SparsityPoint {
            density,
            acc_max: accs[0],
            acc_avg: accs[1],
        });
    }
    Ok(Fig08Result {
        base_accuracy,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_reasonable_curves() {
        let r = run(&Fig08Params::smoke()).unwrap();
        assert!(r.base_accuracy > 0.6, "base {}", r.base_accuracy);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.acc_max <= 1.0 && p.acc_avg <= 1.0);
            assert!(p.acc_max >= 0.0 && p.acc_avg >= 0.0);
        }
        // Gentler pruning never hurts much more than aggressive pruning.
        assert!(r.points[0].acc_avg + 0.3 >= r.points[1].acc_avg);
        assert!(r.render().contains("Fig.8"));
    }
}
