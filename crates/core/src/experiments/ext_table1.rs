//! Extension experiment: Table I — which accelerator exploits which
//! sparsity.
//!
//! The paper's Table I is a capability claim; here it is *measured*: for
//! each simulated accelerator we vary static synapse sparsity and
//! dynamic neuron sparsity independently on a probe layer and check
//! whether execution time responds. An accelerator "supports" a sparsity
//! type when more of it makes the layer at least 10% faster.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{simulate_layer as ours_layer, LayerTiming};
use cs_baselines::{cambricon_x, cnvlutin, diannao, scnn};

use crate::render_table;

/// Capability row for one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct CapabilityRow {
    /// Accelerator name.
    pub name: String,
    /// Exploits static synapse sparsity (SSS).
    pub sss: bool,
    /// Exploits dynamic neuron sparsity (DNS).
    pub dns: bool,
    /// Paper's Table I claim `(sss, dns)` for comparison.
    pub claimed: (bool, bool),
}

/// Result of the Table I measurement.
#[derive(Debug, Clone)]
pub struct ExtTable1Result {
    /// One row per accelerator.
    pub rows: Vec<CapabilityRow>,
}

impl ExtTable1Result {
    /// Whether every measured capability matches the paper's claim.
    pub fn all_match(&self) -> bool {
        self.rows.iter().all(|r| (r.sss, r.dns) == r.claimed)
    }

    /// Renders the capability matrix.
    pub fn render(&self) -> String {
        let header = ["accelerator", "SSS", "DNS", "paper SSS", "paper DNS"];
        let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    tick(r.sss),
                    tick(r.dns),
                    tick(r.claimed.0),
                    tick(r.claimed.1),
                ]
            })
            .collect();
        format!(
            "Extension: measured Table I capability matrix (match: {})\n{}",
            self.all_match(),
            render_table(&header, &rows)
        )
    }
}

fn probe(sd: f64, dd: f64) -> LayerTiming {
    LayerTiming::conv(256, 256, 3, 13, 13, 13, 13, sd, dd, 16)
}

fn responds(cycles: impl Fn(&LayerTiming) -> u64, vary_static: bool) -> bool {
    let dense = cycles(&probe(1.0, 1.0));
    let sparse = if vary_static {
        cycles(&probe(0.1, 1.0))
    } else {
        cycles(&probe(1.0, 0.1))
    };
    (dense as f64) > (sparse as f64) * 1.1
}

/// Measures the capability matrix.
pub fn run() -> ExtTable1Result {
    let cfg = AccelConfig::paper_default();
    let ours = |l: &LayerTiming| ours_layer(&cfg, l).stats.cycles;
    let dn = |l: &LayerTiming| diannao::simulate_layer(l).stats.cycles;
    let x = |l: &LayerTiming| cambricon_x::simulate_layer(l).stats.cycles;
    let cn = |l: &LayerTiming| cnvlutin::simulate_layer(l).stats.cycles;
    let sc = |l: &LayerTiming| scnn::simulate_layer(l).stats.cycles;

    let rows = vec![
        CapabilityRow {
            name: "DianNao".into(),
            sss: responds(dn, true),
            dns: responds(dn, false),
            claimed: (false, false),
        },
        CapabilityRow {
            name: "Cambricon-X".into(),
            sss: responds(x, true),
            dns: responds(x, false),
            claimed: (true, false),
        },
        CapabilityRow {
            name: "Cnvlutin".into(),
            sss: responds(cn, true),
            dns: responds(cn, false),
            claimed: (false, true),
        },
        CapabilityRow {
            name: "SCNN".into(),
            sss: responds(sc, true),
            dns: responds(sc, false),
            claimed: (true, true),
        },
        CapabilityRow {
            name: "Cambricon-S".into(),
            sss: responds(ours, true),
            dns: responds(ours, false),
            claimed: (true, true),
        },
    ];
    ExtTable1Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_capabilities_match_the_papers_table1() {
        let r = run();
        assert!(r.all_match(), "capability mismatch:\n{}", r.render());
    }
}
