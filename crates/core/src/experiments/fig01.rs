//! Fig. 1 — local-convergence weight maps.
//!
//! Plots the top-10% weights of a trained (synthetically locally
//! convergent) fully-connected layer next to a randomly initialized one:
//! the trained layer shows visible clusters, the random one salt-and-
//! pepper noise.

use cs_nn::init::{self, ConvergenceProfile};
use cs_sparsity::convergence;
use cs_tensor::Shape;

/// Result of the Fig. 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig01Result {
    /// ASCII thumbnail of the trained layer's larger-weight map.
    pub trained_art: String,
    /// ASCII thumbnail of the random layer's map.
    pub random_art: String,
    /// PBM (P1) image of the trained map, for external viewing.
    pub trained_pbm: String,
    /// Dense-cluster count in the trained map (windows ≥ half-full of
    /// larger weights).
    pub trained_clusters: usize,
    /// Dense-cluster count in the random map.
    pub random_clusters: usize,
}

impl Fig01Result {
    /// Renders both maps side by side with headers.
    pub fn render(&self) -> String {
        format!(
            "Fig.1 local convergence (top-10% weights, '#'=dense cluster)\n\
             -- trained layer ({} dense 8x8 clusters) --\n{}\n\
             -- randomly initialized layer ({} dense clusters) --\n{}",
            self.trained_clusters, self.trained_art, self.random_clusters, self.random_art
        )
    }
}

fn count_dense_windows(bits: &[Vec<bool>], k: usize) -> usize {
    let rows = bits.len();
    let cols = bits.first().map_or(0, Vec::len);
    let mut count = 0;
    for br in 0..rows / k {
        for bc in 0..cols / k {
            let ones: usize = (0..k)
                .map(|r| (0..k).filter(|c| bits[br * k + r][bc * k + c]).count())
                .sum();
            if ones * 2 >= k * k {
                count += 1;
            }
        }
    }
    count
}

/// Runs the experiment on a `dim × dim` layer.
pub fn run(dim: usize, seed: u64) -> Fig01Result {
    let trained = init::local_convergence(
        Shape::d2(dim, dim),
        &ConvergenceProfile::paper_default().with_block(8),
        seed,
    );
    let random = init::gaussian(Shape::d2(dim, dim), 0.01, seed);
    let tb = convergence::bitmap(&trained, 0.10);
    let rb = convergence::bitmap(&random, 0.10);
    Fig01Result {
        trained_art: convergence::render_ascii(&tb, dim / 64 + 1),
        random_art: convergence::render_ascii(&rb, dim / 64 + 1),
        trained_pbm: convergence::render_pbm(&tb),
        trained_clusters: count_dense_windows(&tb, 8),
        random_clusters: count_dense_windows(&rb, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_layer_clusters_random_does_not() {
        let r = run(128, 7);
        assert!(r.trained_clusters >= 10, "{} clusters", r.trained_clusters);
        assert_eq!(r.random_clusters, 0);
        assert!(r.render().contains("local convergence"));
        assert!(r.trained_pbm.starts_with("P1"));
    }
}
