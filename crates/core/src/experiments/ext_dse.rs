//! Extension experiment: design-space exploration of the compression
//! parameters (the paper's "long-tuning process" discussion).
//!
//! The paper notes that finding the best block size, thresholds and
//! quantization widths is a DSE problem that needs a long tuning run,
//! then observes that `(1, 16, 1, 1)` blocks and 8-bit conv / 4-bit FC
//! quantization are good defaults. This driver performs that search on
//! representative layers: a grid over block size and dictionary widths,
//! with reconstruction error standing in for accuracy (we cannot
//! fine-tune ImageNet models), ranking feasible configurations by
//! compressed size.

use cs_compress::config::LayerCompressionConfig;
use cs_compress::pipeline::compress_layer;
use cs_nn::init::{self, ConvergenceProfile};
use cs_nn::spec::{Model, NetworkSpec, Scale};
use cs_sparsity::coarse::{CoarseConfig, PruneMetric};

use crate::experiments::tab02::density_schedule;
use crate::render_table;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Pruning block size `N`.
    pub n: usize,
    /// Conv dictionary width.
    pub conv_bits: u8,
    /// FC dictionary width.
    pub fc_bits: u8,
    /// Total compressed bytes (weights + indexes) over the probe layers.
    pub compressed_bytes: usize,
    /// Mean squared reconstruction error of the quantized weights,
    /// normalized by the per-config weight variance (accuracy proxy).
    pub nmse: f64,
    /// Whether the accuracy proxy stays under the feasibility bound.
    pub feasible: bool,
}

/// Result of the DSE sweep.
#[derive(Debug, Clone)]
pub struct ExtDseResult {
    /// All evaluated points, feasible-best first.
    pub points: Vec<DsePoint>,
    /// The feasibility bound applied to `nmse`.
    pub nmse_bound: f64,
}

impl ExtDseResult {
    /// The best feasible configuration.
    pub fn best(&self) -> Option<&DsePoint> {
        self.points.iter().find(|p| p.feasible)
    }

    /// Renders the ranked sweep.
    pub fn render(&self) -> String {
        let header = [
            "rank",
            "N",
            "conv bits",
            "fc bits",
            "size(KB)",
            "nmse",
            "feasible",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    (i + 1).to_string(),
                    p.n.to_string(),
                    p.conv_bits.to_string(),
                    p.fc_bits.to_string(),
                    format!("{:.1}", p.compressed_bytes as f64 / 1e3),
                    format!("{:.4}", p.nmse),
                    if p.feasible { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        format!(
            "Extension: compression design-space exploration (nmse bound {:.3})\n{}",
            self.nmse_bound,
            render_table(&header, &rows)
        )
    }
}

fn evaluate(
    spec: &NetworkSpec,
    n: usize,
    conv_bits: u8,
    fc_bits: u8,
    seed: u64,
) -> Option<(usize, f64)> {
    let (cd, fd) = density_schedule(n);
    let mut total_bytes = 0usize;
    let mut mse_sum = 0.0f64;
    let mut var_sum = 0.0f64;
    for name in ["conv3", "fc6"] {
        let layer = spec.layers().iter().find(|l| l.name() == name)?;
        let is_conv = name.starts_with("conv");
        let cfg = LayerCompressionConfig {
            coarse: if is_conv {
                CoarseConfig::conv(1, n, 1, 1, PruneMetric::Average)
            } else {
                CoarseConfig::fc(n, n, PruneMetric::Average)
            },
            target_density: if is_conv { cd } else { fd },
            quant_bits: if is_conv { conv_bits } else { fc_bits },
            ..LayerCompressionConfig::paper_fc(fd, n)
        };
        let profile = ConvergenceProfile::with_target_density(cfg.target_density).with_block(n);
        let weights = init::materialize(layer, &profile, seed);
        let (report, mask, quant) = compress_layer(layer, &weights, &cfg).ok()?;
        total_bytes += report.wc_bytes + report.ic_bytes;
        let surviving = mask.compact_values(&weights);
        let var: f64 = surviving
            .iter()
            .map(|v| f64::from(*v) * f64::from(*v))
            .sum::<f64>()
            / surviving.len().max(1) as f64;
        mse_sum += quant.mse(&surviving);
        var_sum += var;
    }
    Some((total_bytes, mse_sum / var_sum.max(1e-12)))
}

/// Runs the grid search on AlexNet's conv3 + fc6 probe layers.
pub fn run(scale: Scale, seed: u64) -> ExtDseResult {
    let spec = NetworkSpec::model(Model::AlexNet, scale);
    let mut points = Vec::new();
    for n in [4usize, 8, 16, 32] {
        for conv_bits in [4u8, 8] {
            for fc_bits in [2u8, 4, 6] {
                if let Some((bytes, nmse)) = evaluate(&spec, n, conv_bits, fc_bits, seed) {
                    points.push(DsePoint {
                        n,
                        conv_bits,
                        fc_bits,
                        compressed_bytes: bytes,
                        nmse,
                        feasible: false,
                    });
                }
            }
        }
    }
    // Feasibility: within 2x of the error at the paper's design point.
    let reference = points
        .iter()
        .find(|p| p.n == 16 && p.conv_bits == 8 && p.fc_bits == 4)
        .map(|p| p.nmse)
        .unwrap_or(0.05);
    let nmse_bound = reference * 2.0;
    for p in &mut points {
        p.feasible = p.nmse <= nmse_bound;
    }
    // Rank: feasible first, then by compressed size.
    points.sort_by(|a, b| {
        b.feasible
            .cmp(&a.feasible)
            .then(a.compressed_bytes.cmp(&b.compressed_bytes))
    });
    ExtDseResult { points, nmse_bound }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_a_feasible_point_near_the_paper_design() {
        let r = run(Scale::Reduced(16), 3);
        assert_eq!(r.points.len(), 4 * 2 * 3);
        let best = r.best().expect("a feasible point exists");
        // The best feasible design uses a mid-size block, as the paper
        // found.
        assert!(
            (8..=32).contains(&best.n),
            "best N {} (points: {:?})",
            best.n,
            &r.points[..3]
        );
        assert!(r.render().contains("design-space"));
    }

    #[test]
    fn two_bit_fc_dictionaries_raise_reconstruction_error() {
        let r = run(Scale::Reduced(16), 3);
        let err_at = |fc_bits: u8| -> f64 {
            r.points
                .iter()
                .filter(|p| p.fc_bits == fc_bits && p.n == 16 && p.conv_bits == 8)
                .map(|p| p.nmse)
                .next()
                .unwrap()
        };
        assert!(err_at(2) > err_at(4));
        assert!(err_at(4) >= err_at(6));
    }
}
