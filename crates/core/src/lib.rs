//! # Cambricon-S: a software/hardware co-designed sparse NN accelerator
//!
//! This crate is the public facade of a from-scratch reproduction of
//! *Cambricon-S: Addressing Irregularity in Sparse Neural Networks
//! through A Cooperative Software/Hardware Approach* (MICRO 2018).
//!
//! It re-exports the workspace's building blocks and adds:
//!
//! * [`workload`] — the paper's seven benchmark networks as timing
//!   workloads, parameterized with the published sparsities (Table III /
//!   Table IV);
//! * [`experiments`] — one driver per table and figure of the paper's
//!   evaluation, each returning structured results plus a rendered text
//!   table.
//!
//! ## Quickstart
//!
//! ```
//! use cambricon_s::prelude::*;
//!
//! // Compress a network with the paper's settings...
//! let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
//! let cfg = ModelCompressionConfig::paper(Model::Mlp);
//! let report = compress_model(&spec, &cfg, 42).unwrap();
//! assert!(report.overall_ratio() > 10.0);
//!
//! // ...and estimate how fast Cambricon-S runs it.
//! let wl = paper_workload(Model::Mlp, Scale::Full);
//! let cycles = wl.total_cycles_ours();
//! assert!(cycles > 0);
//! ```

pub mod experiments;
pub mod workload;

/// Convenient re-exports of the most-used workspace types.
pub mod prelude {
    pub use crate::workload::{paper_workload, NetworkWorkload};
    pub use cs_accel::config::AccelConfig;
    pub use cs_accel::exec::Accelerator;
    pub use cs_accel::timing::{simulate_layer, simulate_layer_dense, LayerTiming};
    pub use cs_compress::config::{LayerCompressionConfig, ModelCompressionConfig};
    pub use cs_compress::format::SharedIndexLayer;
    pub use cs_compress::pipeline::{compress_layer, compress_model, ModelReport};
    pub use cs_nn::spec::{LayerClass, LayerSpec, Model, NetworkSpec, Scale};
    pub use cs_nn::{Layer, LayerKind, Network};
    pub use cs_serve::loadgen::{run_sweep, SweepConfig, SweepReport};
    pub use cs_serve::{
        InferRequest, InferResponse, ModelRegistry, ServableModel, ServeConfig, ServeError,
        ServeSnapshot, Server,
    };
    pub use cs_sparsity::coarse::{CoarseConfig, PruneMetric};
    pub use cs_sparsity::Mask;
}

pub use prelude::*;

/// Renders a simple aligned text table: `header` then rows.
pub(crate) fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_table_aligns() {
        let t = super::render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with(" 2"));
    }
}
