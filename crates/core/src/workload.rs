//! The paper's benchmark networks as accelerator workloads.
//!
//! A [`NetworkWorkload`] pairs every weighted layer of a model with the
//! sparsity parameters the paper publishes: static densities from the
//! compression targets (Table IV) and dynamic neuron densities from the
//! measured DNS values (Table III). Timing experiments run these through
//! the Cambricon-S and baseline models.

use cs_accel::config::AccelConfig;
use cs_accel::timing::{simulate_layer, simulate_layer_dense, LayerTiming, TimingRun};
use cs_compress::config::ModelCompressionConfig;
use cs_nn::spec::{LayerClass, Model, NetworkSpec, Scale};

/// One layer of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadLayer {
    /// Timing summary (shape + sparsity + bit width).
    pub timing: LayerTiming,
    /// Layer class for per-class reporting (Figs. 16/17).
    pub class: LayerClass,
}

/// A full network ready for timing simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWorkload {
    /// Which benchmark this is.
    pub model: Model,
    /// Weighted layers in execution order.
    pub layers: Vec<WorkloadLayer>,
}

/// Dynamic neuron density (DNS, non-zero fraction) per model and class,
/// from the paper's Table III. LSTM state values come from saturating
/// nonlinearities and are essentially never exactly zero.
pub fn paper_dns(model: Model, class: LayerClass) -> f64 {
    let (c, f) = match model {
        Model::LeNet5 => (1.0, 0.885),
        Model::Mlp => (1.0, 0.3369),
        Model::Cifar10Quick => (0.6939, 0.8007),
        Model::AlexNet => (0.6237, 0.6073),
        Model::Vgg16 => (0.4052, 0.5697),
        Model::ResNet152 => (0.4970, 0.7590),
        Model::Lstm => (1.0, 1.0),
    };
    match class {
        LayerClass::Convolutional => c,
        LayerClass::FullyConnected => f,
        LayerClass::Lstm => 1.0,
        LayerClass::Pooling => 1.0,
    }
}

/// Builds the workload for one model with the paper's published
/// sparsities and quantization bit widths.
pub fn paper_workload(model: Model, scale: Scale) -> NetworkWorkload {
    let spec = NetworkSpec::model(model, scale);
    let cfg = ModelCompressionConfig::paper(model);
    let mut layers = Vec::new();
    let mut first = true;
    for layer in spec.weighted_layers() {
        let lc = cfg.for_layer(layer);
        // The first layer consumes the dense input image/features.
        let dd = if first {
            1.0
        } else {
            paper_dns(model, layer.class())
        };
        first = false;
        let timing = LayerTiming::from_spec(layer, lc.target_density, dd, lc.quant_bits);
        layers.push(WorkloadLayer {
            timing,
            class: layer.class(),
        });
    }
    NetworkWorkload { model, layers }
}

impl NetworkWorkload {
    /// Simulates every layer on Cambricon-S (sparse), returning per-layer
    /// runs.
    pub fn run_ours(&self, cfg: &AccelConfig) -> Vec<TimingRun> {
        self.layers
            .iter()
            .map(|l| simulate_layer(cfg, &l.timing))
            .collect()
    }

    /// Simulates every layer on Cambricon-S with the dense
    /// representation (ACC-dense).
    pub fn run_ours_dense(&self, cfg: &AccelConfig) -> Vec<TimingRun> {
        self.layers
            .iter()
            .map(|l| simulate_layer_dense(cfg, &l.timing))
            .collect()
    }

    /// Total sparse-execution cycles on Cambricon-S at the paper build.
    pub fn total_cycles_ours(&self) -> u64 {
        self.run_ours(&AccelConfig::paper_default())
            .iter()
            .map(|r| r.stats.cycles)
            .sum()
    }

    /// Layers of one class only.
    pub fn class_layers(&self, class: LayerClass) -> Vec<&WorkloadLayer> {
        self.layers.iter().filter(|l| l.class == class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_workloads() {
        for m in Model::all() {
            let wl = paper_workload(m, Scale::Full);
            assert!(!wl.layers.is_empty(), "{m}");
            for l in &wl.layers {
                assert!(l.timing.static_density > 0.0);
                assert!(l.timing.dynamic_density > 0.0);
            }
        }
    }

    #[test]
    fn alexnet_layer_parameters_match_paper() {
        let wl = paper_workload(Model::AlexNet, Scale::Full);
        let conv2 = wl.layers.iter().find(|l| l.timing.name == "conv2").unwrap();
        assert!((conv2.timing.static_density - 0.3525).abs() < 1e-9);
        assert!((conv2.timing.dynamic_density - 0.6237).abs() < 1e-9);
        assert_eq!(conv2.timing.weight_bits, 8);
        let fc7 = wl.layers.iter().find(|l| l.timing.name == "fc7").unwrap();
        assert!((fc7.timing.static_density - 0.1007).abs() < 1e-9);
        assert_eq!(fc7.timing.weight_bits, 4);
    }

    #[test]
    fn first_layer_sees_dense_input() {
        let wl = paper_workload(Model::Vgg16, Scale::Full);
        assert_eq!(wl.layers[0].timing.dynamic_density, 1.0);
        assert!(wl.layers[1].timing.dynamic_density < 1.0);
    }

    #[test]
    fn sparse_runs_beat_dense_runs() {
        let wl = paper_workload(Model::AlexNet, Scale::Full);
        let cfg = AccelConfig::paper_default();
        let sparse: u64 = wl.run_ours(&cfg).iter().map(|r| r.stats.cycles).sum();
        let dense: u64 = wl.run_ours_dense(&cfg).iter().map(|r| r.stats.cycles).sum();
        let speedup = dense as f64 / sparse as f64;
        assert!((2.0..10.0).contains(&speedup), "ACC-dense/ours {speedup}");
    }

    #[test]
    fn lstm_has_no_dynamic_sparsity() {
        assert_eq!(paper_dns(Model::Lstm, LayerClass::Lstm), 1.0);
    }
}
