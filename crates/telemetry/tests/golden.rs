//! Golden-file tests for the exporters: a deterministic event sequence
//! (manual clock, fixed values) must render byte-for-byte identically
//! to the checked-in `tests/golden/*` files.
//!
//! Regenerate after an intentional format change with
//! `TELEMETRY_BLESS=1 cargo test -p cs-telemetry --test golden`.

use std::path::PathBuf;
use std::sync::Arc;

use cs_telemetry::{label, Labels, ManualClock, Recorder, Registry, Span};

/// A registry shaped like the serving path's, fed a fixed sequence.
fn sample_registry() -> Registry {
    let r = Registry::new();
    let clock = Arc::new(ManualClock::new(0));

    r.counter(
        "serve_requests_submitted_total",
        "Requests admitted into the queue",
        Labels::new(),
    )
    .add(9);
    r.counter(
        "serve_requests_rejected_total",
        "Requests rejected with Overloaded",
        Labels::new(),
    )
    .add(2);

    let depth = r.gauge(
        "serve_queue_depth",
        "Requests admitted but not yet batched",
        Labels::new(),
    );
    depth.add(5);
    depth.sub(3);

    let wait = r.histogram(
        "serve_queue_wait_us",
        "Enqueue-to-dequeue wait per request",
        Labels::new(),
        &[10, 100, 1_000],
    );
    for us in [7u64, 10, 90, 100, 900, 4_000] {
        let span = Span::start(clock.clone(), wait.clone());
        clock.advance(us);
        span.finish();
    }

    let size = r.histogram(
        "serve_batch_size",
        "Requests per closed batch",
        Labels::new(),
        &[1, 2, 3, 4],
    );
    for s in [1u64, 4, 4] {
        size.observe(s);
    }

    for (worker, busy) in [(0u64, 1_500u64), (1, 2_500)] {
        r.counter(
            "serve_worker_busy_us",
            "Wall-clock time spent executing batches",
            label("worker", worker),
        )
        .add(busy);
    }
    r
}

fn check(golden_name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(golden_name);
    if std::env::var_os("TELEMETRY_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {} failed ({e}); regenerate with TELEMETRY_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{golden_name} drifted from the golden file; if the format change \
         is intentional, regenerate with TELEMETRY_BLESS=1"
    );
}

#[test]
fn prometheus_rendering_matches_golden() {
    let text = sample_registry()
        .prometheus_text()
        .expect("registry retains state");
    check("serve_sample.prom", &text);
}

#[test]
fn jsonl_rendering_matches_golden() {
    let text = sample_registry().jsonl().expect("registry retains state");
    check("serve_sample.jsonl", &text);
}
