//! Text exporters: Prometheus exposition format and JSONL.
//!
//! Both render a [`Registry`] deterministically — families sorted by
//! name, series by labels — so the outputs are golden-file testable.
//! The JSONL form is one self-contained JSON object per series per
//! line, convenient for appending per-run metric artifacts in CI.

use std::fmt::Write as _;

use crate::recorder::{Handle, Registry};

fn render_label_pairs(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders every metric in Prometheus text exposition format.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for family in registry.sorted_families() {
        let kind = match family.series.first() {
            Some(s) => match s.handle {
                Handle::Counter(_) => "counter",
                Handle::Gauge(_) => "gauge",
                Handle::Histogram(_) => "histogram",
            },
            None => continue,
        };
        let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
        let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
        for series in &family.series {
            let pairs = render_label_pairs(&series.labels);
            let braced = |extra: &str| -> String {
                match (pairs.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{pairs}}}"),
                    (false, false) => format!("{{{pairs},{extra}}}"),
                }
            };
            match &series.handle {
                Handle::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", family.name, braced(""), c.get());
                }
                Handle::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", family.name, braced(""), g.get());
                    let _ = writeln!(out, "{}_max{} {}", family.name, braced(""), g.max());
                }
                Handle::Histogram(h) => {
                    let Some(snap) = h.snapshot() else { continue };
                    let mut cum = 0u64;
                    for (i, count) in snap.counts.iter().enumerate() {
                        cum += count;
                        let le = if i < snap.bounds.len() {
                            snap.bounds[i].to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            braced(&format!("le=\"{le}\"")),
                            cum
                        );
                    }
                    let _ = writeln!(out, "{}_sum{} {}", family.name, braced(""), snap.sum);
                    let _ = writeln!(out, "{}_count{} {}", family.name, braced(""), snap.count);
                }
            }
        }
    }
    out
}

/// Renders every metric as JSONL: one JSON object per series per line.
pub fn render_jsonl(registry: &Registry) -> String {
    let mut out = String::new();
    for family in registry.sorted_families() {
        for series in &family.series {
            let labels = series
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            match &series.handle {
                Handle::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"kind\":\"counter\",\"labels\":{{{labels}}},\"value\":{}}}",
                        family.name,
                        c.get()
                    );
                }
                Handle::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"kind\":\"gauge\",\"labels\":{{{labels}}},\"value\":{},\"max\":{}}}",
                        family.name,
                        g.get(),
                        g.max()
                    );
                }
                Handle::Histogram(h) => {
                    let Some(snap) = h.snapshot() else { continue };
                    let mut buckets = String::new();
                    let mut cum = 0u64;
                    for (i, count) in snap.counts.iter().enumerate() {
                        cum += count;
                        if i > 0 {
                            buckets.push(',');
                        }
                        let le = if i < snap.bounds.len() {
                            snap.bounds[i].to_string()
                        } else {
                            "\"+Inf\"".to_string()
                        };
                        let _ = write!(buckets, "{{\"le\":{le},\"count\":{cum}}}");
                    }
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"kind\":\"histogram\",\"labels\":{{{labels}}},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{buckets}]}}",
                        family.name,
                        snap.count,
                        snap.sum,
                        snap.min,
                        snap.max,
                        snap.quantile(0.50),
                        snap.quantile(0.95),
                        snap.quantile(0.99),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{label, Labels, Recorder};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("requests_total", "Requests admitted", Labels::new())
            .add(7);
        r.gauge("queue_depth", "Live queue depth", Labels::new())
            .set(3);
        let h = r.histogram("wait_us", "Queue wait", Labels::new(), &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        r.counter("busy_us", "Worker busy time", label("worker", 1))
            .add(42);
        r
    }

    #[test]
    fn prometheus_rendering_is_complete_and_cumulative() {
        let text = render_prometheus(&sample_registry());
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 7"));
        assert!(text.contains("queue_depth 3"));
        assert!(text.contains("queue_depth_max 3"));
        assert!(text.contains("wait_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("wait_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("wait_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("wait_us_sum 5055"));
        assert!(text.contains("wait_us_count 3"));
        assert!(text.contains("busy_us{worker=\"1\"} 42"));
    }

    #[test]
    fn jsonl_renders_one_valid_object_per_line() {
        let text = render_jsonl(&sample_registry());
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // Braces balance — a cheap structural check without a JSON
            // parser in the dependency-free build.
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            assert_eq!(opens, closes, "{line}");
        }
        assert!(text.contains("\"kind\":\"histogram\""));
        assert!(text.contains("\"le\":\"+Inf\""));
        assert!(text.contains("\"labels\":{\"worker\":\"1\"}"));
    }

    #[test]
    fn renderings_are_sorted_and_deterministic() {
        let a = render_prometheus(&sample_registry());
        let b = render_prometheus(&sample_registry());
        assert_eq!(a, b);
        let busy = a.find("busy_us").unwrap_or(usize::MAX);
        let wait = a.find("wait_us").unwrap_or(0);
        assert!(busy < wait, "families sorted by name");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c", "h", vec![("k".into(), "a\"b\\c".into())])
            .inc();
        let text = render_prometheus(&r);
        assert!(text.contains("c{k=\"a\\\"b\\\\c\"} 1"));
    }
}
