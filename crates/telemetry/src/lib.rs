//! Zero-dependency telemetry for the Cambricon-S workspace: counters,
//! gauges, fixed-bucket mergeable histograms and span timers behind a
//! [`Recorder`] trait, with deterministic clocks and Prometheus/JSONL
//! exporters.
//!
//! The serving runtime (`cs-serve`), the simulator stack, and the
//! experiment drivers all instrument through this crate:
//!
//! * Handles ([`Counter`], [`Gauge`], [`Histogram`]) are fetched once
//!   at startup from a [`Recorder`] and updated lock-free on the hot
//!   path. The stock [`NoopRecorder`] issues handles that discard
//!   updates, so uninstrumented runs pay (almost) nothing.
//! * Time is injected through [`Clock`]: production uses
//!   [`MonotonicClock`], tests pin every duration with [`ManualClock`],
//!   which makes latency histograms and [`Span`] measurements exactly
//!   reproducible.
//! * A [`Registry`] recorder retains everything for export as
//!   Prometheus text ([`export::render_prometheus`]) or JSONL
//!   ([`export::render_jsonl`]).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cs_telemetry::{buckets, label, Labels, ManualClock, Recorder, Registry, Span};
//!
//! let registry = Arc::new(Registry::new());
//! let clock = Arc::new(ManualClock::new(0));
//!
//! let served = registry.counter("served_total", "Requests served", Labels::new());
//! let wait = registry.histogram(
//!     "wait_us", "Queue wait", label("lane", 0), &buckets::duration_us());
//!
//! let span = Span::start(clock.clone(), wait.clone());
//! clock.advance(250);
//! span.finish();
//! served.inc();
//!
//! assert_eq!(wait.sum(), 250);
//! let text = registry.prometheus_text().unwrap();
//! assert!(text.contains("served_total 1"));
//! ```

#![deny(missing_docs)]
// Telemetry must never take down the system it observes: no panics on
// the recording path.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{
    buckets, percentile_of_sorted, rank_for_quantile, Counter, Gauge, Histogram, HistogramSnapshot,
};
pub use recorder::{label, Labels, NoopRecorder, Recorder, Registry};
pub use span::Span;
