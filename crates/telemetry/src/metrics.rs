//! Metric primitives: counters, gauges and fixed-bucket histograms.
//!
//! Every primitive is a cheap cloneable *handle*. A handle is either
//! live (backed by atomics shared with the [`crate::Registry`] that
//! issued it) or a no-op (issued by [`crate::NoopRecorder`]); the hot
//! path updates it without branching on configuration, locking, or
//! allocating. All values are `u64` — microseconds, cycles, bytes,
//! sizes — which keeps exports exact and histograms mergeable.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// The 1-based rank a quantile addresses in a population of `n`
/// samples: `ceil(q * n)` clamped to `[1, n]`.
///
/// This is the *single* rank rule in the workspace: the exact
/// percentiles in `cs-serve`'s `ServeSnapshot` and the bucketed
/// [`Histogram::quantile`] both use it, so they agree whenever samples
/// land on bucket bounds.
pub fn rank_for_quantile(q: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

/// Exact quantile of an ascending-sorted sample slice under the
/// [`rank_for_quantile`] rule; `0` for an empty slice.
pub fn percentile_of_sorted(sorted: &[u64], q: f64) -> u64 {
    match rank_for_quantile(q, sorted.len()) {
        0 => 0,
        rank => sorted[rank - 1],
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op handle; increments vanish.
    pub fn noop() -> Self {
        Counter(None)
    }

    pub(crate) fn live() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(v) = &self.0 {
            v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (`0` for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |v| v.load(Ordering::Relaxed))
    }

    /// Whether this handle records anywhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicI64,
    max: AtomicI64,
}

/// An instantaneous level (queue depth, buffer occupancy) with a
/// high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeInner>>);

impl Gauge {
    /// A no-op handle; updates vanish.
    pub fn noop() -> Self {
        Gauge(None)
    }

    pub(crate) fn live() -> Self {
        Gauge(Some(Arc::new(GaugeInner::default())))
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.value.store(v, Ordering::Relaxed);
            g.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Moves the level up by `n`.
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            let now = g.value.fetch_add(n, Ordering::Relaxed) + n;
            g.max.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Moves the level down by `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current level (`0` for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |g| g.value.load(Ordering::Relaxed))
    }

    /// Highest level ever set (`0` for a no-op handle).
    pub fn max(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.max.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Ascending, strictly increasing upper bounds; one overflow bucket
    /// past the last bound makes the counts slice one entry longer.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// An immutable copy of a histogram's state, used by the exporters and
/// for cross-recorder merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending); the overflow bucket is implied.
    pub bounds: Vec<u64>,
    /// Per-bucket counts, one longer than `bounds` (last is overflow).
    pub counts: Vec<u64>,
    /// Total samples observed.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`0` when empty).
    pub min: u64,
    /// Largest observed value (`0` when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Quantile estimate under the shared [`rank_for_quantile`] rule:
    /// the upper bound of the first bucket whose cumulative count
    /// reaches the rank (the observed maximum for the overflow bucket).
    /// Exact whenever samples land on bucket bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        let rank = rank_for_quantile(q, self.count as usize) as u64;
        if rank == 0 {
            return 0;
        }
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Mean observed value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A fixed-bucket histogram of `u64` values.
///
/// Buckets are cumulative-exportable (Prometheus `le` semantics) and
/// two histograms with identical bounds merge by adding counts.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// A no-op handle; observations vanish.
    pub fn noop() -> Self {
        Histogram(None)
    }

    pub(crate) fn live(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Some(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        })))
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = h.bounds.partition_point(|b| *b < v);
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.min.fetch_min(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Total samples observed (`0` for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of observed values (`0` for a no-op handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// Quantile estimate; see [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().map_or(0, |s| s.quantile(q))
    }

    /// Copies the current state out (`None` for a no-op handle).
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        let h = self.0.as_ref()?;
        let count = h.count.load(Ordering::Relaxed);
        let min = h.min.load(Ordering::Relaxed);
        Some(HistogramSnapshot {
            bounds: h.bounds.clone(),
            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: h.max.load(Ordering::Relaxed),
        })
    }

    /// Adds another histogram's samples into this one. Both handles
    /// must be live with identical bounds; returns whether the merge
    /// happened.
    pub fn merge(&self, other: &Histogram) -> bool {
        let (Some(h), Some(o)) = (&self.0, &other.0) else {
            return false;
        };
        if h.bounds != o.bounds {
            return false;
        }
        for (dst, src) in h.counts.iter().zip(&o.counts) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let src_count = o.count.load(Ordering::Relaxed);
        h.count.fetch_add(src_count, Ordering::Relaxed);
        h.sum
            .fetch_add(o.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        if src_count > 0 {
            h.min
                .fetch_min(o.min.load(Ordering::Relaxed), Ordering::Relaxed);
            h.max
                .fetch_max(o.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        true
    }
}

/// Stock bucket layouts for the metrics this workspace records.
pub mod buckets {
    /// Microsecond durations: sub-µs to 10 s, roughly 1-2-5 per decade.
    /// The leading `0` bound gives zero-duration samples (manual-clock
    /// runs) their own bucket, so quantiles stay exact there.
    pub fn duration_us() -> Vec<u64> {
        let mut b = vec![0];
        for decade in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            b.extend([decade, 2 * decade, 5 * decade]);
        }
        b.push(10_000_000);
        b
    }

    /// Simulated cycle counts: 1 k to 1 G, 1-2-5 per decade.
    pub fn cycles() -> Vec<u64> {
        let mut b = vec![0];
        for decade in [
            1_000u64,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
        ] {
            b.extend([decade, 2 * decade, 5 * decade]);
        }
        b.push(1_000_000_000);
        b
    }

    /// Small cardinalities (batch sizes): one bucket per size up to
    /// `max`, so the histogram is exact.
    pub fn exact(max: u64) -> Vec<u64> {
        (1..=max).collect()
    }

    /// Byte volumes: 64 B to 64 MiB in powers of four.
    pub fn bytes() -> Vec<u64> {
        (0..=10).map(|i| 64u64 << (2 * i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_rule_matches_exact_percentiles() {
        let sorted: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        assert_eq!(percentile_of_sorted(&sorted, 0.50), 500);
        assert_eq!(percentile_of_sorted(&sorted, 0.95), 1000);
        assert_eq!(percentile_of_sorted(&sorted, 0.99), 1000);
        assert_eq!(percentile_of_sorted(&[], 0.5), 0);
        assert_eq!(rank_for_quantile(0.0, 10), 1, "q=0 clamps to first");
        assert_eq!(rank_for_quantile(1.0, 10), 10);
    }

    #[test]
    fn counter_counts_and_noop_vanishes() {
        let c = Counter::live();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.is_live());
        let n = Counter::noop();
        n.inc();
        assert_eq!(n.get(), 0);
        assert!(!n.is_live());
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::live();
        g.add(3);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 1);
        assert_eq!(g.max(), 5);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 5, "set below the mark keeps it");
    }

    #[test]
    fn histogram_buckets_values_at_bounds_inclusively() {
        let h = Histogram::live(&[10, 20, 50]);
        for v in [0, 10, 11, 20, 21, 50, 51, 1000] {
            h.observe(v);
        }
        let s = h.snapshot().unwrap();
        // le=10 gets {0,10}; le=20 gets {11,20}; le=50 gets {21,50};
        // overflow gets {51,1000}.
        assert_eq!(s.counts, vec![2, 2, 2, 2]);
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1163);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn histogram_quantile_is_exact_on_bucket_bounds() {
        let bounds: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let h = Histogram::live(&bounds);
        let mut samples: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        for v in &samples {
            h.observe(*v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), percentile_of_sorted(&samples, q), "q={q}");
        }
    }

    #[test]
    fn overflow_quantile_reports_observed_max() {
        let h = Histogram::live(&[10]);
        h.observe(500);
        h.observe(700);
        assert_eq!(h.quantile(0.99), 700);
    }

    #[test]
    fn merge_requires_identical_bounds_and_adds() {
        let a = Histogram::live(&[10, 20]);
        let b = Histogram::live(&[10, 20]);
        a.observe(5);
        b.observe(15);
        b.observe(25);
        assert!(a.merge(&b));
        let s = a.snapshot().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 25);
        let c = Histogram::live(&[99]);
        assert!(!a.merge(&c), "bound mismatch refuses the merge");
        assert!(!a.merge(&Histogram::noop()));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::live(&[1, 2]);
        let s = h.snapshot().unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(Histogram::noop().snapshot().is_none());
    }

    #[test]
    fn stock_buckets_are_strictly_increasing() {
        for b in [
            buckets::duration_us(),
            buckets::cycles(),
            buckets::exact(16),
            buckets::bytes(),
        ] {
            assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
        }
    }
}
