//! Injectable monotonic time source.
//!
//! Nothing in the telemetry layer (or the serving runtime built on it)
//! calls `Instant::now()` directly: time is read through a [`Clock`],
//! so latency percentiles, span durations and throughput figures can be
//! tested deterministically with a [`ManualClock`] and driven by a
//! [`MonotonicClock`] in production.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond counter.
///
/// Implementations must be monotonic (never run backwards) and safe to
/// read from any thread.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Wall-clock implementation backed by [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        // u64 microseconds cover ~584k years of uptime; the truncation
        // can never fire in practice.
        self.origin.elapsed().as_micros() as u64
    }
}

/// Hand-advanced clock for deterministic tests.
///
/// Time only moves when [`ManualClock::advance`] or [`ManualClock::set`]
/// is called, so a test controls exactly what duration every sample gets.
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_us`.
    pub fn new(start_us: u64) -> Self {
        ManualClock {
            us: AtomicU64::new(start_us),
        }
    }

    /// Moves the clock forward by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        self.us.fetch_add(delta_us, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute time. Saturates monotonically: a
    /// target earlier than the current reading is ignored.
    pub fn set(&self, us: u64) {
        self.us.fetch_max(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_never_rewinds() {
        let c = ManualClock::new(100);
        assert_eq!(c.now_us(), 100);
        c.advance(50);
        assert_eq!(c.now_us(), 150);
        c.set(40);
        assert_eq!(c.now_us(), 150, "set must not rewind");
        c.set(400);
        assert_eq!(c.now_us(), 400);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now_us();
        assert!(b > a);
    }
}
