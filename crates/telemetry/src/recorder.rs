//! The [`Recorder`] trait, the exporting [`Registry`], and the free
//! [`NoopRecorder`].
//!
//! Instrumented code asks a recorder for named handles **once, at
//! startup**, then updates the handles on the hot path; registration
//! may lock and allocate, updates never do. The default recorder is a
//! [`NoopRecorder`], whose handles compile down to a branch on a
//! `None` — uninstrumented deployments pay nothing.

use std::sync::Mutex;

use crate::metrics::{Counter, Gauge, Histogram};

/// Label pairs attached to one metric series (e.g. `worker` → `"0"`).
/// Registration-time only, so owned strings are fine.
pub type Labels = Vec<(String, String)>;

/// Convenience for the common single-label case.
pub fn label(key: &str, value: impl ToString) -> Labels {
    vec![(key.to_string(), value.to_string())]
}

/// Issues metric handles. Implementations decide whether the handles
/// record ([`Registry`]) or vanish ([`NoopRecorder`]).
///
/// Re-registering the same `(name, labels)` must return a handle to
/// the same underlying series, so sequential components (e.g. one
/// server per sweep point) accumulate into shared metrics.
pub trait Recorder: Send + Sync {
    /// A monotonically increasing counter.
    fn counter(&self, name: &'static str, help: &'static str, labels: Labels) -> Counter;

    /// An instantaneous level with a high-water mark.
    fn gauge(&self, name: &'static str, help: &'static str, labels: Labels) -> Gauge;

    /// A fixed-bucket histogram with the given upper bounds.
    fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        bounds: &[u64],
    ) -> Histogram;

    /// Prometheus text-format dump of everything recorded, if this
    /// recorder retains state (`None` for no-op recorders). Lets
    /// holders of a `dyn Recorder` (e.g. a server handle) serve a
    /// `/metrics`-style page without knowing the concrete type.
    fn prometheus_text(&self) -> Option<String> {
        None
    }

    /// JSONL dump (one metric series per line), if this recorder
    /// retains state.
    fn jsonl(&self) -> Option<String> {
        None
    }
}

/// A recorder whose handles discard every update.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _: &'static str, _: &'static str, _: Labels) -> Counter {
        Counter::noop()
    }

    fn gauge(&self, _: &'static str, _: &'static str, _: Labels) -> Gauge {
        Gauge::noop()
    }

    fn histogram(&self, _: &'static str, _: &'static str, _: Labels, _: &[u64]) -> Histogram {
        Histogram::noop()
    }
}

/// One live handle inside a [`Registry`].
#[derive(Debug, Clone)]
pub(crate) enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// One labeled series of a metric family.
#[derive(Debug, Clone)]
pub(crate) struct Series {
    pub(crate) labels: Labels,
    pub(crate) handle: Handle,
}

/// All series sharing a metric name.
#[derive(Debug, Clone)]
pub(crate) struct Family {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) series: Vec<Series>,
}

/// A recorder that retains every registered metric for export.
///
/// Handles stay live after registration, so updates are lock-free; the
/// registry itself locks only while registering or exporting.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-resolves) a series and returns its handle. A
    /// `(name, labels)` pair already registered with a *different*
    /// metric kind is a programming error and yields a no-op handle so
    /// the caller degrades instead of panicking.
    fn resolve(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self
            .families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name,
                    help,
                    series: Vec::new(),
                });
                families
                    .last_mut()
                    .unwrap_or_else(|| unreachable!("family was just pushed"))
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            return s.handle.clone();
        }
        let handle = make();
        if let Some(existing) = family.series.first() {
            if existing.handle.kind() != handle.kind() {
                debug_assert!(false, "metric {name} re-registered as a different kind");
                return match handle {
                    Handle::Counter(_) => Handle::Counter(Counter::noop()),
                    Handle::Gauge(_) => Handle::Gauge(Gauge::noop()),
                    Handle::Histogram(_) => Handle::Histogram(Histogram::noop()),
                };
            }
        }
        family.series.push(Series {
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Snapshot of the families for export, sorted by name and labels
    /// so renderings are stable regardless of registration order.
    pub(crate) fn sorted_families(&self) -> Vec<Family> {
        let mut families = self
            .families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        families.sort_by_key(|f| f.name);
        for f in &mut families {
            f.series.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        families
    }

    /// Looks up an already-registered counter by name and labels.
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        match self.find(name, labels)? {
            Handle::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// Looks up an already-registered gauge by name and labels.
    pub fn find_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<Gauge> {
        match self.find(name, labels)? {
            Handle::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// Looks up an already-registered histogram by name and labels.
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        match self.find(name, labels)? {
            Handle::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<Handle> {
        let families = self
            .families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let family = families.iter().find(|f| f.name == name)?;
        family
            .series
            .iter()
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.handle.clone())
    }
}

impl Recorder for Registry {
    fn counter(&self, name: &'static str, help: &'static str, labels: Labels) -> Counter {
        match self.resolve(name, help, labels, || Handle::Counter(Counter::live())) {
            Handle::Counter(c) => c,
            _ => Counter::noop(),
        }
    }

    fn gauge(&self, name: &'static str, help: &'static str, labels: Labels) -> Gauge {
        match self.resolve(name, help, labels, || Handle::Gauge(Gauge::live())) {
            Handle::Gauge(g) => g,
            _ => Gauge::noop(),
        }
    }

    fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        bounds: &[u64],
    ) -> Histogram {
        match self.resolve(name, help, labels, || {
            Handle::Histogram(Histogram::live(bounds))
        }) {
            Handle::Histogram(h) => h,
            _ => Histogram::noop(),
        }
    }

    fn prometheus_text(&self) -> Option<String> {
        Some(crate::export::render_prometheus(self))
    }

    fn jsonl(&self) -> Option<String> {
        Some(crate::export::render_jsonl(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistration_returns_the_same_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", Labels::new());
        let b = r.counter("x_total", "help", Labels::new());
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit one series");
        let lane0 = r.counter("x_total", "help", label("lane", 0));
        lane0.inc();
        assert_eq!(a.get(), 3, "labeled series is distinct");
        assert_eq!(
            r.find_counter("x_total", &[("lane", "0")]).unwrap().get(),
            1
        );
        assert!(r.find_counter("x_total", &[("lane", "9")]).is_none());
        assert!(r.find_counter("missing", &[]).is_none());
    }

    #[test]
    fn noop_recorder_handles_vanish() {
        let r = NoopRecorder;
        let c = r.counter("a", "h", Labels::new());
        c.inc();
        assert_eq!(c.get(), 0);
        let h = r.histogram("b", "h", Labels::new(), &[1, 2]);
        h.observe(5);
        assert_eq!(h.count(), 0);
        assert!(r.prometheus_text().is_none());
        assert!(r.jsonl().is_none());
    }

    #[test]
    fn lookup_distinguishes_kinds() {
        let r = Registry::new();
        let _ = r.gauge("depth", "h", Labels::new());
        assert!(r.find_gauge("depth", &[]).is_some());
        assert!(r.find_counter("depth", &[]).is_none());
        assert!(r.find_histogram("depth", &[]).is_none());
    }
}
