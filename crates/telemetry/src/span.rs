//! Span-style timers: measure a region's duration on an injected
//! clock and record it into a [`Histogram`].

use std::sync::Arc;

use crate::clock::Clock;
use crate::metrics::Histogram;

/// An in-flight timed region. Records its duration into the histogram
/// when finished — explicitly via [`Span::finish`] (which also returns
/// the duration), or implicitly on drop, so early returns and `?` exits
/// are still accounted.
pub struct Span {
    clock: Arc<dyn Clock>,
    hist: Option<Histogram>,
    start_us: u64,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("start_us", &self.start_us)
            .finish_non_exhaustive()
    }
}

impl Span {
    /// Starts timing now.
    pub fn start(clock: Arc<dyn Clock>, hist: Histogram) -> Self {
        let start_us = clock.now_us();
        Span {
            clock,
            hist: Some(hist),
            start_us,
        }
    }

    /// Clock reading when the span started.
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Microseconds elapsed so far, without ending the span.
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }

    /// Ends the span, records the duration, and returns it.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_us();
        if let Some(h) = self.hist.take() {
            h.observe(elapsed);
        }
        elapsed
    }

    /// Ends the span without recording (e.g. the measured operation
    /// failed and should not pollute the latency distribution).
    pub fn cancel(mut self) {
        self.hist = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.observe(self.clock.now_us().saturating_sub(self.start_us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn finish_records_the_manual_duration() {
        let clock = Arc::new(ManualClock::new(0));
        let hist = Histogram::live(&[10, 100]);
        let span = Span::start(Arc::clone(&clock) as Arc<dyn Clock>, hist.clone());
        clock.advance(42);
        assert_eq!(span.elapsed_us(), 42);
        assert_eq!(span.finish(), 42);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 42);
    }

    #[test]
    fn drop_records_and_cancel_does_not() {
        let clock = Arc::new(ManualClock::new(5));
        let hist = Histogram::live(&[10]);
        {
            let _span = Span::start(Arc::clone(&clock) as Arc<dyn Clock>, hist.clone());
            clock.advance(7);
        }
        assert_eq!(hist.count(), 1, "drop records");
        assert_eq!(hist.sum(), 7);
        let span = Span::start(Arc::clone(&clock) as Arc<dyn Clock>, hist.clone());
        clock.advance(100);
        span.cancel();
        assert_eq!(hist.count(), 1, "cancel suppresses the sample");
    }
}
