//! Property-based tests for pruning, masks and index encodings.

use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
use cs_sparsity::indexing::{self, StepIndex};
use cs_sparsity::{fine, stats, structured, Mask, PruneMode};
use cs_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn weights(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut x = seed | 1;
    Tensor::from_fn(Shape::d2(rows, cols), |_| {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    })
}

proptest! {
    /// Step-index encoding recovers exactly the surviving positions for
    /// any mask and any field width.
    #[test]
    fn step_index_roundtrip(bits_vec in proptest::collection::vec(any::<bool>(), 1..2000),
                            width in 2u8..12) {
        let n = bits_vec.len();
        let mask = Mask::from_bits(Shape::d1(n), bits_vec.clone()).unwrap();
        let si = StepIndex::encode(&mask, width);
        let want: Vec<usize> = bits_vec.iter().enumerate()
            .filter(|(_, b)| **b).map(|(i, _)| i).collect();
        prop_assert_eq!(si.positions(), want);
    }

    /// Step-index size is survivors + placeholders, each `width` bits.
    #[test]
    fn step_index_size_formula(bits_vec in proptest::collection::vec(any::<bool>(), 1..1000),
                               width in 2u8..10) {
        let n = bits_vec.len();
        let mask = Mask::from_bits(Shape::d1(n), bits_vec).unwrap();
        let si = StepIndex::encode(&mask, width);
        prop_assert_eq!(si.size_bits(),
                        (mask.ones() + si.placeholders()) * usize::from(width));
    }

    /// Round-trip over the full supported field-width range, including
    /// the extremes 1 (every gap > 1 saturates) and 16.
    #[test]
    fn step_index_roundtrip_all_widths(bits_vec in proptest::collection::vec(any::<bool>(), 1..300),
                                       width in 1u8..=16) {
        let n = bits_vec.len();
        let mask = Mask::from_bits(Shape::d1(n), bits_vec.clone()).unwrap();
        let si = StepIndex::encode(&mask, width);
        let want: Vec<usize> = bits_vec.iter().enumerate()
            .filter(|(_, b)| **b).map(|(i, _)| i).collect();
        prop_assert_eq!(si.positions(), want);
        prop_assert_eq!(si.len, n);
    }

    /// Gap-driven masks stress saturated placeholder chains: survivors sit
    /// at arbitrary cumulative gaps (including a survivor at position 0
    /// when the first gap is 1) followed by a trailing pruned run. The
    /// placeholder and size accounting must match an independent count:
    /// a survivor whose gap is `g` costs `(g - 1) / max_gap` placeholders.
    #[test]
    fn step_index_saturated_chains_account_exactly(
        gaps in proptest::collection::vec(1usize..2000, 1..30),
        trailing in 0usize..400,
        width in 1u8..=16)
    {
        let mut positions = Vec::new();
        let mut pos = 0usize;
        for g in &gaps {
            pos += g;
            positions.push(pos - 1);
        }
        let n = pos + trailing;
        let mut bits = vec![false; n];
        for p in &positions {
            bits[*p] = true;
        }
        let mask = Mask::from_bits(Shape::d1(n), bits).unwrap();
        let si = StepIndex::encode(&mask, width);
        prop_assert_eq!(si.positions(), positions);
        // Trailing pruned positions still count toward the span but never
        // produce entries.
        prop_assert_eq!(si.len, n);
        let max_gap = (1usize << width) - 1;
        let want_ph: usize = gaps.iter().map(|g| (g - 1) / max_gap).sum();
        prop_assert_eq!(si.placeholders(), want_ph);
        prop_assert_eq!(si.stored_entries(), gaps.len() + want_ph);
        prop_assert_eq!(si.size_bits(), (gaps.len() + want_ph) * usize::from(width));
    }

    /// `best_encoding` never returns something bigger than direct.
    #[test]
    fn best_encoding_is_at_most_direct(bits_vec in proptest::collection::vec(any::<bool>(), 1..1000)) {
        let n = bits_vec.len();
        let mask = Mask::from_bits(Shape::d1(n), bits_vec).unwrap();
        let (_, size) = indexing::best_encoding(&mask, 8);
        prop_assert!(size <= indexing::direct_size_bits(&mask));
    }

    /// Coarse pruning under both metrics yields block-aligned masks, and
    /// the max-metric mask always keeps the single largest weight.
    #[test]
    fn coarse_metrics_invariants(rows in 4usize..40, cols in 4usize..40,
                                 block in 1usize..10, density in 0.1f64..0.9,
                                 seed in 0u64..500) {
        let w = weights(rows, cols, seed);
        for metric in [PruneMetric::Max, PruneMetric::Average] {
            let cfg = CoarseConfig::fc(block, block, metric);
            let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
            prop_assert!(coarse::is_block_aligned(&mask, &cfg));
        }
        // Max pruning keeps the block containing the global max weight
        // whenever at least one block survives at this density.
        let cfg = CoarseConfig::fc(block, block, PruneMetric::Max);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        let (mut best, mut bv) = (0usize, -1.0f32);
        for (i, v) in w.as_slice().iter().enumerate() {
            if v.abs() > bv {
                bv = v.abs();
                best = i;
            }
        }
        prop_assert!(mask.bits()[best], "largest weight pruned under max metric");
    }

    /// block_keep is consistent with the mask: a block bit is set iff
    /// some synapse in it survives.
    #[test]
    fn block_keep_consistency(rows in 4usize..30, cols in 4usize..30,
                              block in 1usize..8, density in 0.1f64..0.9,
                              seed in 0u64..200) {
        let w = weights(rows, cols, seed);
        let cfg = CoarseConfig::fc(block, block, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        let bk = coarse::block_keep(&mask, &cfg);
        prop_assert_eq!(bk.keep.iter().filter(|b| **b).count() > 0, mask.ones() > 0);
        // Total survivors equal the mask's ones (blocks are exclusive).
        let kept_blocks = bk.keep.iter().filter(|b| **b).count();
        prop_assert!(kept_blocks * block * block >= mask.ones());
    }

    /// SNS is 1.0 exactly when no input row is fully pruned; fine-grained
    /// SSS equals the requested density.
    #[test]
    fn stats_invariants(rows in 2usize..30, cols in 2usize..30,
                        density in 0.1f64..1.0, seed in 0u64..200) {
        let w = weights(rows, cols, seed);
        let mask = fine::prune_to_density(&w, density).unwrap();
        let sss = stats::synapse_sparsity(&mask);
        let expect = ((density * (rows * cols) as f64).round())
            .clamp(1.0, (rows * cols) as f64) / (rows * cols) as f64;
        prop_assert!((sss - expect).abs() < 1e-9);
        let sns = stats::static_neuron_sparsity(&mask);
        let dead_rows = (0..rows).filter(|r| {
            mask.bits()[r * cols..(r + 1) * cols].iter().all(|b| !*b)
        }).count();
        prop_assert!((sns - (rows - dead_rows) as f64 / rows as f64).abs() < 1e-9);
    }

    /// Applying a mask then extracting compact values matches filtering.
    #[test]
    fn compact_values_match_filter(rows in 1usize..20, cols in 1usize..20,
                                   density in 0.1f64..1.0, seed in 0u64..200) {
        let w = weights(rows, cols, seed);
        let mask = fine::prune_to_density(&w, density).unwrap();
        let compact = mask.compact_values(&w);
        let filtered: Vec<f32> = w.as_slice().iter().zip(mask.bits())
            .filter(|(_, b)| **b).map(|(v, _)| *v).collect();
        prop_assert_eq!(compact, filtered);
    }

    /// 2:4 keeps exactly min(2, group length) survivors in every group of
    /// 4 inputs of every output lane — even with tied magnitudes and
    /// all-zero groups, where the deterministic (|w| desc, index asc)
    /// ranking must still pick a unique pair.
    #[test]
    fn two_four_keeps_exactly_two_per_group(
        rows in 1usize..40, cols in 1usize..12,
        levels in proptest::collection::vec(0u8..4, 1..64))
    {
        // Tie-prone weights: only four distinct magnitudes, zeros common.
        let w = Tensor::from_fn(Shape::d2(rows, cols), |i| {
            (f32::from(levels[i % levels.len()]) - 1.0) * 0.25
        });
        let mask = structured::two_four_mask(&w).unwrap();
        prop_assert!(structured::satisfies_pattern(&mask, 4, 2));
        for o in 0..cols {
            for g0 in (0..rows).step_by(4) {
                let glen = (rows - g0).min(4);
                let kept = (g0..g0 + glen).filter(|i| mask.bits()[i * cols + o]).count();
                prop_assert_eq!(kept, glen.min(2), "lane {} group {}", o, g0);
            }
        }
    }

    /// Bank-balanced pruning keeps exactly min(k, bank length) survivors
    /// in every bank of every lane, for any geometry — including the
    /// degenerate shapes `k > bank` and `bank > rows`, which must
    /// degrade gracefully instead of panicking or over-selecting.
    #[test]
    fn bank_balanced_keeps_exactly_k_per_bank(
        rows in 1usize..40, cols in 1usize..10,
        bank in 2usize..12, k in 1usize..12, seed in 0u64..200)
    {
        let w = weights(rows, cols, seed);
        let mask = structured::bank_balanced_mask(&w, bank, k).unwrap();
        prop_assert!(structured::satisfies_pattern(&mask, bank, k));
        for o in 0..cols {
            for b0 in (0..rows).step_by(bank) {
                let blen = (rows - b0).min(bank);
                let kept = (b0..b0 + blen).filter(|i| mask.bits()[i * cols + o]).count();
                prop_assert_eq!(kept, blen.min(k), "lane {} bank {}", o, b0);
            }
        }
    }

    /// Structured pruning is idempotent: zeroing the pruned weights and
    /// re-pruning reproduces the same mask (survivors outrank the zeros
    /// they displaced, and kept zeros stay the lowest-index zeros).
    #[test]
    fn structured_prune_is_idempotent(
        rows in 1usize..32, cols in 1usize..8, seed in 0u64..200,
        bank in 2usize..9, k in 1usize..9)
    {
        for mode in [PruneMode::TwoFour, PruneMode::BankBalanced { bank, k }] {
            let w = weights(rows, cols, seed);
            let mask = structured::structured_mask(&w, &mode).unwrap();
            let densified = Tensor::from_fn(w.shape().clone(), |i| {
                if mask.bits()[i] { w.as_slice()[i] } else { 0.0 }
            });
            let again = structured::structured_mask(&densified, &mode).unwrap();
            prop_assert_eq!(&again, &mask);
        }
    }

    /// Geometric pattern density matches the measured density of an
    /// actually pruned mask, for every shape.
    #[test]
    fn pattern_density_matches_measured(
        rows in 1usize..48, cols in 1usize..10, seed in 0u64..100,
        bank in 2usize..9, k in 1usize..9)
    {
        for mode in [PruneMode::TwoFour, PruneMode::BankBalanced { bank, k }] {
            let w = weights(rows, cols, seed);
            let mask = structured::structured_mask(&w, &mode).unwrap();
            let geo = stats::pattern_density(&mode, w.shape()).unwrap();
            prop_assert!((geo - mask.density()).abs() < 1e-12);
        }
    }

    /// Degenerate bank-balanced geometry: `k >= bank` is a full mask,
    /// and a bank wider than the row selects exactly the top `min(k,
    /// rows)` of the single ragged bank.
    #[test]
    fn bank_balanced_degenerate_geometry_degrades_to_full_mask(
        rows in 1usize..32, cols in 1usize..8,
        bank in 1usize..64, extra in 0usize..16, seed in 0u64..200)
    {
        let w = weights(rows, cols, seed);
        // k >= bank: every bank keeps everything.
        let k = bank + extra;
        let mask = structured::bank_balanced_mask(&w, bank, k).unwrap();
        prop_assert_eq!(mask.ones(), rows * cols);
        prop_assert!(structured::satisfies_pattern(&mask, bank, k));
        // bank wider than the row: one ragged bank keeping min(k, rows).
        let wide = rows + 1 + extra;
        let k2 = (bank).min(wide);
        let mask2 = structured::bank_balanced_mask(&w, wide, k2).unwrap();
        prop_assert_eq!(mask2.ones(), rows.min(k2) * cols);
        prop_assert!(structured::satisfies_pattern(&mask2, wide, k2));
        prop_assert_eq!(
            structured::survivors_per_lane(rows, wide, k2), rows.min(k2));
    }
}
