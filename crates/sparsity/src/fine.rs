//! Element-wise fine-grained pruning — the Deep-Compression baseline.
//!
//! Fine-grained pruning keeps the individually largest weights regardless
//! of position. It reaches excellent sparsity but leaves a fully irregular
//! index (one bit *per synapse*), which is exactly the overhead the
//! paper's coarse-grained pruning removes.

use cs_tensor::{Tensor, TensorError};

use crate::mask::Mask;

/// Prunes every weight with `|w| < threshold`.
pub fn prune_by_threshold(w: &Tensor, threshold: f32) -> Mask {
    Mask::from_bits(
        w.shape().clone(),
        w.as_slice().iter().map(|v| v.abs() >= threshold).collect(),
    )
    .expect("bits generated from shape")
}

/// Keeps exactly the `density` fraction of largest-magnitude weights.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when `density` is outside
/// `(0, 1]`.
pub fn prune_to_density(w: &Tensor, density: f64) -> Result<Mask, TensorError> {
    if !(0.0..=1.0).contains(&density) || density == 0.0 {
        return Err(TensorError::InvalidGeometry(format!(
            "target density {density} outside (0, 1]"
        )));
    }
    let keep = ((density * w.len() as f64).round() as usize).clamp(1, w.len());
    let mut order: Vec<usize> = (0..w.len()).collect();
    let data = w.as_slice();
    order.sort_by(|a, b| {
        data[*b]
            .abs()
            .partial_cmp(&data[*a].abs())
            .expect("weights are finite")
    });
    let mut bits = vec![false; w.len()];
    for &i in order.iter().take(keep) {
        bits[i] = true;
    }
    Mask::from_bits(w.shape().clone(), bits).map_err(|_| unreachable!())
}

/// Number of index bits for fine-grained direct indexing: one per synapse.
pub fn index_bits(w: &Tensor) -> usize {
    w.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_tensor::Shape;

    #[test]
    fn keeps_largest_magnitudes() {
        let w = Tensor::from_vec(Shape::d1(5), vec![0.1, -0.9, 0.5, -0.05, 0.7]).unwrap();
        let m = prune_to_density(&w, 0.4).unwrap();
        assert_eq!(m.bits(), &[false, true, false, false, true]);
    }

    #[test]
    fn threshold_variant() {
        let w = Tensor::from_vec(Shape::d1(4), vec![0.1, -0.9, 0.5, -0.05]).unwrap();
        let m = prune_by_threshold(&w, 0.3);
        assert_eq!(m.bits(), &[false, true, true, false]);
    }

    #[test]
    fn density_bounds_validated() {
        let w = Tensor::zeros(Shape::d1(4));
        assert!(prune_to_density(&w, 0.0).is_err());
        assert!(prune_to_density(&w, 2.0).is_err());
        assert!(prune_to_density(&w, 1.0).is_ok());
    }

    #[test]
    fn exact_count_kept() {
        let w = Tensor::from_fn(Shape::d2(10, 10), |i| (i as f32).sin());
        let m = prune_to_density(&w, 0.13).unwrap();
        assert_eq!(m.ones(), 13);
    }

    #[test]
    fn index_is_one_bit_per_synapse() {
        let w = Tensor::zeros(Shape::d2(32, 32));
        assert_eq!(index_bits(&w), 1024);
    }
}
