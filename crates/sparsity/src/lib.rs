//! Pruning and sparsity analysis for the Cambricon-S reproduction.
//!
//! This crate implements the paper's software contribution:
//!
//! * [`mask`] — binary pruning masks aligned with weight tensors.
//! * [`fine`] — element-wise fine-grained pruning (the Deep-Compression
//!   baseline the paper compares against).
//! * [`coarse`] — **coarse-grained block pruning** (Section III-A): blocks
//!   of synapses are pruned together under a *max* or *average* metric,
//!   which is what makes the surviving indexes regular enough to share
//!   across processing elements.
//! * [`structured`] — hardware-native structured patterns beyond the
//!   paper: 2:4 semi-structured and bank-balanced selection with fixed
//!   fan-in per micro-range ([`PruneMode`]).
//! * [`stats`] — static synapse/neuron sparsity and dynamic neuron
//!   sparsity (the paper's SSS / SNS / DNS, Table III).
//! * [`convergence`] — the local-convergence analysis behind Fig. 1 and
//!   Fig. 4 (sliding-window counts of "larger" weights and their CDF).
//!
//! # Example
//!
//! ```
//! use cs_sparsity::coarse::{CoarseConfig, PruneMetric};
//! use cs_tensor::{Shape, Tensor};
//!
//! let w = Tensor::from_fn(Shape::d2(8, 8), |i| if i < 32 { 1.0 } else { 0.01 });
//! let cfg = CoarseConfig::fc(4, 4, PruneMetric::Average);
//! let mask = cs_sparsity::coarse::prune_to_density(&w, &cfg, 0.5).unwrap();
//! assert!((mask.density() - 0.5).abs() < 1e-9);
//! ```

pub mod coarse;
pub mod convergence;
pub mod fine;
pub mod indexing;
pub mod mask;
pub mod stats;
pub mod structured;

pub use coarse::{CoarseConfig, PruneMetric};
pub use mask::Mask;
pub use structured::PruneMode;
