//! Sparsity statistics: SSS, SNS and DNS (the paper's Table III).
//!
//! * **SSS** — static synapse sparsity: fraction of synapses remaining
//!   after pruning.
//! * **SNS** — static neuron sparsity: fraction of input neurons that
//!   still have at least one surviving synapse (a neuron all of whose
//!   outgoing synapses are pruned is dead and can be removed).
//! * **DNS** — dynamic neuron sparsity: fraction of *non-zero* activation
//!   values at runtime (zeros come from ReLU and feed nothing forward).
//!
//! The paper reports all three as "ratio of remaining to total".

use cs_tensor::{Shape, Tensor};

use crate::mask::Mask;
use crate::structured::{self, PruneMode};

/// Per-layer sparsity report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityReport {
    /// Static synapse sparsity (remaining / total).
    pub sss: f64,
    /// Static neuron sparsity (remaining / total input neurons).
    pub sns: f64,
    /// Dynamic neuron sparsity (non-zero / total activations), if
    /// activation traces were provided.
    pub dns: Option<f64>,
}

/// Static synapse sparsity of a mask (identical to its density).
pub fn synapse_sparsity(mask: &Mask) -> f64 {
    mask.density()
}

/// Static neuron sparsity: the fraction of *input* neurons with at least
/// one surviving synapse.
///
/// For a 2-D FC mask `(n_in, n_out)` the input neurons are the rows; for a
/// 4-D conv mask `(n_fin, n_fout, kx, ky)` they are the input feature
/// maps (which is why conv layers in the paper show 100% SNS — a whole
/// input map is essentially never fully pruned).
pub fn static_neuron_sparsity(mask: &Mask) -> f64 {
    let shape = mask.shape();
    let n_in = shape.dim(0);
    if n_in == 0 {
        return 0.0;
    }
    let per_in = mask.len() / n_in;
    let bits = mask.bits();
    let alive = (0..n_in)
        .filter(|i| bits[i * per_in..(i + 1) * per_in].iter().any(|b| *b))
        .count();
    alive as f64 / n_in as f64
}

/// Dynamic neuron sparsity of a batch of activation tensors: the overall
/// fraction of non-zero values.
pub fn dynamic_neuron_sparsity(activations: &[Tensor]) -> f64 {
    let total: usize = activations.iter().map(Tensor::len).sum();
    if total == 0 {
        return 0.0;
    }
    let zeros: usize = activations.iter().map(Tensor::count_zeros).sum();
    1.0 - zeros as f64 / total as f64
}

/// Builds a full report from a mask and optional activation traces.
pub fn report(mask: &Mask, activations: Option<&[Tensor]>) -> SparsityReport {
    SparsityReport {
        sss: synapse_sparsity(mask),
        sns: static_neuron_sparsity(mask),
        dns: activations.map(dynamic_neuron_sparsity),
    }
}

/// Exact density a pruning mode yields over `shape`.
///
/// Structured modes have geometry-determined densities — exactly 0.5 for
/// 2:4 on widths divisible by 4, `k/bank` for full banks, closed-form
/// ragged-tail corrections otherwise — so they are reported from the
/// pattern itself, never estimated from block counts. `Coarse` has no
/// geometric density; callers fall back to the mask's measured density.
pub fn pattern_density(mode: &PruneMode, shape: &Shape) -> Option<f64> {
    structured::expected_density(mode, shape)
}

/// SSS for a mode-pruned mask: the exact pattern density for structured
/// modes (which [`pattern_density`] derives from geometry alone), the
/// measured mask density for `Coarse`.
pub fn mode_synapse_sparsity(mode: &PruneMode, mask: &Mask) -> f64 {
    pattern_density(mode, mask.shape()).unwrap_or_else(|| synapse_sparsity(mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_tensor::Shape;

    #[test]
    fn sns_counts_dead_rows() {
        // 4 input neurons; rows 1 and 3 fully pruned.
        let bits = vec![
            true, false, false, //
            false, false, false, //
            false, true, true, //
            false, false, false,
        ];
        let m = Mask::from_bits(Shape::d2(4, 3), bits).unwrap();
        assert!((static_neuron_sparsity(&m) - 0.5).abs() < 1e-12);
        assert!((synapse_sparsity(&m) - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn sns_is_full_for_conv_style_masks() {
        // 4-D conv mask where every input map keeps some weight.
        let mut bits = vec![false; 2 * 4 * 3 * 3];
        bits[0] = true; // fi=0
        bits[4 * 9] = true; // fi=1
        let m = Mask::from_bits(Shape::d4(2, 4, 3, 3), bits).unwrap();
        assert_eq!(static_neuron_sparsity(&m), 1.0);
    }

    #[test]
    fn dns_counts_zeros() {
        let a = Tensor::from_vec(Shape::d1(4), vec![0.0, 1.0, 2.0, 0.0]).unwrap();
        let b = Tensor::from_vec(Shape::d1(2), vec![0.0, 3.0]).unwrap();
        let dns = dynamic_neuron_sparsity(&[a, b]);
        assert!((dns - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dns_empty_is_zero() {
        assert_eq!(dynamic_neuron_sparsity(&[]), 0.0);
    }

    #[test]
    fn structured_densities_are_exact_not_estimated() {
        // Regression: structured modes must report closed-form pattern
        // densities, not block-derived estimates.
        assert_eq!(
            pattern_density(&PruneMode::TwoFour, &Shape::d2(1024, 256)),
            Some(0.5)
        );
        assert_eq!(
            pattern_density(
                &PruneMode::BankBalanced { bank: 8, k: 2 },
                &Shape::d2(64, 16)
            ),
            Some(0.25)
        );
        assert_eq!(
            pattern_density(
                &PruneMode::BankBalanced { bank: 16, k: 4 },
                &Shape::d2(32, 8)
            ),
            Some(0.25)
        );
        // Ragged 2:4 tail: 17 inputs -> 4 full groups * 2 + min(2, 1).
        assert_eq!(
            pattern_density(&PruneMode::TwoFour, &Shape::d2(17, 4)),
            Some(9.0 / 17.0)
        );
        // Coarse has no geometric density.
        assert_eq!(
            pattern_density(&PruneMode::Coarse, &Shape::d2(16, 16)),
            None
        );

        // And the exact value agrees with an actually pruned mask.
        let w = Tensor::from_fn(Shape::d2(20, 6), |i| ((i * 37) % 101) as f32 / 101.0 - 0.5);
        let m = crate::structured::two_four_mask(&w).unwrap();
        assert_eq!(mode_synapse_sparsity(&PruneMode::TwoFour, &m), 0.5);
        assert_eq!(mode_synapse_sparsity(&PruneMode::TwoFour, &m), m.density());
        // Coarse falls back to the measured density.
        assert_eq!(mode_synapse_sparsity(&PruneMode::Coarse, &m), m.density());
    }

    #[test]
    fn report_combines_all() {
        let m = Mask::ones_like(Shape::d2(2, 2));
        let acts = [Tensor::from_vec(Shape::d1(2), vec![0.0, 1.0]).unwrap()];
        let r = report(&m, Some(&acts));
        assert_eq!(r.sss, 1.0);
        assert_eq!(r.sns, 1.0);
        assert_eq!(r.dns, Some(0.5));
        let r2 = report(&m, None);
        assert_eq!(r2.dns, None);
    }
}
