//! Sparse-index storage formats: direct and step indexing.
//!
//! Cambricon-S uses **direct indexing** — one bit per (block of)
//! synapse(s) — because coarse-grained pruning makes the direct bitmap
//! tiny. Cambricon-X used **step indexing**: a fixed-width distance from
//! the previous surviving synapse. When a gap exceeds the field's range,
//! a *placeholder* entry is emitted whose synapse slot stores a zero
//! weight — the dot product is unchanged, at the cost of one extra index
//! entry and one extra stored weight. Both formats are implemented with
//! exact size accounting so the baselines charge realistic index
//! traffic.

use crate::mask::Mask;

/// A step-indexed encoding of a mask.
///
/// Each entry is a `bits`-wide gap from the previous entry's position;
/// every entry lands on a synapse slot — a real survivor or a
/// zero-weight placeholder inserted for saturated gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepIndex {
    /// Gap field width in bits.
    pub bits: u8,
    /// Encoded gaps, in stream order.
    pub gaps: Vec<u16>,
    /// Marks entries that are zero-weight placeholders (implied in
    /// hardware by the stored zero weight; kept explicit here so decode
    /// is exact).
    pub placeholder: Vec<bool>,
    /// Total positions the index spans.
    pub len: usize,
}

impl StepIndex {
    /// Encodes a mask's surviving positions as steps.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn encode(mask: &Mask, bits: u8) -> Self {
        assert!(bits > 0 && bits <= 16, "step width {bits} out of range");
        let max_gap = (1u32 << bits) - 1;
        let mut gaps = Vec::new();
        let mut placeholder = Vec::new();
        let mut gap: u32 = 0;
        for b in mask.bits() {
            gap += 1;
            if *b {
                while gap > max_gap {
                    gaps.push(max_gap as u16);
                    placeholder.push(true);
                    gap -= max_gap;
                }
                gaps.push(gap as u16);
                placeholder.push(false);
                gap = 0;
            }
        }
        StepIndex {
            bits,
            gaps,
            placeholder,
            len: mask.len(),
        }
    }

    /// Decodes back into surviving positions (placeholders skipped —
    /// their stored weights are zero, so hardware needs no distinction).
    pub fn positions(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        for (g, ph) in self.gaps.iter().zip(&self.placeholder) {
            pos += *g as usize;
            if !ph {
                out.push(pos - 1);
            }
        }
        out
    }

    /// Encoded index size in bits.
    pub fn size_bits(&self) -> usize {
        self.gaps.len() * usize::from(self.bits)
    }

    /// Number of placeholder entries — each also costs one stored
    /// zero weight.
    pub fn placeholders(&self) -> usize {
        self.placeholder.iter().filter(|p| **p).count()
    }

    /// Total synapse slots stored (survivors + placeholder zeros).
    pub fn stored_entries(&self) -> usize {
        self.gaps.len()
    }
}

/// Direct-index size in bits: one bit per position.
pub fn direct_size_bits(mask: &Mask) -> usize {
    mask.len()
}

/// Picks the smaller of the two encodings for a mask (what a real design
/// does per layer) and returns `(name, bits)`.
pub fn best_encoding(mask: &Mask, step_bits: u8) -> (&'static str, usize) {
    let direct = direct_size_bits(mask);
    let step = StepIndex::encode(mask, step_bits).size_bits();
    if step < direct {
        ("step", step)
    } else {
        ("direct", direct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_tensor::Shape;

    fn mask_from(bits: Vec<bool>) -> Mask {
        let n = bits.len();
        Mask::from_bits(Shape::d1(n), bits).unwrap()
    }

    #[test]
    fn step_roundtrip_simple() {
        // Survivors at positions 0, 3, 4, 10.
        let mut bits = vec![false; 12];
        for p in [0usize, 3, 4, 10] {
            bits[p] = true;
        }
        let m = mask_from(bits);
        let s = StepIndex::encode(&m, 4);
        assert_eq!(s.positions(), vec![0, 3, 4, 10]);
        assert_eq!(s.placeholders(), 0);
        assert_eq!(s.size_bits(), 4 * 4);
    }

    #[test]
    fn saturated_gap_inserts_placeholder() {
        // Gap of 21 with 4-bit steps (max 15) needs one placeholder.
        let mut bits = vec![false; 25];
        bits[0] = true;
        bits[21] = true;
        let m = mask_from(bits);
        let s = StepIndex::encode(&m, 4);
        assert_eq!(s.positions(), vec![0, 21]);
        assert_eq!(s.placeholders(), 1);
        assert_eq!(s.stored_entries(), 3);
    }

    #[test]
    fn gap_exactly_at_field_max_is_not_a_placeholder() {
        // Positions 0 and 15 with 4-bit steps: the second gap is exactly
        // 15 = max, still a real survivor entry.
        let mut bits = vec![false; 16];
        bits[0] = true;
        bits[15] = true;
        let m = mask_from(bits);
        let s = StepIndex::encode(&m, 4);
        assert_eq!(s.positions(), vec![0, 15]);
        assert_eq!(s.placeholders(), 0);
    }

    #[test]
    fn dense_mask_prefers_direct() {
        let m = mask_from(vec![true; 64]);
        let (name, bits) = best_encoding(&m, 8);
        assert_eq!(name, "direct");
        assert_eq!(bits, 64);
    }

    #[test]
    fn very_sparse_mask_prefers_step() {
        let mut bits = vec![false; 4096];
        for i in (0..4096).step_by(200) {
            bits[i] = true;
        }
        let m = mask_from(bits);
        let (name, size) = best_encoding(&m, 8);
        assert_eq!(name, "step");
        assert!(size < 4096);
    }

    #[test]
    fn all_pruned_mask_encodes_empty() {
        let m = mask_from(vec![false; 100]);
        let s = StepIndex::encode(&m, 8);
        assert!(s.positions().is_empty());
        assert_eq!(s.size_bits(), 0);
    }

    #[test]
    fn step_sizes_scale_with_survivor_count() {
        let mut sparse = vec![false; 1024];
        let mut denser = vec![false; 1024];
        for i in (0..1024).step_by(64) {
            sparse[i] = true;
        }
        for i in (0..1024).step_by(8) {
            denser[i] = true;
        }
        let s1 = StepIndex::encode(&mask_from(sparse), 8);
        let s2 = StepIndex::encode(&mask_from(denser), 8);
        assert!(s1.size_bits() < s2.size_bits());
        assert_eq!(s2.positions().len(), 128);
    }
}
