//! Coarse-grained block pruning (the paper's Section III-A).
//!
//! Synapses are partitioned into aligned blocks; a whole block is pruned
//! when its *importance* — the maximum or the average absolute weight —
//! falls below a threshold. Because every synapse in a block shares its
//! fate, the surviving topology can be indexed per *block* instead of per
//! *synapse*: that is what shrinks AlexNet's index from 2.95 MB to
//! 29.38 KB (102.8×) and lets the hardware share one Neuron Selector
//! Module across all processing elements.
//!
//! Blocks are axis-aligned tiles of the weight tensor: `(B_in, B_out)`
//! over fully-connected matrices and `(B_fin, B_fout, B_x, B_y)` over
//! convolutional tensors. Edge blocks are clipped. Setting every block
//! dimension to 1 recovers element-wise fine-grained pruning.

use cs_tensor::{Shape, Tensor, TensorError};

use crate::mask::Mask;

/// Importance metric deciding whether a block is pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneMetric {
    /// A block survives if its largest-magnitude weight is large
    /// (the paper's *max pruning*).
    Max,
    /// A block survives if its mean absolute weight is large
    /// (the paper's *average pruning* — the variant the paper selects,
    /// since it is more accurate below ~15% sparsity, Fig. 8).
    Average,
}

/// Configuration of a coarse-grained pruning pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoarseConfig {
    block: Vec<usize>,
    metric: PruneMetric,
}

impl CoarseConfig {
    /// Creates a config with one block dimension per tensor dimension.
    ///
    /// # Panics
    ///
    /// Panics if any block dimension is zero.
    pub fn new(block: Vec<usize>, metric: PruneMetric) -> Self {
        assert!(
            block.iter().all(|b| *b > 0),
            "block dimensions must be positive"
        );
        CoarseConfig { block, metric }
    }

    /// Fully-connected block `(B_in, B_out)`.
    pub fn fc(b_in: usize, b_out: usize, metric: PruneMetric) -> Self {
        CoarseConfig::new(vec![b_in, b_out], metric)
    }

    /// Convolutional block `(B_fin, B_fout, B_x, B_y)`.
    pub fn conv(b_fin: usize, b_fout: usize, b_x: usize, b_y: usize, metric: PruneMetric) -> Self {
        CoarseConfig::new(vec![b_fin, b_fout, b_x, b_y], metric)
    }

    /// The paper's production settings: conv blocks `(1, N, 1, 1)` with
    /// `N = 16`, FC blocks `(N, N)` (Table II chooses 16–32; 16 keeps the
    /// hardware's `T_n = 16` PEs fully shared).
    pub fn paper_conv() -> Self {
        CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average)
    }

    /// The paper's FC setting (blocks of `(16, 16)`).
    pub fn paper_fc() -> Self {
        CoarseConfig::fc(16, 16, PruneMetric::Average)
    }

    /// Per-dimension block sizes.
    pub fn block(&self) -> &[usize] {
        &self.block
    }

    /// The importance metric.
    pub fn metric(&self) -> PruneMetric {
        self.metric
    }

    /// Block dimensions clipped/extended to a tensor's rank: missing
    /// trailing dimensions default to 1 (element granularity).
    fn block_for(&self, shape: &Shape) -> Vec<usize> {
        let mut b = self.block.clone();
        b.resize(shape.rank(), 1);
        for (bi, di) in b.iter_mut().zip(shape.dims()) {
            *bi = (*bi).min((*di).max(1));
        }
        b
    }
}

/// Per-block aggregate statistics computed in one pass over the tensor.
#[derive(Debug, Clone)]
pub struct BlockScores {
    /// Number of blocks along each dimension.
    pub grid: Vec<usize>,
    /// Per-block importance score under the configured metric.
    pub scores: Vec<f64>,
    /// Per-block element counts (edge blocks are smaller).
    pub counts: Vec<usize>,
    /// Per-block id of each element (row-major over the tensor).
    block_of: Vec<u32>,
}

/// Computes per-block importance scores for `w` under `cfg`.
pub fn block_scores(w: &Tensor, cfg: &CoarseConfig) -> BlockScores {
    let shape = w.shape();
    let block = cfg.block_for(shape);
    let grid: Vec<usize> = shape
        .dims()
        .iter()
        .zip(&block)
        .map(|(d, b)| d.div_ceil(*b))
        .collect();
    let nblocks: usize = grid.iter().product::<usize>().max(1);
    let mut sum_abs = vec![0.0f64; nblocks];
    let mut max_abs = vec![0.0f64; nblocks];
    let mut counts = vec![0usize; nblocks];
    let mut block_of = vec![0u32; w.len()];

    // Odometer over the element multi-index, tracking the block id
    // incrementally to avoid per-element division.
    let rank = shape.rank();
    let mut idx = vec![0usize; rank];
    let data = w.as_slice();
    for (flat, v) in data.iter().enumerate() {
        // block id from idx/block, mixed radix over grid
        let mut bid = 0usize;
        for d in 0..rank {
            bid = bid * grid[d] + idx[d] / block[d];
        }
        let a = f64::from(v.abs());
        sum_abs[bid] += a;
        if a > max_abs[bid] {
            max_abs[bid] = a;
        }
        counts[bid] += 1;
        block_of[flat] = bid as u32;
        // increment odometer
        for d in (0..rank).rev() {
            idx[d] += 1;
            if idx[d] < shape.dim(d) {
                break;
            }
            idx[d] = 0;
        }
    }
    let scores = match cfg.metric {
        PruneMetric::Max => max_abs,
        PruneMetric::Average => sum_abs
            .iter()
            .zip(&counts)
            .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
            .collect(),
    };
    BlockScores {
        grid,
        scores,
        counts,
        block_of,
    }
}

/// Parallel [`block_scores`], bit-identical to the serial version.
///
/// Whole blocks are scored per pool task, and each task iterates its
/// block's elements in ascending flat order — exactly the addition
/// sequence the serial odometer sweep produces for that block — so the
/// `f64` sums come out bit-identical at any thread count. The
/// `block_of` map is filled over contiguous element ranges with the
/// block id recovered by division.
pub fn block_scores_pooled(
    w: &Tensor,
    cfg: &CoarseConfig,
    pool: &cs_parallel::ThreadPool,
) -> BlockScores {
    let shape = w.shape();
    let block = cfg.block_for(shape);
    let grid: Vec<usize> = shape
        .dims()
        .iter()
        .zip(&block)
        .map(|(d, b)| d.div_ceil(*b))
        .collect();
    let nblocks: usize = grid.iter().product::<usize>().max(1);
    let rank = shape.rank();
    let data = w.as_slice();

    // Row-major element strides.
    let mut strides = vec![1usize; rank];
    for d in (0..rank.saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape.dim(d + 1);
    }

    // Per-block stats: (sum_abs, max_abs, count).
    let mut stats = vec![(0.0f64, 0.0f64, 0usize); nblocks];
    pool.parallel_chunks_mut(&mut stats, pool.default_chunk(nblocks), {
        let grid = &grid;
        let block = &block;
        let strides = &strides;
        let chunk = pool.default_chunk(nblocks);
        move |ci, window| {
            for (wi, slot) in window.iter_mut().enumerate() {
                let bid = ci * chunk + wi;
                // Block multi-coordinate from the mixed-radix block id.
                let mut bc = vec![0usize; rank];
                let mut rem = bid;
                for d in (0..rank).rev() {
                    bc[d] = rem % grid[d];
                    rem /= grid[d];
                }
                // Element sub-box of this block, clipped at the edges.
                let lo: Vec<usize> = (0..rank).map(|d| bc[d] * block[d]).collect();
                let hi: Vec<usize> = (0..rank)
                    .map(|d| (lo[d] + block[d]).min(shape.dim(d)))
                    .collect();
                if (0..rank).any(|d| lo[d] >= hi[d]) {
                    continue;
                }
                // Odometer over the sub-box in row-major order — the same
                // ascending flat order the serial sweep visits this
                // block's elements in.
                let mut idx = lo.clone();
                let (mut sum, mut max, mut count) = (0.0f64, 0.0f64, 0usize);
                loop {
                    let flat: usize = idx.iter().zip(strides).map(|(i, s)| i * s).sum();
                    let a = f64::from(data[flat].abs());
                    sum += a;
                    if a > max {
                        max = a;
                    }
                    count += 1;
                    let mut d = rank;
                    loop {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < hi[d] {
                            break;
                        }
                        idx[d] = lo[d];
                        if d == 0 {
                            d = usize::MAX; // signal: odometer wrapped
                            break;
                        }
                    }
                    if d == usize::MAX || rank == 0 {
                        break;
                    }
                }
                *slot = (sum, max, count);
            }
        }
    });

    // Per-element block ids over contiguous ranges, bid by division.
    let mut block_of = vec![0u32; w.len()];
    let echunk = pool.default_chunk(w.len());
    pool.parallel_chunks_mut(&mut block_of, echunk, {
        let grid = &grid;
        let block = &block;
        let strides = &strides;
        move |ci, window| {
            for (wi, slot) in window.iter_mut().enumerate() {
                let flat = ci * echunk + wi;
                let mut bid = 0usize;
                for d in 0..rank {
                    let coord = (flat / strides[d]) % shape.dim(d);
                    bid = bid * grid[d] + coord / block[d];
                }
                *slot = bid as u32;
            }
        }
    });

    let counts: Vec<usize> = stats.iter().map(|s| s.2).collect();
    let scores = match cfg.metric {
        PruneMetric::Max => stats.iter().map(|s| s.1).collect(),
        PruneMetric::Average => stats
            .iter()
            .map(|(s, _, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
            .collect(),
    };
    BlockScores {
        grid,
        scores,
        counts,
        block_of,
    }
}

/// Prunes every block whose score is below `threshold` (the paper's
/// `W_th`), returning the surviving-synapse mask.
pub fn prune_by_threshold(w: &Tensor, cfg: &CoarseConfig, threshold: f64) -> Mask {
    let bs = block_scores(w, cfg);
    let keep: Vec<bool> = bs.scores.iter().map(|s| *s >= threshold).collect();
    mask_from_block_keep(w.shape(), &bs, &keep)
}

/// Prunes the lowest-scoring blocks until at most `density` of the weights
/// survive (greedy, so the result is within one block of the target).
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when `density` is outside
/// `(0, 1]`.
pub fn prune_to_density(w: &Tensor, cfg: &CoarseConfig, density: f64) -> Result<Mask, TensorError> {
    let bs = block_scores(w, cfg);
    density_mask_from_scores(w, &bs, density)
}

/// Parallel [`prune_to_density`]: block scoring fans out over the pool
/// via [`block_scores_pooled`]; the greedy selection is identical, so the
/// resulting mask is bit-identical to the serial version.
///
/// # Errors
///
/// Same conditions as [`prune_to_density`].
pub fn prune_to_density_pooled(
    w: &Tensor,
    cfg: &CoarseConfig,
    density: f64,
    pool: &cs_parallel::ThreadPool,
) -> Result<Mask, TensorError> {
    let bs = block_scores_pooled(w, cfg, pool);
    density_mask_from_scores(w, &bs, density)
}

fn density_mask_from_scores(
    w: &Tensor,
    bs: &BlockScores,
    density: f64,
) -> Result<Mask, TensorError> {
    if !(0.0..=1.0).contains(&density) || density == 0.0 {
        return Err(TensorError::InvalidGeometry(format!(
            "target density {density} outside (0, 1]"
        )));
    }
    let mut order: Vec<usize> = (0..bs.scores.len()).collect();
    order.sort_by(|a, b| {
        bs.scores[*a]
            .partial_cmp(&bs.scores[*b])
            .expect("scores are finite")
    });
    let total = w.len();
    let to_prune = total - ((density * total as f64).round() as usize).min(total);
    let mut keep = vec![true; bs.scores.len()];
    let mut pruned = 0usize;
    // The highest-scoring block is never pruned, so a layer always keeps
    // at least one block of synapses (tiny output layers would otherwise
    // be wiped out entirely at aggressive targets).
    for &bid in order.iter().take(order.len().saturating_sub(1)) {
        if pruned >= to_prune {
            break;
        }
        keep[bid] = false;
        pruned += bs.counts[bid];
    }
    Ok(mask_from_block_keep(w.shape(), bs, &keep))
}

/// Number of index bits needed for the coarse representation: one bit per
/// block (shared across the block, versus one bit per *synapse* for
/// fine-grained direct indexing).
pub fn index_bits(shape: &Shape, cfg: &CoarseConfig) -> usize {
    let block = cfg.block_for(shape);
    shape
        .dims()
        .iter()
        .zip(&block)
        .map(|(d, b)| d.div_ceil(*b))
        .product()
}

fn mask_from_block_keep(shape: &Shape, bs: &BlockScores, keep: &[bool]) -> Mask {
    let bits: Vec<bool> = bs.block_of.iter().map(|bid| keep[*bid as usize]).collect();
    Mask::from_bits(shape.clone(), bits).expect("bits generated from shape")
}

/// The block-level index of a mask: one bit per block, `true` when any
/// synapse in the block survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockKeep {
    /// Number of blocks along each dimension.
    pub grid: Vec<usize>,
    /// Per-block survival bit (row-major over the grid).
    pub keep: Vec<bool>,
}

impl BlockKeep {
    /// Views the block grid as a 2-D bitmap `(rows, cols)`: the last grid
    /// dimension becomes the columns. Used when compressing the index as
    /// a bilevel image.
    pub fn as_2d(&self) -> (usize, usize) {
        match self.grid.len() {
            0 => (1, 1),
            1 => (1, self.grid[0]),
            _ => {
                let cols = *self.grid.last().expect("non-empty grid");
                (self.keep.len() / cols.max(1), cols)
            }
        }
    }
}

/// Computes the block-level index bits of a mask under a block config
/// (a block is kept when any of its synapses survives).
pub fn block_keep(mask: &Mask, cfg: &CoarseConfig) -> BlockKeep {
    let shape = mask.shape();
    let block = cfg.block_for(shape);
    let grid: Vec<usize> = shape
        .dims()
        .iter()
        .zip(&block)
        .map(|(d, b)| d.div_ceil(*b))
        .collect();
    let nblocks: usize = grid.iter().product::<usize>().max(1);
    let mut keep = vec![false; nblocks];
    let rank = shape.rank();
    let mut idx = vec![0usize; rank];
    for bit in mask.bits() {
        if *bit {
            let mut bid = 0usize;
            for d in 0..rank {
                bid = bid * grid[d] + idx[d] / block[d];
            }
            keep[bid] = true;
        }
        for d in (0..rank).rev() {
            idx[d] += 1;
            if idx[d] < shape.dim(d) {
                break;
            }
            idx[d] = 0;
        }
    }
    BlockKeep { grid, keep }
}

/// Verifies the block invariant: the mask is constant inside every block.
/// Used by tests and by the compressed-format validator.
pub fn is_block_aligned(mask: &Mask, cfg: &CoarseConfig) -> bool {
    let shape = mask.shape();
    let block = cfg.block_for(shape);
    let grid: Vec<usize> = shape
        .dims()
        .iter()
        .zip(&block)
        .map(|(d, b)| d.div_ceil(*b))
        .collect();
    let nblocks: usize = grid.iter().product::<usize>().max(1);
    let mut seen: Vec<Option<bool>> = vec![None; nblocks];
    let rank = shape.rank();
    let mut idx = vec![0usize; rank];
    for bit in mask.bits() {
        let mut bid = 0usize;
        for d in 0..rank {
            bid = bid * grid[d] + idx[d] / block[d];
        }
        match seen[bid] {
            None => seen[bid] = Some(*bit),
            Some(prev) => {
                if prev != *bit {
                    return false;
                }
            }
        }
        for d in (0..rank).rev() {
            idx[d] += 1;
            if idx[d] < shape.dim(d) {
                break;
            }
            idx[d] = 0;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(rows: usize, cols: usize) -> Tensor {
        // 4x4 blocks alternate between large and tiny weights.
        Tensor::from_fn(Shape::d2(rows, cols), |i| {
            let r = i / cols;
            let c = i % cols;
            if ((r / 4) + (c / 4)).is_multiple_of(2) {
                1.0
            } else {
                0.001
            }
        })
    }

    #[test]
    fn threshold_prunes_tiny_blocks() {
        let w = checker(8, 8);
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Average);
        let mask = prune_by_threshold(&w, &cfg, 0.5);
        assert!((mask.density() - 0.5).abs() < 1e-9);
        assert!(is_block_aligned(&mask, &cfg));
        // Top-left block is large -> kept.
        assert!(mask.bits()[0]);
        // Block at (0,4) is tiny -> pruned.
        assert!(!mask.bits()[4]);
    }

    #[test]
    fn density_target_hit_within_one_block() {
        let w = checker(16, 16);
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Average);
        for target in [0.25, 0.5, 0.75] {
            let mask = prune_to_density(&w, &cfg, target).unwrap();
            let got = mask.density();
            let block_frac = 16.0 / 256.0;
            assert!(
                (got - target).abs() <= block_frac + 1e-9,
                "target {target} got {got}"
            );
            assert!(is_block_aligned(&mask, &cfg));
        }
    }

    #[test]
    fn density_one_keeps_everything() {
        let w = checker(8, 8);
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Max);
        let mask = prune_to_density(&w, &cfg, 1.0).unwrap();
        assert_eq!(mask.ones(), 64);
    }

    #[test]
    fn invalid_density_rejected() {
        let w = checker(8, 8);
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Max);
        assert!(prune_to_density(&w, &cfg, 0.0).is_err());
        assert!(prune_to_density(&w, &cfg, 1.5).is_err());
    }

    #[test]
    fn max_vs_average_differ_on_outliers() {
        // A block that is tiny everywhere except one huge outlier:
        // max pruning keeps it, average pruning prunes it.
        let mut w = Tensor::full(Shape::d2(4, 8), 0.001);
        w.set(&[0, 0], 10.0); // left block has outlier
        for r in 0..4 {
            for c in 4..8 {
                w.set(&[r, c], 0.05); // right block is uniformly moderate
            }
        }
        let keep_half = 0.5;
        let max_mask =
            prune_to_density(&w, &CoarseConfig::fc(4, 4, PruneMetric::Max), keep_half).unwrap();
        let avg_mask =
            prune_to_density(&w, &CoarseConfig::fc(4, 4, PruneMetric::Average), keep_half).unwrap();
        // Max keeps the outlier block.
        assert!(max_mask.bits()[0]);
        assert!(!max_mask.bits()[4]);
        // Average keeps the uniformly-moderate block: avg(outlier block)
        // = (10 + 15*0.001)/16 = 0.626 vs right avg = 0.05... the outlier
        // actually dominates the average too; use a milder outlier.
        let _ = avg_mask;
    }

    #[test]
    fn average_prefers_uniform_blocks() {
        // Left block: single 0.4 outlier, rest ~0 (avg 0.025, max 0.4).
        // Right block: uniform 0.1 (avg 0.1, max 0.1).
        let mut w = Tensor::full(Shape::d2(4, 8), 0.0);
        w.set(&[0, 0], 0.4);
        for r in 0..4 {
            for c in 4..8 {
                w.set(&[r, c], 0.1);
            }
        }
        let cfg_avg = CoarseConfig::fc(4, 4, PruneMetric::Average);
        let cfg_max = CoarseConfig::fc(4, 4, PruneMetric::Max);
        let avg_mask = prune_to_density(&w, &cfg_avg, 0.5).unwrap();
        let max_mask = prune_to_density(&w, &cfg_max, 0.5).unwrap();
        assert!(!avg_mask.bits()[0] && avg_mask.bits()[4]);
        assert!(max_mask.bits()[0] && !max_mask.bits()[4]);
    }

    #[test]
    fn block_size_one_equals_fine_grained() {
        let w = Tensor::from_fn(Shape::d2(8, 8), |i| ((i * 31) % 64) as f32 / 64.0);
        let cfg = CoarseConfig::fc(1, 1, PruneMetric::Average);
        let mask = prune_to_density(&w, &cfg, 0.25).unwrap();
        assert_eq!(mask.ones(), 16);
        // The kept ones are exactly the 16 largest.
        let mut vals: Vec<f32> = w.as_slice().to_vec();
        vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let thr = vals[15];
        for (v, keep) in w.as_slice().iter().zip(mask.bits()) {
            if *v > thr {
                assert!(*keep);
            }
            if *v < thr {
                assert!(!*keep);
            }
        }
    }

    #[test]
    fn conv_blocks_along_fout() {
        // Conv weights (fi=2, fo=8, kx=1, ky=1); paper block (1,4,1,1):
        // each (fi, fo-group) of 4 output maps shares fate.
        let w = Tensor::from_fn(Shape::d4(2, 8, 1, 1), |i| {
            let fo = i % 8;
            if fo < 4 {
                1.0
            } else {
                0.01
            }
        });
        let cfg = CoarseConfig::conv(1, 4, 1, 1, PruneMetric::Average);
        let mask = prune_to_density(&w, &cfg, 0.5).unwrap();
        assert!(is_block_aligned(&mask, &cfg));
        for fi in 0..2 {
            for fo in 0..8 {
                let bit = mask.bits()[fi * 8 + fo];
                assert_eq!(bit, fo < 4, "fi={fi} fo={fo}");
            }
        }
    }

    #[test]
    fn index_bits_shrink_with_block_size() {
        let shape = Shape::d2(64, 64);
        let fine = index_bits(&shape, &CoarseConfig::fc(1, 1, PruneMetric::Average));
        let coarse = index_bits(&shape, &CoarseConfig::fc(16, 16, PruneMetric::Average));
        assert_eq!(fine, 4096);
        assert_eq!(coarse, 16);
        assert_eq!(fine / coarse, 256);
    }

    #[test]
    fn edge_blocks_are_clipped() {
        // 10x10 with 4x4 blocks -> 3x3 grid, edge blocks smaller.
        let w = Tensor::full(Shape::d2(10, 10), 1.0);
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Average);
        let bs = block_scores(&w, &cfg);
        assert_eq!(bs.grid, vec![3, 3]);
        assert_eq!(bs.counts.iter().sum::<usize>(), 100);
        assert_eq!(bs.counts[8], 4); // bottom-right 2x2
        assert_eq!(bs.counts[0], 16);
    }

    #[test]
    fn block_keep_matches_pruning() {
        let w = checker(8, 8);
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Average);
        let mask = prune_to_density(&w, &cfg, 0.5).unwrap();
        let bk = block_keep(&mask, &cfg);
        assert_eq!(bk.grid, vec![2, 2]);
        assert_eq!(bk.keep.iter().filter(|b| **b).count(), 2);
        assert_eq!(bk.as_2d(), (2, 2));
        // Fine-grained mask has no block structure at block=1.
        let fine_cfg = CoarseConfig::fc(1, 1, PruneMetric::Average);
        let bk_fine = block_keep(&mask, &fine_cfg);
        assert_eq!(bk_fine.keep.len(), 64);
        assert_eq!(bk_fine.keep.iter().filter(|b| **b).count(), mask.ones());
    }

    #[test]
    fn pooled_block_scores_are_bit_identical_to_serial() {
        let pool = cs_parallel::ThreadPool::new(4);
        let cases: Vec<(Tensor, CoarseConfig)> = vec![
            (
                checker(16, 16),
                CoarseConfig::fc(4, 4, PruneMetric::Average),
            ),
            (checker(10, 10), CoarseConfig::fc(4, 4, PruneMetric::Max)),
            (
                Tensor::from_fn(Shape::d2(37, 23), |i| ((i * 31) % 97) as f32 / 97.0 - 0.5),
                CoarseConfig::paper_fc(),
            ),
            (
                Tensor::from_fn(Shape::d4(3, 18, 5, 5), |i| {
                    ((i * 131) % 251) as f32 / 251.0 - 0.5
                }),
                CoarseConfig::paper_conv(),
            ),
        ];
        for (w, cfg) in &cases {
            let serial = block_scores(w, cfg);
            let pooled = block_scores_pooled(w, cfg, &pool);
            assert_eq!(serial.grid, pooled.grid);
            assert_eq!(serial.counts, pooled.counts);
            assert_eq!(serial.block_of, pooled.block_of);
            // Bit-identical f64 scores, not just approximately equal.
            let sb: Vec<u64> = serial.scores.iter().map(|s| s.to_bits()).collect();
            let pb: Vec<u64> = pooled.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(sb, pb, "scores differ for shape {:?}", w.shape());
        }
    }

    #[test]
    fn pooled_prune_to_density_matches_serial() {
        let pool = cs_parallel::ThreadPool::new(3);
        let w = Tensor::from_fn(Shape::d2(40, 24), |i| ((i * 53) % 113) as f32 / 113.0 - 0.5);
        let cfg = CoarseConfig::fc(8, 8, PruneMetric::Average);
        for target in [0.25, 0.5, 0.9] {
            let serial = prune_to_density(&w, &cfg, target).unwrap();
            let pooled = prune_to_density_pooled(&w, &cfg, target, &pool).unwrap();
            assert_eq!(serial, pooled);
        }
        assert!(prune_to_density_pooled(&w, &cfg, 0.0, &pool).is_err());
    }

    #[test]
    fn block_larger_than_tensor_is_clamped() {
        let w = Tensor::full(Shape::d2(3, 3), 1.0);
        let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
        let mask = prune_to_density(&w, &cfg, 1.0).unwrap();
        assert_eq!(mask.ones(), 9);
        assert_eq!(index_bits(w.shape(), &cfg), 1);
    }
}
