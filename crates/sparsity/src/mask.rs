//! Binary pruning masks.

use cs_tensor::{Shape, Tensor, TensorError};

/// A binary mask aligned element-for-element with a weight tensor.
///
/// `true` marks a *surviving* synapse, `false` a pruned one — matching the
/// paper's direct indexing format where a `1` bit means the synapse
/// exists.
///
/// # Example
///
/// ```
/// use cs_sparsity::Mask;
/// use cs_tensor::{Shape, Tensor};
///
/// let w = Tensor::from_vec(Shape::d1(4), vec![0.0, 1.0, 0.0, 2.0]).unwrap();
/// let m = Mask::from_nonzero(&w);
/// assert_eq!(m.ones(), 2);
/// assert_eq!(m.density(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    shape: Shape,
    bits: Vec<bool>,
}

impl Mask {
    /// An all-ones (nothing pruned) mask.
    pub fn ones_like(shape: Shape) -> Self {
        let len = shape.len();
        Mask {
            shape,
            bits: vec![true; len],
        }
    }

    /// An all-zeros (everything pruned) mask.
    pub fn zeros_like(shape: Shape) -> Self {
        let len = shape.len();
        Mask {
            shape,
            bits: vec![false; len],
        }
    }

    /// Builds a mask from explicit bits.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the bit count differs
    /// from the shape's element count.
    pub fn from_bits(shape: Shape, bits: Vec<bool>) -> Result<Self, TensorError> {
        if bits.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: bits.len(),
            });
        }
        Ok(Mask { shape, bits })
    }

    /// Marks every non-zero element of `t` as surviving.
    pub fn from_nonzero(t: &Tensor) -> Self {
        Mask {
            shape: t.shape().clone(),
            bits: t.as_slice().iter().map(|v| *v != 0.0).collect(),
        }
    }

    /// The mask's shape (same as the weight tensor it covers).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Borrows the raw bits (row-major, `true` = surviving).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Mutably borrows the raw bits.
    pub fn bits_mut(&mut self) -> &mut [bool] {
        &mut self.bits
    }

    /// Total number of mask positions.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when the mask covers no elements.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of surviving synapses.
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Fraction of surviving synapses — the paper's "sparsity" figure
    /// (ratio of remaining to total).
    pub fn density(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.ones() as f64 / self.bits.len() as f64
    }

    /// Zeroes pruned positions of `t` in place.
    ///
    /// # Panics
    ///
    /// Panics when `t` has a different element count.
    pub fn apply(&self, t: &mut Tensor) {
        assert_eq!(t.len(), self.bits.len(), "mask/tensor length mismatch");
        for (v, keep) in t.as_mut_slice().iter_mut().zip(&self.bits) {
            if !keep {
                *v = 0.0;
            }
        }
    }

    /// Element-wise AND with another mask.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn and(&self, other: &Mask) -> Result<Mask, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "mask and",
            });
        }
        Ok(Mask {
            shape: self.shape.clone(),
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| *a && *b)
                .collect(),
        })
    }

    /// Extracts the surviving values of `t` in row-major order — the
    /// accelerator's compact synapse storage.
    ///
    /// # Panics
    ///
    /// Panics when `t` has a different element count.
    pub fn compact_values(&self, t: &Tensor) -> Vec<f32> {
        assert_eq!(t.len(), self.bits.len(), "mask/tensor length mismatch");
        t.as_slice()
            .iter()
            .zip(&self.bits)
            .filter(|(_, keep)| **keep)
            .map(|(v, _)| *v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_zeros() {
        let m1 = Mask::ones_like(Shape::d2(3, 3));
        assert_eq!(m1.ones(), 9);
        assert_eq!(m1.density(), 1.0);
        let m0 = Mask::zeros_like(Shape::d2(3, 3));
        assert_eq!(m0.ones(), 0);
    }

    #[test]
    fn from_bits_validates_length() {
        assert!(Mask::from_bits(Shape::d1(3), vec![true, false]).is_err());
        assert!(Mask::from_bits(Shape::d1(2), vec![true, false]).is_ok());
    }

    #[test]
    fn apply_zeroes_pruned() {
        let mut t = Tensor::from_vec(Shape::d1(4), vec![1., 2., 3., 4.]).unwrap();
        let m = Mask::from_bits(Shape::d1(4), vec![true, false, true, false]).unwrap();
        m.apply(&mut t);
        assert_eq!(t.as_slice(), &[1., 0., 3., 0.]);
    }

    #[test]
    fn and_combines() {
        let a = Mask::from_bits(Shape::d1(3), vec![true, true, false]).unwrap();
        let b = Mask::from_bits(Shape::d1(3), vec![true, false, false]).unwrap();
        assert_eq!(a.and(&b).unwrap().bits(), &[true, false, false]);
        let c = Mask::ones_like(Shape::d1(4));
        assert!(a.and(&c).is_err());
    }

    #[test]
    fn compact_values_keeps_order() {
        let t = Tensor::from_vec(Shape::d1(5), vec![10., 20., 30., 40., 50.]).unwrap();
        let m = Mask::from_bits(Shape::d1(5), vec![false, true, false, true, true]).unwrap();
        assert_eq!(m.compact_values(&t), vec![20., 40., 50.]);
    }

    #[test]
    fn from_nonzero_roundtrip() {
        let t = Tensor::from_vec(Shape::d1(4), vec![0.0, -1.0, 0.0, 0.5]).unwrap();
        let m = Mask::from_nonzero(&t);
        assert_eq!(m.bits(), &[false, true, false, true]);
    }
}
