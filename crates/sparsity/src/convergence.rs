//! Local-convergence analysis (the paper's Fig. 1 and Fig. 4).
//!
//! The paper observes that after training, weights whose magnitude is in
//! the top *m%* of a layer gather into small clusters. This module
//! quantifies that: a `k × k` window slides (with stride `k`) over the
//! weight matrix, each window is labelled with its count of "larger"
//! weights, and the distribution of labels is compared between trained
//! and randomly-initialized layers.

use cs_tensor::{Shape, Tensor};

/// Magnitude threshold such that the top `m_fraction` of weights (by
/// absolute value) lie at or above it.
///
/// # Panics
///
/// Panics on an empty tensor.
pub fn larger_weight_threshold(w: &Tensor, m_fraction: f64) -> f32 {
    assert!(!w.is_empty(), "threshold of empty tensor");
    let mut mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
    let k = ((m_fraction * mags.len() as f64).round() as usize).clamp(1, mags.len());
    mags[k - 1]
}

/// Views any weight tensor as a 2-D matrix for windowing: FC stays
/// `(n_in, n_out)`, conv `(fi, fo, kx, ky)` flattens to
/// `(fi * kx * ky, fo)`.
pub fn matrix_view(w: &Tensor) -> (usize, usize) {
    let s = w.shape();
    match s.rank() {
        2 => (s.dim(0), s.dim(1)),
        4 => (s.dim(0) * s.dim(2) * s.dim(3), s.dim(1)),
        _ => (1, w.len()),
    }
}

/// Labels every `k × k` window (stride `k`) with its count of larger
/// weights and returns a histogram indexed by label (`0..=k*k`).
pub fn window_histogram(w: &Tensor, k: usize, m_fraction: f64) -> Vec<usize> {
    assert!(k > 0, "window size must be positive");
    let thr = larger_weight_threshold(w, m_fraction);
    let (rows, cols) = matrix_view(w);
    let data = w.as_slice();
    let mut hist = vec![0usize; k * k + 1];
    let brows = rows / k;
    let bcols = cols / k;
    for br in 0..brows {
        for bc in 0..bcols {
            let mut count = 0usize;
            for r in 0..k {
                for c in 0..k {
                    let v = data[(br * k + r) * cols + (bc * k + c)];
                    if v.abs() >= thr {
                        count += 1;
                    }
                }
            }
            hist[count] += 1;
        }
    }
    hist
}

/// Cumulative distribution of window labels: `cdf[x]` is the fraction of
/// windows containing at most `x` larger weights (the paper's Fig. 4
/// curves).
pub fn cdf(hist: &[usize]) -> Vec<f64> {
    let total: usize = hist.iter().sum();
    if total == 0 {
        return vec![1.0; hist.len()];
    }
    let mut acc = 0usize;
    hist.iter()
        .map(|h| {
            acc += h;
            acc as f64 / total as f64
        })
        .collect()
}

/// The largest label with at least one window — "how far the tail
/// reaches". Trained layers reach well past the i.i.d. expectation.
pub fn max_label(hist: &[usize]) -> usize {
    hist.iter().rposition(|h| *h > 0).unwrap_or(0)
}

/// Top-`m_fraction` weight bitmap of a matrix-viewed tensor (Fig. 1:
/// white pixels mark larger weights).
pub fn bitmap(w: &Tensor, m_fraction: f64) -> Vec<Vec<bool>> {
    let thr = larger_weight_threshold(w, m_fraction);
    let (rows, cols) = matrix_view(w);
    let data = w.as_slice();
    (0..rows)
        .map(|r| (0..cols).map(|c| data[r * cols + c].abs() >= thr).collect())
        .collect()
}

/// Renders a bitmap as a portable bitmap (PBM P1) string, with `1` for
/// larger weights — a direct Fig. 1 reproduction artifact.
pub fn render_pbm(bits: &[Vec<bool>]) -> String {
    let rows = bits.len();
    let cols = bits.first().map_or(0, Vec::len);
    let mut out = format!("P1\n{cols} {rows}\n");
    for row in bits {
        let line: Vec<&str> = row.iter().map(|b| if *b { "1" } else { "0" }).collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Converts a Fig. 1-style bitmap to a coarse ASCII thumbnail for
/// terminal output (each character covers a `cell × cell` region; darker
/// characters mean more larger weights).
pub fn render_ascii(bits: &[Vec<bool>], cell: usize) -> String {
    let rows = bits.len();
    let cols = bits.first().map_or(0, Vec::len);
    if rows == 0 || cols == 0 || cell == 0 {
        return String::new();
    }
    let shades = [' ', '.', ':', '+', '*', '#'];
    let mut out = String::new();
    for br in 0..rows.div_ceil(cell) {
        for bc in 0..cols.div_ceil(cell) {
            let mut count = 0usize;
            let mut total = 0usize;
            for row in bits
                .iter()
                .take(((br + 1) * cell).min(rows))
                .skip(br * cell)
            {
                for cellv in row.iter().take(((bc + 1) * cell).min(cols)).skip(bc * cell) {
                    total += 1;
                    if *cellv {
                        count += 1;
                    }
                }
            }
            let frac = count as f64 / total.max(1) as f64;
            let idx = ((frac * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            out.push(shades[idx]);
        }
        out.push('\n');
    }
    out
}

/// Builds a tensor with planted clusters for demos/tests (hot `k × k`
/// tiles at the given coordinates).
pub fn planted_cluster_matrix(
    rows: usize,
    cols: usize,
    k: usize,
    hot_tiles: &[(usize, usize)],
) -> Tensor {
    Tensor::from_fn(Shape::d2(rows, cols), |i| {
        let r = i / cols;
        let c = i % cols;
        if hot_tiles.contains(&(r / k, c / k)) {
            1.0
        } else {
            0.001
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_selects_top_fraction() {
        let w = Tensor::from_fn(Shape::d1(100), |i| i as f32);
        let thr = larger_weight_threshold(&w, 0.1);
        assert_eq!(thr, 90.0);
        let above = w.as_slice().iter().filter(|v| **v >= thr).count();
        assert_eq!(above, 10);
    }

    #[test]
    fn clustered_matrix_has_heavy_tail() {
        // 10% of weights in full tiles -> windows are either full or empty.
        let w = planted_cluster_matrix(40, 40, 4, &[(0, 0), (2, 3), (5, 5), (7, 1), (9, 9)]);
        let hist = window_histogram(&w, 4, 0.05);
        assert_eq!(max_label(&hist), 16);
        // Five full windows.
        assert_eq!(hist[16], 5);
    }

    #[test]
    fn iid_matrix_has_light_tail() {
        // Pseudo-random scattered larger weights: with m=10% and 4x4
        // windows the expected count is 1.6; counts near 16 are absent.
        let w = Tensor::from_fn(Shape::d2(64, 64), |i| {
            let x = ((i as u64)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1)
                >> 33) as f32;
            x / (1u64 << 31) as f32
        });
        let hist = window_histogram(&w, 4, 0.1);
        assert!(max_label(&hist) <= 8, "tail at {}", max_label(&hist));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let hist = vec![5, 3, 2, 0, 1];
        let c = cdf(&hist);
        for w in c.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((c.last().unwrap() - 1.0).abs() < 1e-12);
        assert!((c[0] - 5.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn pbm_roundtrip_dimensions() {
        let bits = vec![vec![true, false], vec![false, true]];
        let pbm = render_pbm(&bits);
        assert!(pbm.starts_with("P1\n2 2\n"));
        assert!(pbm.contains("1 0"));
    }

    #[test]
    fn ascii_render_has_one_row_per_cell_band() {
        let w = planted_cluster_matrix(16, 16, 4, &[(0, 0)]);
        let bits = bitmap(&w, 0.0625);
        let art = render_ascii(&bits, 4);
        assert_eq!(art.lines().count(), 4);
        // Hot corner is the densest shade.
        assert!(art.lines().next().unwrap().starts_with('#'));
    }

    #[test]
    fn matrix_view_flattens_conv() {
        let w = Tensor::zeros(Shape::d4(3, 8, 5, 5));
        assert_eq!(matrix_view(&w), (75, 8));
    }
}
