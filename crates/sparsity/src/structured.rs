//! Structured sparsity patterns: 2:4 semi-structured and bank-balanced.
//!
//! The paper's coarse block pruning ([`crate::coarse`]) trades accuracy
//! for index regularity by pruning whole tiles. The two patterns here
//! take the opposite route: they constrain *where* survivors may sit so
//! that the survivor count per micro-range is fixed by geometry alone.
//!
//! * **2:4 semi-structured** — every contiguous group of 4 weights along
//!   the input (reduction) dimension keeps exactly its top 2 by
//!   magnitude. The surviving positions fit in 2 bits each, and the
//!   fan-in of every output lane is exactly `n_in / 2` (NVIDIA Sparse
//!   Tensor Cores use the same layout).
//! * **Bank-balanced** — every bank of `bank` consecutive inputs keeps
//!   exactly `k` survivors (micro-range balanced sparsity, MCBBS). The
//!   fixed per-bank fan-in makes specialized inner loops branch-free.
//!
//! Both selections are *per output lane*: a 2-D weight tensor
//! `(n_in, n_out)` is pruned column by column, so different lanes keep
//! different positions (unlike coarse blocks, nothing is shared across
//! lanes — the compiled formats in `cs-compress` carry per-lane
//! position metadata instead of a shared index).
//!
//! Selection is fully deterministic: within a group/bank, candidates are
//! ranked by descending `|w|` with ties broken toward the **lower input
//! index**, so equal-magnitude (including all-zero) groups always keep
//! their first `k` positions. Survivor counts never depend on values —
//! an all-zero group still keeps `k` (exactly-zero survivors multiply
//! to ±0.0, which is neutral to the engine's accumulation, preserving
//! bit-identity with dense execution).
//!
//! Ragged tails (widths not divisible by the group/bank size) keep
//! `min(k, tail_len)` survivors, so the exact density of a pruned layer
//! is a closed-form function of the geometry — see
//! [`expected_density`].

use cs_tensor::{Shape, Tensor, TensorError};

use crate::mask::Mask;

/// First-class pruning mode selector, threaded through the compression
/// pipeline (`cs_compress::pipeline`) and the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneMode {
    /// The paper's coarse-grained block pruning ([`crate::coarse`]),
    /// configured separately via [`crate::coarse::CoarseConfig`] and a
    /// target density.
    Coarse,
    /// 2:4 semi-structured: top 2 of every 4 along the input dimension.
    TwoFour,
    /// Bank-balanced: exactly `k` survivors per bank of `bank` inputs.
    BankBalanced {
        /// Bank width along the input dimension.
        bank: usize,
        /// Survivors kept per bank.
        k: usize,
    },
}

impl PruneMode {
    /// Short label used in telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PruneMode::Coarse => "coarse",
            PruneMode::TwoFour => "two_four",
            PruneMode::BankBalanced { .. } => "bank_balanced",
        }
    }

    /// True for the fixed-fan-in patterns (everything except `Coarse`).
    pub fn is_structured(&self) -> bool {
        !matches!(self, PruneMode::Coarse)
    }

    /// The `(bank, k)` geometry of a structured mode (`(4, 2)` for 2:4),
    /// or `None` for `Coarse`.
    pub fn geometry(&self) -> Option<(usize, usize)> {
        match self {
            PruneMode::Coarse => None,
            PruneMode::TwoFour => Some((4, 2)),
            PruneMode::BankBalanced { bank, k } => Some((*bank, *k)),
        }
    }
}

/// Validates a `(bank, k)` geometry. Degenerate-but-meaningful shapes
/// are allowed: `k >= bank` keeps every position in the bank (a full
/// mask), and `bank` wider than the row collapses to one ragged bank.
/// Only the zero-sized geometries are rejected.
fn check_geometry(bank: usize, k: usize) -> Result<(), TensorError> {
    if bank == 0 || k == 0 {
        return Err(TensorError::InvalidGeometry(format!(
            "bank-balanced geometry requires bank >= 1 and k >= 1, got bank {bank} k {k}"
        )));
    }
    Ok(())
}

/// Validates that `shape` is a 2-D `(n_in, n_out)` FC weight shape.
fn check_fc_shape(shape: &Shape) -> Result<(usize, usize), TensorError> {
    if shape.rank() != 2 {
        return Err(TensorError::InvalidGeometry(format!(
            "structured pruning applies to 2-D (n_in, n_out) weights, got rank {}",
            shape.rank()
        )));
    }
    Ok((shape.dim(0), shape.dim(1)))
}

/// Exact survivor count per output lane: full banks keep `min(k, bank)`
/// (degenerate `k >= bank` keeps every position), the ragged tail keeps
/// `min(k, tail)`.
pub fn survivors_per_lane(n_in: usize, bank: usize, k: usize) -> usize {
    let full = n_in / bank;
    let tail = n_in % bank;
    full * k.min(bank) + tail.min(k)
}

/// Exact density of a structured mode over `shape`, or `None` for
/// [`PruneMode::Coarse`] (whose density is a tuning target, not a
/// geometric constant). 2:4 is exactly 0.5 whenever `n_in % 4 == 0`;
/// ragged widths are slightly denser because the tail keeps
/// `min(2, tail)` of fewer positions.
pub fn expected_density(mode: &PruneMode, shape: &Shape) -> Option<f64> {
    let (bank, k) = mode.geometry()?;
    let (n_in, _) = check_fc_shape(shape).ok()?;
    if n_in == 0 {
        return Some(0.0);
    }
    Some(survivors_per_lane(n_in, bank, k) as f64 / n_in as f64)
}

/// Metadata bits of the packed structured format: each survivor stores
/// its offset within the bank, `ceil(log2(bank))` bits (2 bits for 2:4).
pub fn metadata_bits(shape: &Shape, bank: usize, k: usize) -> usize {
    let Ok((n_in, n_out)) = check_fc_shape(shape) else {
        return 0;
    };
    let offset_bits = usize::BITS as usize - (bank - 1).leading_zeros() as usize;
    survivors_per_lane(n_in, bank, k) * n_out * offset_bits
}

/// Selects the top `keep` positions of `vals` by `(|v| desc, index asc)`
/// into `out` (absolute input indices, ascending). Deterministic for
/// ties and NaN-free by construction (`total_cmp`).
fn select_top(vals: &[f32], keep: usize, base: usize, out: &mut Vec<usize>) {
    let mut order: Vec<usize> = (0..vals.len()).collect();
    order.sort_by(|&a, &b| vals[b].abs().total_cmp(&vals[a].abs()).then(a.cmp(&b)));
    order.truncate(keep.min(vals.len()));
    order.sort_unstable();
    out.extend(order.into_iter().map(|i| base + i));
}

/// Per-lane survivor selection: returns the ascending absolute input
/// indices kept in lane `o` of `w` under a `(bank, k)` geometry.
fn lane_survivors(
    w: &[f32],
    n_in: usize,
    n_out: usize,
    o: usize,
    bank: usize,
    k: usize,
) -> Vec<usize> {
    let mut col = vec![0.0f32; n_in];
    for (i, c) in col.iter_mut().enumerate() {
        *c = w[i * n_out + o];
    }
    let mut kept = Vec::with_capacity(survivors_per_lane(n_in, bank, k));
    let mut start = 0usize;
    while start < n_in {
        let end = (start + bank).min(n_in);
        select_top(&col[start..end], k, start, &mut kept);
        start = end;
    }
    kept
}

/// Builds the mask for a `(bank, k)` structured pattern over a 2-D
/// weight tensor `(n_in, n_out)`.
fn banked_mask(w: &Tensor, bank: usize, k: usize) -> Result<Mask, TensorError> {
    check_geometry(bank, k)?;
    let (n_in, n_out) = check_fc_shape(w.shape())?;
    let data = w.as_slice();
    let mut bits = vec![false; n_in * n_out];
    for o in 0..n_out {
        for i in lane_survivors(data, n_in, n_out, o, bank, k) {
            bits[i * n_out + o] = true;
        }
    }
    Mask::from_bits(w.shape().clone(), bits)
}

/// Parallel [`banked_mask`]: lanes fan out over the pool. Selection is a
/// pure per-lane function, so the result is bit-identical to the serial
/// version at any thread count.
fn banked_mask_pooled(
    w: &Tensor,
    bank: usize,
    k: usize,
    pool: &cs_parallel::ThreadPool,
) -> Result<Mask, TensorError> {
    check_geometry(bank, k)?;
    let (n_in, n_out) = check_fc_shape(w.shape())?;
    let data = w.as_slice();
    // Lane-major selection buffer: contiguous per-lane windows let the
    // pool hand out whole lanes; transposed into the row-major mask
    // afterwards.
    let mut sel = vec![false; n_out * n_in];
    let lane_chunk = pool.default_chunk(n_out).max(1);
    pool.parallel_chunks_mut(&mut sel, lane_chunk * n_in, move |ci, window| {
        for (li, lane) in window.chunks_mut(n_in).enumerate() {
            let o = ci * lane_chunk + li;
            for i in lane_survivors(data, n_in, n_out, o, bank, k) {
                lane[i] = true;
            }
        }
    });
    let mut bits = vec![false; n_in * n_out];
    for o in 0..n_out {
        for i in 0..n_in {
            bits[i * n_out + o] = sel[o * n_in + i];
        }
    }
    Mask::from_bits(w.shape().clone(), bits)
}

/// 2:4 semi-structured pruning: every group of 4 along the input
/// dimension keeps its top 2 by magnitude (ties toward the lower
/// index; ragged tails keep `min(2, tail)`).
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when `w` is not 2-D.
pub fn two_four_mask(w: &Tensor) -> Result<Mask, TensorError> {
    banked_mask(w, 4, 2)
}

/// Parallel [`two_four_mask`], bit-identical at any thread count.
///
/// # Errors
///
/// Same conditions as [`two_four_mask`].
pub fn two_four_mask_pooled(
    w: &Tensor,
    pool: &cs_parallel::ThreadPool,
) -> Result<Mask, TensorError> {
    banked_mask_pooled(w, 4, 2, pool)
}

/// Bank-balanced pruning: every bank of `bank` inputs keeps exactly its
/// top `min(k, bank)` by magnitude (ties toward the lower index; ragged
/// tails keep `min(k, tail)`). Degenerate geometries — `k >= bank`, or
/// `bank` wider than the row — degrade to a full mask rather than
/// failing.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when `w` is not 2-D or
/// `bank`/`k` is zero.
pub fn bank_balanced_mask(w: &Tensor, bank: usize, k: usize) -> Result<Mask, TensorError> {
    banked_mask(w, bank, k)
}

/// Parallel [`bank_balanced_mask`], bit-identical at any thread count.
///
/// # Errors
///
/// Same conditions as [`bank_balanced_mask`].
pub fn bank_balanced_mask_pooled(
    w: &Tensor,
    bank: usize,
    k: usize,
    pool: &cs_parallel::ThreadPool,
) -> Result<Mask, TensorError> {
    banked_mask_pooled(w, bank, k, pool)
}

/// Builds the mask for any structured mode.
///
/// # Errors
///
/// [`TensorError::InvalidGeometry`] for [`PruneMode::Coarse`] (which
/// needs a block config and density target — use [`crate::coarse`]),
/// non-2-D tensors, or invalid bank geometry.
pub fn structured_mask(w: &Tensor, mode: &PruneMode) -> Result<Mask, TensorError> {
    let (bank, k) = mode.geometry().ok_or_else(|| {
        TensorError::InvalidGeometry(
            "PruneMode::Coarse has no structured pattern; use cs_sparsity::coarse".to_string(),
        )
    })?;
    banked_mask(w, bank, k)
}

/// Parallel [`structured_mask`], bit-identical at any thread count.
///
/// # Errors
///
/// Same conditions as [`structured_mask`].
pub fn structured_mask_pooled(
    w: &Tensor,
    mode: &PruneMode,
    pool: &cs_parallel::ThreadPool,
) -> Result<Mask, TensorError> {
    let (bank, k) = mode.geometry().ok_or_else(|| {
        TensorError::InvalidGeometry(
            "PruneMode::Coarse has no structured pattern; use cs_sparsity::coarse".to_string(),
        )
    })?;
    banked_mask_pooled(w, bank, k, pool)
}

/// Checks that a mask satisfies a `(bank, k)` structured pattern: every
/// full bank of every lane has exactly `min(k, bank)` survivors and
/// every ragged tail has `min(k, tail)`.
pub fn satisfies_pattern(mask: &Mask, bank: usize, k: usize) -> bool {
    let Ok((n_in, n_out)) = check_fc_shape(mask.shape()) else {
        return false;
    };
    if check_geometry(bank, k).is_err() {
        return false;
    }
    let bits = mask.bits();
    for o in 0..n_out {
        let mut start = 0usize;
        while start < n_in {
            let end = (start + bank).min(n_in);
            let got = (start..end).filter(|i| bits[i * n_out + o]).count();
            if got != k.min(end - start) {
                return false;
            }
            start = end;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut x = seed | 1;
        Tensor::from_fn(Shape::d2(rows, cols), |_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn two_four_keeps_top_two_per_group() {
        // One lane, 8 inputs: groups (0..4) and (4..8).
        let t = Tensor::from_vec(
            Shape::d2(8, 1),
            vec![0.1, -0.9, 0.5, 0.2, 0.0, 0.0, -0.3, 0.1],
        )
        .unwrap();
        let m = two_four_mask(&t).unwrap();
        // Group 0: |-0.9| and |0.5| win.
        // Group 1: |-0.3| and |0.1| (position 7) win; the 0.0 tie at
        // positions 4/5 loses to larger magnitudes.
        assert_eq!(
            m.bits(),
            &[false, true, true, false, false, false, true, true]
        );
        assert!(satisfies_pattern(&m, 4, 2));
    }

    #[test]
    fn all_zero_group_keeps_first_two() {
        let t = Tensor::from_vec(Shape::d2(4, 1), vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let m = two_four_mask(&t).unwrap();
        assert_eq!(m.bits(), &[true, true, false, false]);
    }

    #[test]
    fn ragged_tail_keeps_min() {
        // n_in = 7: tail group of 3 keeps 2; n_in = 5: tail of 1 keeps 1.
        let m7 = two_four_mask(&w(7, 3, 1)).unwrap();
        assert!(satisfies_pattern(&m7, 4, 2));
        assert_eq!(m7.ones(), 3 * (2 + 2));
        let m5 = two_four_mask(&w(5, 2, 2)).unwrap();
        assert!(satisfies_pattern(&m5, 4, 2));
        assert_eq!(m5.ones(), 2 * (2 + 1));
        assert_eq!(
            expected_density(&PruneMode::TwoFour, &Shape::d2(5, 2)),
            Some(3.0 / 5.0)
        );
    }

    #[test]
    fn bank_balanced_counts_exact() {
        for (bank, k) in [(8usize, 2usize), (8, 5), (3, 1), (16, 4), (1, 1)] {
            let t = w(19, 6, bank as u64 * 31 + k as u64);
            let m = bank_balanced_mask(&t, bank, k).unwrap();
            assert!(satisfies_pattern(&m, bank, k), "bank {bank} k {k}");
            assert_eq!(m.ones(), 6 * survivors_per_lane(19, bank, k));
            let d = expected_density(&PruneMode::BankBalanced { bank, k }, t.shape()).unwrap();
            assert!((m.density() - d).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_densities() {
        assert_eq!(
            expected_density(&PruneMode::TwoFour, &Shape::d2(16, 32)),
            Some(0.5)
        );
        assert_eq!(
            expected_density(
                &PruneMode::BankBalanced { bank: 8, k: 2 },
                &Shape::d2(32, 4)
            ),
            Some(0.25)
        );
        assert_eq!(
            expected_density(&PruneMode::Coarse, &Shape::d2(16, 16)),
            None
        );
        // Ragged 2:4: 17 = 4*4 + 1 -> 4*2 + 1 = 9 survivors per lane.
        assert_eq!(
            expected_density(&PruneMode::TwoFour, &Shape::d2(17, 8)),
            Some(9.0 / 17.0)
        );
    }

    #[test]
    fn metadata_bits_formula() {
        // 2:4 over (16, 8): 8 survivors/lane * 8 lanes * 2 bits.
        assert_eq!(metadata_bits(&Shape::d2(16, 8), 4, 2), 8 * 8 * 2);
        // bank 8 -> 3-bit offsets.
        assert_eq!(metadata_bits(&Shape::d2(16, 4), 8, 2), 4 * 4 * 3);
        // bank 1 -> position is implied, 0 bits.
        assert_eq!(metadata_bits(&Shape::d2(16, 4), 1, 1), 0);
    }

    #[test]
    fn rejects_bad_geometry_and_rank() {
        assert!(bank_balanced_mask(&w(8, 8, 1), 0, 1).is_err());
        assert!(bank_balanced_mask(&w(8, 8, 1), 4, 0).is_err());
        let conv = Tensor::full(Shape::d4(2, 2, 3, 3), 1.0);
        assert!(two_four_mask(&conv).is_err());
        assert!(structured_mask(&w(8, 8, 1), &PruneMode::Coarse).is_err());
    }

    #[test]
    fn degenerate_geometry_degrades_to_full_mask() {
        // k >= bank keeps every position, bank wider than the row
        // collapses to a single ragged bank; neither may panic or
        // over-select.
        let t = w(8, 3, 4);
        for (bank, k) in [(4usize, 5usize), (4, 4), (16, 16), (100, 7)] {
            let m = bank_balanced_mask(&t, bank, k).unwrap();
            assert!(satisfies_pattern(&m, bank, k), "bank {bank} k {k}");
            let per_lane = survivors_per_lane(8, bank, k);
            assert_eq!(m.ones(), 3 * per_lane, "bank {bank} k {k}");
            if k >= bank || k >= 8 {
                assert_eq!(m.ones(), 8 * 3, "bank {bank} k {k} must keep all");
            }
        }
        // bank wider than the row but k below the row width: keeps the
        // top k of the single ragged bank.
        let m = bank_balanced_mask(&t, 100, 5).unwrap();
        assert_eq!(m.ones(), 3 * 5);
        assert!(satisfies_pattern(&m, 100, 5));
    }

    #[test]
    fn pooled_is_bit_identical_to_serial() {
        let pool = cs_parallel::ThreadPool::new(4);
        for (rows, cols, bank, k) in [(16, 16, 4, 2), (17, 5, 4, 2), (23, 9, 8, 3), (5, 1, 3, 2)] {
            let t = w(rows, cols, (rows * cols) as u64);
            let serial = bank_balanced_mask(&t, bank, k).unwrap();
            let pooled = bank_balanced_mask_pooled(&t, bank, k, &pool).unwrap();
            assert_eq!(serial, pooled, "({rows},{cols}) bank {bank} k {k}");
        }
        let t = w(17, 6, 9);
        assert_eq!(
            two_four_mask(&t).unwrap(),
            two_four_mask_pooled(&t, &pool).unwrap()
        );
    }

    #[test]
    fn selection_is_idempotent_on_masked_weights() {
        // Pruning already-pruned weights keeps the same mask: survivors
        // out-rank the zeroed positions, and zero ties resolve to the
        // same (lowest-index) picks.
        let mut t = w(16, 8, 7);
        let m = two_four_mask(&t).unwrap();
        m.apply(&mut t);
        assert_eq!(two_four_mask(&t).unwrap(), m);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(PruneMode::Coarse.name(), "coarse");
        assert_eq!(PruneMode::TwoFour.name(), "two_four");
        assert_eq!(
            PruneMode::BankBalanced { bank: 8, k: 2 }.name(),
            "bank_balanced"
        );
        assert!(!PruneMode::Coarse.is_structured());
        assert!(PruneMode::TwoFour.is_structured());
        assert_eq!(PruneMode::TwoFour.geometry(), Some((4, 2)));
    }
}
