//! The `CSMR` container: a checksummed, length-bounds-checked, canonical
//! byte encoding of one compressed model version.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            4 B   "CSMR"
//! format version   1 B   CONTAINER_VERSION
//! model name       u16 len + UTF-8 ([A-Za-z0-9._-], 1..=MAX_NAME_LEN)
//! model version    u32
//! layer count      u16   (1..=MAX_LAYERS)
//! layers           kind u8 + activation u8 + name + kind-specific body
//! checksum         u32   CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The encoding is *canonical*: every variable-length run is either
//! derived from already-decoded geometry (structured formats store no
//! redundant length fields) or exactly length-prefixed with zero padding
//! enforced, so `encode(decode(bytes)) == bytes` for every container that
//! decodes. The decoder validates every count against the remaining
//! buffer *before* allocating and charges all heap growth against
//! [`MAX_DECODED_BYTES`], in the style of the cs-net wire codec: hostile
//! input yields a typed [`RegistryError`], never a panic, never an
//! allocation beyond the declared caps.

use cs_accel::pe::Activation;
use cs_compress::format::{
    BankBalancedFcLayer, FcLayerFormat, OutputGroup, SharedIndexLayer, TwoFourFcLayer,
};
use cs_quant::Codebook;
use cs_sparsity::structured::survivors_per_lane;

use crate::error::RegistryError;

/// Container magic: `CSMR` (Cambricon-S Model Registry).
pub const MAGIC: [u8; 4] = *b"CSMR";
/// Container format version this build encodes and decodes.
pub const CONTAINER_VERSION: u8 = 1;
/// Hard cap on a whole container file.
pub const MAX_CONTAINER_BYTES: usize = 1 << 26;
/// Hard cap on model and layer names.
pub const MAX_NAME_LEN: usize = 128;
/// Hard cap on layers per model.
pub const MAX_LAYERS: usize = 256;
/// Hard cap on any layer dimension (`n_in`, `n_out`, `group_size`).
pub const MAX_DIM: usize = 1 << 20;
/// Hard cap on shared-index groups per layer.
pub const MAX_GROUPS: usize = 1 << 16;
/// Hard cap on codebook entries per group (u16 weight indices).
pub const MAX_CODEBOOK: usize = 1 << 16;
/// Hard cap on total heap bytes one decode may allocate.
pub const MAX_DECODED_BYTES: usize = 1 << 27;

const KIND_SHARED: u8 = 0;
const KIND_TWO_FOUR: u8 = 1;
const KIND_BANK_BALANCED: u8 = 2;

/// One versioned compressed model: the unit the registry stores, ships
/// over the wire, and the serving runtime hot-loads.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Model name (the registry key together with `version`).
    pub name: String,
    /// Monotonically meaningful version number.
    pub version: u32,
    /// Compressed layers with their activations, input to output.
    pub layers: Vec<(FcLayerFormat, Activation)>,
}

impl ModelArtifact {
    /// Input width of the first layer.
    pub fn n_in(&self) -> usize {
        self.layers.first().map_or(0, |(f, _)| f.n_in())
    }

    /// Output width of the last layer.
    pub fn n_out(&self) -> usize {
        self.layers.last().map_or(0, |(f, _)| f.n_out())
    }

    /// Compact resident footprint in bytes — what the serving memory
    /// budget charges for this model while loaded.
    pub fn resident_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|(f, _)| f.weight_bytes() as u64)
            .sum()
    }

    /// The `name@vN` key used in file names, telemetry, and logs.
    pub fn key(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }
}

/// True when `name` works as a registry key (nonempty, bounded, and
/// restricted to `[A-Za-z0-9._-]` so it is safe in file names).
pub fn valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
        && name != "."
        && name != ".."
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; no external dependency.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes` — the container footer checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Bounded reader + allocation budget
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Heap bytes this decode may still allocate.
    budget: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor {
            buf,
            pos: 0,
            budget: MAX_DECODED_BYTES,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), RegistryError> {
        if n > self.remaining() {
            return Err(RegistryError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Charges `n` heap bytes against the decode budget before the
    /// caller allocates them.
    fn charge(&mut self, n: usize) -> Result<(), RegistryError> {
        if n > self.budget {
            return Err(RegistryError::Oversized {
                field: "decoded bytes",
                value: (MAX_DECODED_BYTES - self.budget).saturating_add(n) as u64,
                cap: MAX_DECODED_BYTES as u64,
            });
        }
        self.budget -= n;
        Ok(())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], RegistryError> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RegistryError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RegistryError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, RegistryError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, RegistryError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// A `u16`-length-prefixed UTF-8 string bounded by [`MAX_NAME_LEN`].
    fn name(&mut self, field: &'static str) -> Result<String, RegistryError> {
        let len = usize::from(self.u16()?);
        if len > MAX_NAME_LEN {
            return Err(RegistryError::Oversized {
                field,
                value: len as u64,
                cap: MAX_NAME_LEN as u64,
            });
        }
        let raw = self.bytes(len)?;
        let s = std::str::from_utf8(raw).map_err(|e| RegistryError::BadField {
            field,
            detail: format!("invalid UTF-8: {e}"),
        })?;
        self.charge(len)?;
        Ok(s.to_string())
    }

    /// A dimension field bounded by [`MAX_DIM`].
    fn dim(&mut self, field: &'static str) -> Result<usize, RegistryError> {
        let v = self.u32()? as usize;
        if v > MAX_DIM {
            return Err(RegistryError::Oversized {
                field,
                value: v as u64,
                cap: MAX_DIM as u64,
            });
        }
        Ok(v)
    }

    /// Reads `count` IEEE-754 bit-exact f32 values after bounds- and
    /// budget-checking the whole run.
    fn f32_run(&mut self, count: usize) -> Result<Vec<f32>, RegistryError> {
        let bytes = count.checked_mul(4).ok_or(RegistryError::Oversized {
            field: "f32 run",
            value: u64::MAX,
            cap: MAX_DECODED_BYTES as u64,
        })?;
        self.need(bytes)?;
        self.charge(bytes)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.f32()?);
        }
        Ok(out)
    }
}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn name(&mut self, s: &str, field: &'static str) -> Result<(), RegistryError> {
        if s.len() > MAX_NAME_LEN {
            return Err(RegistryError::Oversized {
                field,
                value: s.len() as u64,
                cap: MAX_NAME_LEN as u64,
            });
        }
        self.u16(s.len() as u16);
        self.out.extend_from_slice(s.as_bytes());
        Ok(())
    }
    fn dim(&mut self, v: usize, field: &'static str) -> Result<(), RegistryError> {
        if v > MAX_DIM {
            return Err(RegistryError::Oversized {
                field,
                value: v as u64,
                cap: MAX_DIM as u64,
            });
        }
        self.u32(v as u32);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::None => 0,
        Activation::Relu => 1,
        Activation::Sigmoid => 2,
    }
}

fn activation_from(tag: u8) -> Result<Activation, RegistryError> {
    match tag {
        0 => Ok(Activation::None),
        1 => Ok(Activation::Relu),
        2 => Ok(Activation::Sigmoid),
        other => Err(RegistryError::BadField {
            field: "activation",
            detail: format!("unknown tag {other}"),
        }),
    }
}

/// Serializes one model into a standalone `CSMR` container.
///
/// # Errors
///
/// Returns [`RegistryError`] when the artifact violates a container cap
/// (bad name, no layers, oversized geometry) — everything this function
/// accepts is guaranteed to decode back byte-for-byte.
pub fn encode_model(artifact: &ModelArtifact) -> Result<Vec<u8>, RegistryError> {
    if !valid_model_name(&artifact.name) {
        return Err(RegistryError::BadName(artifact.name.clone()));
    }
    if artifact.layers.is_empty() {
        return Err(RegistryError::BadField {
            field: "layer count",
            detail: "a container holds at least one layer".into(),
        });
    }
    if artifact.layers.len() > MAX_LAYERS {
        return Err(RegistryError::Oversized {
            field: "layer count",
            value: artifact.layers.len() as u64,
            cap: MAX_LAYERS as u64,
        });
    }
    let mut w = Writer {
        out: Vec::with_capacity(256),
    };
    w.out.extend_from_slice(&MAGIC);
    w.u8(CONTAINER_VERSION);
    w.name(&artifact.name, "model name")?;
    w.u32(artifact.version);
    w.u16(artifact.layers.len() as u16);
    for (format, activation) in &artifact.layers {
        match format {
            FcLayerFormat::Shared(l) => {
                w.u8(KIND_SHARED);
                w.u8(activation_tag(*activation));
                encode_shared(&mut w, l)?;
            }
            FcLayerFormat::TwoFour(l) => {
                w.u8(KIND_TWO_FOUR);
                w.u8(activation_tag(*activation));
                encode_two_four(&mut w, l)?;
            }
            FcLayerFormat::BankBalanced(l) => {
                w.u8(KIND_BANK_BALANCED);
                w.u8(activation_tag(*activation));
                encode_bank_balanced(&mut w, l)?;
            }
        }
    }
    let crc = crc32(&w.out);
    w.u32(crc);
    if w.out.len() > MAX_CONTAINER_BYTES {
        return Err(RegistryError::Oversized {
            field: "container",
            value: w.out.len() as u64,
            cap: MAX_CONTAINER_BYTES as u64,
        });
    }
    Ok(w.out)
}

fn encode_shared(w: &mut Writer, l: &SharedIndexLayer) -> Result<(), RegistryError> {
    w.name(&l.name, "layer name")?;
    w.dim(l.n_in, "n_in")?;
    w.dim(l.n_out, "n_out")?;
    if l.group_size == 0 {
        return Err(RegistryError::BadField {
            field: "group_size",
            detail: "zero".into(),
        });
    }
    w.dim(l.group_size, "group_size")?;
    if l.quant_bits == 0 || l.quant_bits > 16 {
        return Err(RegistryError::BadField {
            field: "quant_bits",
            detail: format!("{} outside 1..=16", l.quant_bits),
        });
    }
    w.u8(l.quant_bits);
    if l.groups.len() > MAX_GROUPS {
        return Err(RegistryError::Oversized {
            field: "group count",
            value: l.groups.len() as u64,
            cap: MAX_GROUPS as u64,
        });
    }
    w.u32(l.groups.len() as u32);
    for g in &l.groups {
        if g.index.len() != l.n_in {
            return Err(RegistryError::BadField {
                field: "shared index",
                detail: format!("length {} != n_in {}", g.index.len(), l.n_in),
            });
        }
        // LSB-first bit packing; padding bits stay zero (canonical form).
        let mut packed = vec![0u8; l.n_in.div_ceil(8)];
        for (i, bit) in g.index.iter().enumerate() {
            if *bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        w.out.extend_from_slice(&packed);
        let survivors = g.index.iter().filter(|b| **b).count();
        let cb = g.codebook.centroids();
        if cb.len() > MAX_CODEBOOK {
            return Err(RegistryError::Oversized {
                field: "codebook",
                value: cb.len() as u64,
                cap: MAX_CODEBOOK as u64,
            });
        }
        w.u32(cb.len() as u32);
        for &c in cb {
            w.f32(c);
        }
        if g.weights.len() > MAX_DIM {
            return Err(RegistryError::Oversized {
                field: "group rows",
                value: g.weights.len() as u64,
                cap: MAX_DIM as u64,
            });
        }
        w.u32(g.weights.len() as u32);
        for row in &g.weights {
            if row.len() != survivors {
                return Err(RegistryError::BadField {
                    field: "weight row",
                    detail: format!("length {} != survivors {survivors}", row.len()),
                });
            }
            for &q in row {
                if usize::from(q) >= cb.len() {
                    return Err(RegistryError::BadField {
                        field: "weight index",
                        detail: format!("{q} outside codebook of {}", cb.len()),
                    });
                }
                w.u16(q);
            }
        }
    }
    Ok(())
}

fn encode_two_four(w: &mut Writer, l: &TwoFourFcLayer) -> Result<(), RegistryError> {
    w.name(&l.name, "layer name")?;
    w.dim(l.n_in, "n_in")?;
    w.dim(l.n_out, "n_out")?;
    let meta_len = l.n_out * l.n_in.div_ceil(4);
    let value_len = l.n_out * survivors_per_lane(l.n_in, 4, 2);
    if l.meta.len() != meta_len || l.values.len() != value_len {
        return Err(RegistryError::BadField {
            field: "2:4 geometry",
            detail: format!(
                "meta {} / values {} disagree with derived {meta_len} / {value_len}",
                l.meta.len(),
                l.values.len()
            ),
        });
    }
    w.out.extend_from_slice(&l.meta);
    for &v in &l.values {
        w.f32(v);
    }
    Ok(())
}

fn encode_bank_balanced(w: &mut Writer, l: &BankBalancedFcLayer) -> Result<(), RegistryError> {
    w.name(&l.name, "layer name")?;
    w.dim(l.n_in, "n_in")?;
    w.dim(l.n_out, "n_out")?;
    if l.bank == 0 || l.bank > 256 || l.k > l.bank {
        return Err(RegistryError::BadField {
            field: "bank geometry",
            detail: format!("bank {} / k {}", l.bank, l.k),
        });
    }
    w.u32(l.bank as u32);
    w.u32(l.k as u32);
    let stride_len = l.n_out * survivors_per_lane(l.n_in, l.bank, l.k);
    if l.offsets.len() != stride_len || l.values.len() != stride_len {
        return Err(RegistryError::BadField {
            field: "bank-balanced geometry",
            detail: format!(
                "offsets {} / values {} disagree with derived {stride_len}",
                l.offsets.len(),
                l.values.len()
            ),
        });
    }
    for &o in &l.offsets {
        if usize::from(o) >= l.bank {
            return Err(RegistryError::BadField {
                field: "bank offset",
                detail: format!("{o} outside bank {}", l.bank),
            });
        }
    }
    w.out.extend_from_slice(&l.offsets);
    for &v in &l.values {
        w.f32(v);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// Decodes one `CSMR` container, validating every declared length against
/// the remaining buffer before allocating.
///
/// # Errors
///
/// Returns a typed [`RegistryError`] for every malformed input: bad
/// magic/version, checksum mismatch, truncation, oversized declarations,
/// non-canonical padding, inconsistent geometry, or trailing bytes.
pub fn decode_model(bytes: &[u8]) -> Result<ModelArtifact, RegistryError> {
    if bytes.len() > MAX_CONTAINER_BYTES {
        return Err(RegistryError::Oversized {
            field: "container",
            value: bytes.len() as u64,
            cap: MAX_CONTAINER_BYTES as u64,
        });
    }
    // Magic + version + name len + model version + layer count + CRC.
    if bytes.len() < 4 + 1 + 2 + 4 + 2 + 4 {
        return Err(RegistryError::Truncated {
            needed: 17,
            remaining: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(RegistryError::BadMagic);
    }
    if bytes[4] != CONTAINER_VERSION {
        return Err(RegistryError::UnsupportedVersion(bytes[4]));
    }
    let payload = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes([
        bytes[bytes.len() - 4],
        bytes[bytes.len() - 3],
        bytes[bytes.len() - 2],
        bytes[bytes.len() - 1],
    ]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(RegistryError::ChecksumMismatch { stored, computed });
    }
    let mut c = Cursor::new(payload);
    c.pos = 5; // past magic + version
    let name = c.name("model name")?;
    if !valid_model_name(&name) {
        return Err(RegistryError::BadName(name));
    }
    let version = c.u32()?;
    let layer_count = usize::from(c.u16()?);
    if layer_count == 0 {
        return Err(RegistryError::BadField {
            field: "layer count",
            detail: "a container holds at least one layer".into(),
        });
    }
    if layer_count > MAX_LAYERS {
        return Err(RegistryError::Oversized {
            field: "layer count",
            value: layer_count as u64,
            cap: MAX_LAYERS as u64,
        });
    }
    let mut layers = Vec::with_capacity(layer_count);
    let mut prev_out: Option<usize> = None;
    for _ in 0..layer_count {
        let kind = c.u8()?;
        let activation = activation_from(c.u8()?)?;
        let format = match kind {
            KIND_SHARED => FcLayerFormat::Shared(decode_shared(&mut c)?),
            KIND_TWO_FOUR => FcLayerFormat::TwoFour(decode_two_four(&mut c)?),
            KIND_BANK_BALANCED => FcLayerFormat::BankBalanced(decode_bank_balanced(&mut c)?),
            other => {
                return Err(RegistryError::BadField {
                    field: "layer kind",
                    detail: format!("unknown tag {other}"),
                })
            }
        };
        if let Some(prev) = prev_out {
            if format.n_in() != prev {
                return Err(RegistryError::BadField {
                    field: "layer chain",
                    detail: format!("n_in {} != previous n_out {prev}", format.n_in()),
                });
            }
        }
        prev_out = Some(format.n_out());
        layers.push((format, activation));
    }
    if c.remaining() != 0 {
        return Err(RegistryError::TrailingBytes(c.remaining()));
    }
    Ok(ModelArtifact {
        name,
        version,
        layers,
    })
}

fn decode_shared(c: &mut Cursor) -> Result<SharedIndexLayer, RegistryError> {
    let name = c.name("layer name")?;
    let n_in = c.dim("n_in")?;
    let n_out = c.dim("n_out")?;
    let group_size = c.dim("group_size")?;
    if group_size == 0 {
        return Err(RegistryError::BadField {
            field: "group_size",
            detail: "zero".into(),
        });
    }
    let quant_bits = c.u8()?;
    if quant_bits == 0 || quant_bits > 16 {
        return Err(RegistryError::BadField {
            field: "quant_bits",
            detail: format!("{quant_bits} outside 1..=16"),
        });
    }
    let group_count = c.u32()? as usize;
    if group_count > MAX_GROUPS {
        return Err(RegistryError::Oversized {
            field: "group count",
            value: group_count as u64,
            cap: MAX_GROUPS as u64,
        });
    }
    let index_bytes = n_in.div_ceil(8);
    let mut groups = Vec::with_capacity(group_count.min(1024));
    for _ in 0..group_count {
        let packed = c.bytes(index_bytes)?;
        if n_in % 8 != 0 && packed[index_bytes - 1] >> (n_in % 8) != 0 {
            return Err(RegistryError::BadField {
                field: "shared index",
                detail: "nonzero padding bits".into(),
            });
        }
        c.charge(n_in)?;
        let mut index = Vec::with_capacity(n_in);
        let mut survivors = 0usize;
        for i in 0..n_in {
            let bit = packed[i / 8] & (1 << (i % 8)) != 0;
            survivors += usize::from(bit);
            index.push(bit);
        }
        let cb_len = c.u32()? as usize;
        if cb_len > MAX_CODEBOOK {
            return Err(RegistryError::Oversized {
                field: "codebook",
                value: cb_len as u64,
                cap: MAX_CODEBOOK as u64,
            });
        }
        let centroids = c.f32_run(cb_len)?;
        let row_count = c.u32()? as usize;
        if row_count > MAX_DIM {
            return Err(RegistryError::Oversized {
                field: "group rows",
                value: row_count as u64,
                cap: MAX_DIM as u64,
            });
        }
        let row_bytes = row_count
            .checked_mul(survivors)
            .and_then(|n| n.checked_mul(2))
            .ok_or(RegistryError::Oversized {
                field: "group rows",
                value: row_count as u64,
                cap: MAX_DIM as u64,
            })?;
        c.need(row_bytes)?;
        // Each empty row still costs a Vec header; charge both.
        c.charge(row_bytes + row_count * std::mem::size_of::<Vec<u16>>())?;
        let mut weights = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            let mut row = Vec::with_capacity(survivors);
            for _ in 0..survivors {
                let q = c.u16()?;
                if usize::from(q) >= cb_len {
                    return Err(RegistryError::BadField {
                        field: "weight index",
                        detail: format!("{q} outside codebook of {cb_len}"),
                    });
                }
                row.push(q);
            }
            weights.push(row);
        }
        groups.push(OutputGroup {
            index,
            weights,
            codebook: Codebook::new(centroids),
        });
    }
    Ok(SharedIndexLayer {
        name,
        n_in,
        n_out,
        group_size,
        quant_bits,
        groups,
    })
}

fn decode_two_four(c: &mut Cursor) -> Result<TwoFourFcLayer, RegistryError> {
    let name = c.name("layer name")?;
    let n_in = c.dim("n_in")?;
    let n_out = c.dim("n_out")?;
    // Geometry is derived, never declared: no hostile-length surface.
    let meta_len = n_out
        .checked_mul(n_in.div_ceil(4))
        .ok_or(RegistryError::Oversized {
            field: "2:4 meta",
            value: u64::MAX,
            cap: MAX_DECODED_BYTES as u64,
        })?;
    c.need(meta_len)?;
    c.charge(meta_len)?;
    let meta = c.bytes(meta_len)?.to_vec();
    let values = c.f32_run(n_out * survivors_per_lane(n_in, 4, 2))?;
    Ok(TwoFourFcLayer {
        name,
        n_in,
        n_out,
        meta,
        values,
    })
}

fn decode_bank_balanced(c: &mut Cursor) -> Result<BankBalancedFcLayer, RegistryError> {
    let name = c.name("layer name")?;
    let n_in = c.dim("n_in")?;
    let n_out = c.dim("n_out")?;
    let bank = c.u32()? as usize;
    let k = c.u32()? as usize;
    if bank == 0 || bank > 256 || k > bank {
        return Err(RegistryError::BadField {
            field: "bank geometry",
            detail: format!("bank {bank} / k {k}"),
        });
    }
    let stride_len =
        n_out
            .checked_mul(survivors_per_lane(n_in, bank, k))
            .ok_or(RegistryError::Oversized {
                field: "bank-balanced offsets",
                value: u64::MAX,
                cap: MAX_DECODED_BYTES as u64,
            })?;
    c.need(stride_len)?;
    c.charge(stride_len)?;
    let offsets = c.bytes(stride_len)?.to_vec();
    for &o in &offsets {
        if usize::from(o) >= bank {
            return Err(RegistryError::BadField {
                field: "bank offset",
                detail: format!("{o} outside bank {bank}"),
            });
        }
    }
    let values = c.f32_run(stride_len)?;
    Ok(BankBalancedFcLayer {
        name,
        n_in,
        n_out,
        bank,
        k,
        offsets,
        values,
    })
}
