//! On-disk registry: one `CSMR` container per `(name, version)` key.
//!
//! Files live flat in one directory as `{name}@v{version}.csmr`; names
//! are charset-restricted by the container codec, so keys are always
//! safe path components. Saves are atomic (write to a temp sibling, then
//! rename) so a crashed writer never leaves a half-container under a
//! live key.

use std::fs;
use std::path::{Path, PathBuf};

use crate::container::{
    decode_model, encode_model, valid_model_name, ModelArtifact, MAX_CONTAINER_BYTES,
};
use crate::error::RegistryError;

/// One `(name, version)` key present in a store, with its on-disk size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredModel {
    /// Model name.
    pub name: String,
    /// Model version.
    pub version: u32,
    /// Container size on disk in bytes.
    pub bytes: u64,
}

/// A directory of versioned model containers.
#[derive(Debug, Clone)]
pub struct RegistryStore {
    dir: PathBuf,
}

impl RegistryStore {
    /// Opens (creating if needed) the registry directory.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Io`] when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(RegistryStore { dir })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, name: &str, version: u32) -> Result<PathBuf, RegistryError> {
        if !valid_model_name(name) {
            return Err(RegistryError::BadName(name.to_string()));
        }
        Ok(self.dir.join(format!("{name}@v{version}.csmr")))
    }

    /// Encodes and atomically writes one model container, returning its
    /// size on disk.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] when the artifact violates a container
    /// cap or the filesystem write fails.
    pub fn save(&self, artifact: &ModelArtifact) -> Result<u64, RegistryError> {
        let bytes = encode_model(artifact)?;
        let path = self.path_for(&artifact.name, artifact.version)?;
        let tmp = self
            .dir
            .join(format!(".{}@v{}.tmp", artifact.name, artifact.version));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(bytes.len() as u64)
    }

    /// Loads and decodes the container for `(name, version)`.
    ///
    /// The file size is checked against [`MAX_CONTAINER_BYTES`] *before*
    /// reading, so an oversized file is rejected without buffering it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when the key has no container;
    /// otherwise any decode or I/O error.
    pub fn load(&self, name: &str, version: u32) -> Result<ModelArtifact, RegistryError> {
        let path = self.path_for(name, version)?;
        let meta = match fs::metadata(&path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound {
                    model: name.to_string(),
                    version,
                })
            }
            Err(e) => return Err(RegistryError::Io(e)),
        };
        if meta.len() > MAX_CONTAINER_BYTES as u64 {
            return Err(RegistryError::Oversized {
                field: "container",
                value: meta.len(),
                cap: MAX_CONTAINER_BYTES as u64,
            });
        }
        let bytes = fs::read(&path)?;
        let artifact = decode_model(&bytes)?;
        if artifact.name != name || artifact.version != version {
            return Err(RegistryError::BadField {
                field: "container key",
                detail: format!(
                    "file {name}@v{version} holds {}@v{}",
                    artifact.name, artifact.version
                ),
            });
        }
        Ok(artifact)
    }

    /// Raw container bytes for `(name, version)` — what ships over the
    /// wire. Applies the same size cap as [`RegistryStore::load`].
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`RegistryStore::load`].
    pub fn load_bytes(&self, name: &str, version: u32) -> Result<Vec<u8>, RegistryError> {
        let path = self.path_for(name, version)?;
        let meta = match fs::metadata(&path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound {
                    model: name.to_string(),
                    version,
                })
            }
            Err(e) => return Err(RegistryError::Io(e)),
        };
        if meta.len() > MAX_CONTAINER_BYTES as u64 {
            return Err(RegistryError::Oversized {
                field: "container",
                value: meta.len(),
                cap: MAX_CONTAINER_BYTES as u64,
            });
        }
        Ok(fs::read(&path)?)
    }

    /// True when a container exists for `(name, version)`.
    pub fn exists(&self, name: &str, version: u32) -> bool {
        self.path_for(name, version)
            .map(|p| p.is_file())
            .unwrap_or(false)
    }

    /// Removes the container for `(name, version)`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when the key has no container.
    pub fn remove(&self, name: &str, version: u32) -> Result<(), RegistryError> {
        let path = self.path_for(name, version)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(RegistryError::NotFound {
                model: name.to_string(),
                version,
            }),
            Err(e) => Err(RegistryError::Io(e)),
        }
    }

    /// Every `(name, version)` key in the store, sorted by name then
    /// version. Files that do not parse as `{name}@v{version}.csmr` are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Io`] when the directory is unreadable.
    pub fn list(&self) -> Result<Vec<StoredModel>, RegistryError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(stem) = file_name.to_str().and_then(|s| s.strip_suffix(".csmr")) else {
                continue;
            };
            let Some((name, ver)) = stem.rsplit_once("@v") else {
                continue;
            };
            let Ok(version) = ver.parse::<u32>() else {
                continue;
            };
            if !valid_model_name(name) {
                continue;
            }
            out.push(StoredModel {
                name: name.to_string(),
                version,
                bytes: entry.metadata()?.len(),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name).then(a.version.cmp(&b.version)));
        Ok(out)
    }
}
