//! cs-registry — versioned storage for compressed models.
//!
//! The Cambricon-S pipeline compresses a network once (prune → quantize →
//! shared-index encode) and then serves it many times; this crate is the
//! layer between those two phases. It defines:
//!
//! - [`ModelArtifact`]: a named, versioned stack of compressed FC layers
//!   ([`cs_compress::format::FcLayerFormat`]) with activations — the unit
//!   the serving runtime hot-loads;
//! - the `CSMR` container ([`encode_model`] / [`decode_model`]): a
//!   checksummed, canonical, length-bounds-checked byte encoding with
//!   byte-exact round trips and hard pre-allocation caps (hostile input
//!   gets a typed [`RegistryError`], never a panic);
//! - [`RegistryStore`]: a directory of containers keyed by
//!   `(name, version)` with atomic saves.
//!
//! ```
//! use cs_registry::{ModelArtifact, RegistryStore};
//! # use cs_compress::format::{FcLayerFormat, TwoFourFcLayer};
//! # use cs_accel::pe::Activation;
//! # fn layer() -> FcLayerFormat {
//! #     FcLayerFormat::TwoFour(TwoFourFcLayer {
//! #         name: "fc0".into(), n_in: 4, n_out: 1,
//! #         meta: vec![0b0100], values: vec![1.0, 2.0],
//! #     })
//! # }
//! let dir = std::env::temp_dir().join("csmr-doc-example");
//! let store = RegistryStore::open(&dir).unwrap();
//! let artifact = ModelArtifact {
//!     name: "mlp".into(),
//!     version: 1,
//!     layers: vec![(layer(), Activation::Relu)],
//! };
//! store.save(&artifact).unwrap();
//! assert_eq!(store.load("mlp", 1).unwrap(), artifact);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod container;
pub mod error;
pub mod store;

pub use container::{
    crc32, decode_model, encode_model, valid_model_name, ModelArtifact, CONTAINER_VERSION, MAGIC,
    MAX_CONTAINER_BYTES, MAX_DECODED_BYTES, MAX_DIM, MAX_LAYERS, MAX_NAME_LEN,
};
pub use error::RegistryError;
pub use store::{RegistryStore, StoredModel};

#[cfg(test)]
mod tests {
    use super::*;
    use cs_accel::pe::Activation;
    use cs_compress::format::{
        BankBalancedFcLayer, FcLayerFormat, OutputGroup, SharedIndexLayer, TwoFourFcLayer,
    };
    use cs_quant::Codebook;
    use cs_sparsity::structured::survivors_per_lane;

    fn shared_layer(name: &str, n_in: usize, n_out: usize) -> FcLayerFormat {
        let group_size = 4.min(n_out).max(1);
        let index: Vec<bool> = (0..n_in).map(|i| i % 2 == 0).collect();
        let survivors = index.iter().filter(|b| **b).count();
        // Finite centroids so derived PartialEq works in equality-based
        // tests; NaN payloads get their own bitwise test below.
        let codebook = Codebook::new(vec![-1.5, 0.0, 0.25, 2.0]);
        let mut groups = Vec::new();
        let mut remaining = n_out;
        while remaining > 0 {
            let rows = group_size.min(remaining);
            groups.push(OutputGroup {
                index: index.clone(),
                weights: (0..rows)
                    .map(|r| (0..survivors).map(|s| ((r + s) % 4) as u16).collect())
                    .collect(),
                codebook: codebook.clone(),
            });
            remaining -= rows;
        }
        FcLayerFormat::Shared(SharedIndexLayer {
            name: name.into(),
            n_in,
            n_out,
            group_size,
            quant_bits: 8,
            groups,
        })
    }

    fn two_four_layer(name: &str, n_in: usize, n_out: usize) -> FcLayerFormat {
        let stride = survivors_per_lane(n_in, 4, 2);
        FcLayerFormat::TwoFour(TwoFourFcLayer {
            name: name.into(),
            n_in,
            n_out,
            meta: vec![0b0100; n_out * n_in.div_ceil(4)],
            values: (0..n_out * stride).map(|i| i as f32 * 0.5 - 1.0).collect(),
        })
    }

    fn bank_layer(name: &str, n_in: usize, n_out: usize) -> FcLayerFormat {
        let bank = 8.min(n_in).max(1);
        let k = 2.min(bank);
        let stride = survivors_per_lane(n_in, bank, k);
        FcLayerFormat::BankBalanced(BankBalancedFcLayer {
            name: name.into(),
            n_in,
            n_out,
            bank,
            k,
            offsets: (0..n_out * stride).map(|i| (i % k) as u8).collect(),
            values: (0..n_out * stride).map(|i| -(i as f32) * 0.125).collect(),
        })
    }

    fn artifact() -> ModelArtifact {
        ModelArtifact {
            name: "unit-mlp".into(),
            version: 7,
            layers: vec![
                (shared_layer("fc0", 12, 8), Activation::Relu),
                (two_four_layer("fc1", 8, 6), Activation::Sigmoid),
                (bank_layer("fc2", 6, 3), Activation::None),
            ],
        }
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let art = artifact();
        let bytes = encode_model(&art).unwrap();
        let decoded = decode_model(&bytes).unwrap();
        assert_eq!(decoded, art);
        assert_eq!(encode_model(&decoded).unwrap(), bytes);
    }

    #[test]
    fn nan_and_negative_zero_codebook_values_survive_bitwise() {
        let payload = [f32::NAN, -0.0, 0.0, f32::NEG_INFINITY];
        let mut art = artifact();
        if let FcLayerFormat::Shared(l) = &mut art.layers[0].0 {
            for g in &mut l.groups {
                g.codebook = Codebook::new(payload.to_vec());
            }
        }
        let bytes = encode_model(&art).unwrap();
        let decoded = decode_model(&bytes).unwrap();
        let FcLayerFormat::Shared(l) = &decoded.layers[0].0 else {
            panic!("layer kind changed in round trip");
        };
        for (got, want) in l.groups[0].codebook.centroids().iter().zip(payload) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(encode_model(&decoded).unwrap(), bytes);
    }

    #[test]
    fn every_truncation_prefix_fails_typed() {
        let bytes = encode_model(&artifact()).unwrap();
        for n in 0..bytes.len() {
            let err = decode_model(&bytes[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    RegistryError::Truncated { .. } | RegistryError::ChecksumMismatch { .. }
                ),
                "prefix {n}: unexpected {err}"
            );
        }
    }

    #[test]
    fn bit_flips_never_round_trip_silently() {
        let bytes = encode_model(&artifact()).unwrap();
        for pos in [0, 4, 5, 9, 16, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            match decode_model(&bad) {
                // CRC catches almost everything; anything that slips
                // through (a flip inside the CRC itself cannot) must
                // still be a typed failure.
                Err(_) => {}
                Ok(art) => assert_ne!(encode_model(&art).unwrap(), bytes),
            }
        }
    }

    #[test]
    fn hostile_declared_lengths_are_capped_before_allocation() {
        // A syntactically valid header whose layer count is absurd: the
        // decoder must reject on the cap, not attempt the allocation.
        let mut bytes = encode_model(&artifact()).unwrap();
        let name_len = 2 + "unit-mlp".len();
        let layer_count_at = 4 + 1 + name_len + 4;
        bytes[layer_count_at] = 0xFF;
        bytes[layer_count_at + 1] = 0xFF;
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        match decode_model(&bytes).unwrap_err() {
            RegistryError::Oversized { field, cap, .. } => {
                assert_eq!(field, "layer count");
                assert_eq!(cap, MAX_LAYERS as u64);
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn bad_magic_version_and_trailing_bytes_are_typed() {
        let good = encode_model(&artifact()).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_model(&bad).unwrap_err(),
            RegistryError::BadMagic
        ));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            decode_model(&bad).unwrap_err(),
            RegistryError::UnsupportedVersion(9)
        ));

        let mut bad = good.clone();
        let body_len = bad.len() - 4;
        bad.truncate(body_len);
        bad.push(0);
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_model(&bad).unwrap_err(),
            RegistryError::TrailingBytes(1)
        ));
    }

    #[test]
    fn store_round_trips_and_lists_sorted() {
        let dir = std::env::temp_dir().join(format!("csmr-store-rt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = RegistryStore::open(&dir).unwrap();
        let mut v1 = artifact();
        let mut v2 = artifact();
        v2.version = 8;
        v1.name = "alpha".into();
        v2.name = "alpha".into();
        let mut other = artifact();
        other.name = "beta".into();
        store.save(&v2).unwrap();
        store.save(&v1).unwrap();
        store.save(&other).unwrap();
        assert_eq!(store.load("alpha", 7).unwrap(), v1);
        assert_eq!(store.load("alpha", 8).unwrap(), v2);
        let listed = store.list().unwrap();
        let keys: Vec<(String, u32)> = listed.iter().map(|m| (m.name.clone(), m.version)).collect();
        assert_eq!(
            keys,
            vec![
                ("alpha".to_string(), 7),
                ("alpha".to_string(), 8),
                ("beta".to_string(), 7)
            ]
        );
        assert!(store.exists("alpha", 7));
        store.remove("alpha", 7).unwrap();
        assert!(!store.exists("alpha", 7));
        assert!(matches!(
            store.load("alpha", 7).unwrap_err(),
            RegistryError::NotFound { .. }
        ));
    }

    #[test]
    fn traversal_names_are_rejected() {
        let dir = std::env::temp_dir().join(format!("csmr-store-names-{}", std::process::id()));
        let store = RegistryStore::open(&dir).unwrap();
        for name in ["../evil", "a/b", "", ".", "..", "spa ce"] {
            assert!(
                matches!(store.load(name, 1).unwrap_err(), RegistryError::BadName(_)),
                "{name:?} accepted"
            );
        }
    }
}
