//! Typed failure taxonomy for container decode and store I/O.
//!
//! Every malformed container maps to one of these variants — the decoder
//! never panics and never allocates past the declared caps, mirroring the
//! cs-net codec's hostile-input posture.

use std::fmt;

/// Everything that can go wrong saving, loading, or decoding a model
/// container.
#[derive(Debug)]
pub enum RegistryError {
    /// The buffer does not start with the `CSMR` container magic.
    BadMagic,
    /// The container format version byte is not one this build decodes.
    UnsupportedVersion(u8),
    /// The trailing CRC-32 does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the container footer.
        stored: u32,
        /// Checksum recomputed over the payload bytes.
        computed: u32,
    },
    /// A declared field runs past the end of the buffer.
    Truncated {
        /// Bytes the field needs.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A declared size exceeds its documented cap.
    Oversized {
        /// The offending field.
        field: &'static str,
        /// The declared value.
        value: u64,
        /// The cap it violates.
        cap: u64,
    },
    /// A field is structurally invalid (bad enum tag, non-canonical
    /// padding, inconsistent geometry, ...).
    BadField {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// Decode consumed the payload but bytes remain before the footer.
    TrailingBytes(usize),
    /// A model name unusable as an on-disk key (empty, too long, or
    /// containing characters outside `[A-Za-z0-9._-]`).
    BadName(String),
    /// The store holds no container for this `(name, version)` key.
    NotFound {
        /// Requested model name.
        model: String,
        /// Requested version.
        version: u32,
    },
    /// Underlying filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::BadMagic => write!(f, "not a CSMR model container (bad magic)"),
            RegistryError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            RegistryError::ChecksumMismatch { stored, computed } => write!(
                f,
                "container checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            RegistryError::Truncated { needed, remaining } => write!(
                f,
                "container truncated: field needs {needed} bytes, {remaining} remain"
            ),
            RegistryError::Oversized { field, value, cap } => {
                write!(f, "{field} declares {value}, cap is {cap}")
            }
            RegistryError::BadField { field, detail } => write!(f, "bad {field}: {detail}"),
            RegistryError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last layer")
            }
            RegistryError::BadName(name) => write!(f, "unusable model name {name:?}"),
            RegistryError::NotFound { model, version } => {
                write!(f, "model {model}@v{version} not in the registry")
            }
            RegistryError::Io(e) => write!(f, "registry I/O: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}
