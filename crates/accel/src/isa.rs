//! The accelerator's VLIW-style instruction set (Section V-C).
//!
//! The control processor (CP) decodes a compact instruction stream from
//! the instruction buffer into control signals for the DMA engine, the
//! NSM and the NFU. The compiler in [`crate::compiler`] emits these
//! programs from a layer description; the executor in [`crate::exec`]
//! interprets them.

use crate::pe::Activation;

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// DMA: load `len` input neurons starting at `offset` into the free
    /// NBin half.
    LoadNeurons {
        /// First input neuron index.
        offset: usize,
        /// Number of neurons.
        len: usize,
    },
    /// DMA: load the synapse-index slice of `group` covering inputs
    /// `[offset, offset + len)` into the SIB.
    LoadIndex {
        /// Output group.
        group: usize,
        /// First input position of the slice.
        offset: usize,
        /// Slice length.
        len: usize,
    },
    /// DMA: load the compact synapse slice of `group` for inputs
    /// `[offset, offset + len)` (plus the group codebook on the first
    /// slice) into the PEs' SBs.
    LoadSynapses {
        /// Output group.
        group: usize,
        /// First input position of the slice.
        offset: usize,
        /// Slice length.
        len: usize,
    },
    /// NSM + NFU: select neurons for `group` over the NBin window
    /// `[offset, offset + len)` and accumulate partial sums into NBout.
    Compute {
        /// Output group.
        group: usize,
        /// First input position of the window.
        offset: usize,
        /// Window length.
        len: usize,
    },
    /// NFU tail: apply the activation to the group's accumulated outputs
    /// (issued once all input tiles have been accumulated).
    Activate {
        /// Output group.
        group: usize,
        /// Nonlinear function.
        activation: Activation,
    },
    /// DMA: store `count` finished outputs starting at `first` from NBout
    /// to memory.
    StoreOutputs {
        /// First output neuron index.
        first: usize,
        /// Number of outputs.
        count: usize,
    },
}

/// Error decoding a binary instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending opcode byte.
    pub opcode: u8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown opcode {:#04x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

/// Size of one encoded VLIW word in bytes.
pub const WORD_BYTES: usize = 12;

impl Instruction {
    /// Encodes the instruction into a fixed-width VLIW word:
    /// `[opcode u8][act u8][group u16][a u32][b u32]` (little endian).
    pub fn encode(&self) -> [u8; WORD_BYTES] {
        let (op, act, group, a, b): (u8, u8, u16, u32, u32) = match *self {
            Instruction::LoadNeurons { offset, len } => (0, 0, 0, offset as u32, len as u32),
            Instruction::LoadIndex { group, offset, len } => {
                (1, 0, group as u16, offset as u32, len as u32)
            }
            Instruction::LoadSynapses { group, offset, len } => {
                (2, 0, group as u16, offset as u32, len as u32)
            }
            Instruction::Compute { group, offset, len } => {
                (3, 0, group as u16, offset as u32, len as u32)
            }
            Instruction::Activate { group, activation } => {
                let act = match activation {
                    Activation::None => 0,
                    Activation::Relu => 1,
                    Activation::Sigmoid => 2,
                };
                (4, act, group as u16, 0, 0)
            }
            Instruction::StoreOutputs { first, count } => (5, 0, 0, first as u32, count as u32),
        };
        let mut w = [0u8; WORD_BYTES];
        w[0] = op;
        w[1] = act;
        w[2..4].copy_from_slice(&group.to_le_bytes());
        w[4..8].copy_from_slice(&a.to_le_bytes());
        w[8..12].copy_from_slice(&b.to_le_bytes());
        w
    }

    /// Decodes a VLIW word (what the CP does per issue slot).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for an unknown opcode or activation code.
    pub fn decode(w: &[u8; WORD_BYTES]) -> Result<Self, DecodeError> {
        let group = u16::from_le_bytes([w[2], w[3]]) as usize;
        let a = u32::from_le_bytes([w[4], w[5], w[6], w[7]]) as usize;
        let b = u32::from_le_bytes([w[8], w[9], w[10], w[11]]) as usize;
        Ok(match w[0] {
            0 => Instruction::LoadNeurons { offset: a, len: b },
            1 => Instruction::LoadIndex {
                group,
                offset: a,
                len: b,
            },
            2 => Instruction::LoadSynapses {
                group,
                offset: a,
                len: b,
            },
            3 => Instruction::Compute {
                group,
                offset: a,
                len: b,
            },
            4 => Instruction::Activate {
                group,
                activation: match w[1] {
                    0 => Activation::None,
                    1 => Activation::Relu,
                    2 => Activation::Sigmoid,
                    other => return Err(DecodeError { opcode: other }),
                },
            },
            5 => Instruction::StoreOutputs { first: a, count: b },
            other => return Err(DecodeError { opcode: other }),
        })
    }
}

/// A compiled program for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Instruction stream in issue order.
    pub instrs: Vec<Instruction>,
    /// Total input neurons the program reads.
    pub n_in: usize,
    /// Total output neurons the program produces.
    pub n_out: usize,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Encoded size in bytes, for IB sizing.
    pub fn byte_size(&self) -> usize {
        self.instrs.len() * WORD_BYTES
    }

    /// Serializes the whole instruction stream (the IB image).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size());
        for i in &self.instrs {
            out.extend_from_slice(&i.encode());
        }
        out
    }

    /// Deserializes an IB image back into instructions.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on unknown opcodes; trailing partial words
    /// are rejected as opcode `0xff`.
    pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
        if !bytes.len().is_multiple_of(WORD_BYTES) {
            return Err(DecodeError { opcode: 0xff });
        }
        bytes
            .chunks_exact(WORD_BYTES)
            .map(|c| {
                let mut w = [0u8; WORD_BYTES];
                w.copy_from_slice(c);
                Instruction::decode(&w)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_sizes() {
        let p = Program {
            instrs: vec![
                Instruction::LoadNeurons { offset: 0, len: 16 },
                Instruction::StoreOutputs { first: 0, count: 4 },
            ],
            n_in: 16,
            n_out: 4,
        };
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.byte_size(), 24);
    }

    #[test]
    fn every_instruction_roundtrips_through_the_word_format() {
        let instrs = vec![
            Instruction::LoadNeurons {
                offset: 123,
                len: 2048,
            },
            Instruction::LoadIndex {
                group: 7,
                offset: 4096,
                len: 512,
            },
            Instruction::LoadSynapses {
                group: 255,
                offset: 0,
                len: 25088,
            },
            Instruction::Compute {
                group: 3,
                offset: 2048,
                len: 2048,
            },
            Instruction::Activate {
                group: 9,
                activation: Activation::Relu,
            },
            Instruction::Activate {
                group: 0,
                activation: Activation::Sigmoid,
            },
            Instruction::StoreOutputs {
                first: 4096,
                count: 1000,
            },
        ];
        for i in &instrs {
            let w = i.encode();
            assert_eq!(&Instruction::decode(&w).unwrap(), i);
        }
        let p = Program {
            instrs: instrs.clone(),
            n_in: 25088,
            n_out: 4096,
        };
        assert_eq!(Program::decode_stream(&p.encode()).unwrap(), instrs);
    }

    #[test]
    fn bad_opcode_and_partial_word_rejected() {
        let mut w = [0u8; WORD_BYTES];
        w[0] = 0x7f;
        assert!(Instruction::decode(&w).is_err());
        w[0] = 4;
        w[1] = 9; // unknown activation
        assert!(Instruction::decode(&w).is_err());
        assert!(Program::decode_stream(&[0u8; WORD_BYTES + 1]).is_err());
    }
}
