//! Cycle-approximate timing model for full-size layers.
//!
//! The functional executor is exact but walks every synapse; for the
//! paper's full-scale workloads the experiments instead use this
//! statistical model, which applies the same structural throughput rules
//! to *expected* selection counts:
//!
//! * NSM scan: `16·T_m` candidate neurons per cycle, shared by all PEs;
//! * NSM emit / PEFU: `T_m` selected neurons (= MACs per PE) per cycle;
//! * SSM/SB supply: `4·T_m` static-survivor synapses per cycle per PE,
//!   bounded by the WDM decode rate for the dictionary width;
//! * DMA overlapped with compute through ping-pong buffering.

use cs_nn::spec::{LayerSpec, LayerSpecKind};
use cs_sim::{DramModel, OverlapScheduler, SimStats};

use crate::config::AccelConfig;
use crate::ssm;

/// Shape + sparsity summary of one layer for the timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTiming {
    /// Layer name (reports only).
    pub name: String,
    /// Inputs per output computation (FC: `n_in`; conv: `n_fin·kx·ky`).
    pub n_in: usize,
    /// Outputs per position (FC: `n_out`; conv: `n_fout`).
    pub n_out: usize,
    /// Spatial positions (conv: `oh·ow`; FC/LSTM: timesteps or 1).
    pub positions: usize,
    /// Static synapse density (surviving / total).
    pub static_density: f64,
    /// Dynamic input-neuron density (non-zero fraction).
    pub dynamic_density: f64,
    /// Dictionary bits per stored weight (16 = uncompressed).
    pub weight_bits: u8,
    /// Total input activations loaded from DRAM.
    pub input_neurons: usize,
    /// Total output activations stored to DRAM.
    pub output_neurons: usize,
}

impl LayerTiming {
    /// A fully-connected layer.
    pub fn fc(
        n_in: usize,
        n_out: usize,
        static_density: f64,
        dynamic_density: f64,
        weight_bits: u8,
    ) -> Self {
        LayerTiming {
            name: "fc".into(),
            n_in,
            n_out,
            positions: 1,
            static_density,
            dynamic_density,
            weight_bits,
            input_neurons: n_in,
            output_neurons: n_out,
        }
    }

    /// A convolutional layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        n_fin: usize,
        n_fout: usize,
        k: usize,
        oh: usize,
        ow: usize,
        in_h: usize,
        in_w: usize,
        static_density: f64,
        dynamic_density: f64,
        weight_bits: u8,
    ) -> Self {
        LayerTiming {
            name: "conv".into(),
            n_in: n_fin * k * k,
            n_out: n_fout,
            positions: oh * ow,
            static_density,
            dynamic_density,
            weight_bits,
            input_neurons: n_fin * in_h * in_w,
            output_neurons: n_fout * oh * ow,
        }
    }

    /// Builds a timing summary from a network-spec layer plus measured
    /// sparsities.
    ///
    /// # Panics
    ///
    /// Panics for pooling layers (no MACs to time).
    pub fn from_spec(
        layer: &LayerSpec,
        static_density: f64,
        dynamic_density: f64,
        weight_bits: u8,
    ) -> Self {
        match *layer.kind() {
            LayerSpecKind::Conv {
                n_fin,
                n_fout,
                kx,
                in_h,
                in_w,
                groups,
                ..
            } => {
                let (oh, ow) = layer.output_hw();
                let mut t = LayerTiming::conv(
                    n_fin / groups,
                    n_fout,
                    kx,
                    oh,
                    ow,
                    in_h,
                    in_w,
                    static_density,
                    dynamic_density,
                    weight_bits,
                );
                t.name = layer.name().to_string();
                t.input_neurons = n_fin * in_h * in_w;
                t
            }
            LayerSpecKind::Fc { n_in, n_out } => {
                let mut t =
                    LayerTiming::fc(n_in, n_out, static_density, dynamic_density, weight_bits);
                t.name = layer.name().to_string();
                t
            }
            LayerSpecKind::Lstm {
                n_in,
                n_hidden,
                seq_len,
            } => LayerTiming {
                name: layer.name().to_string(),
                n_in: n_in + n_hidden,
                n_out: 4 * n_hidden,
                positions: seq_len,
                static_density,
                dynamic_density,
                weight_bits,
                input_neurons: seq_len * (n_in + n_hidden),
                output_neurons: seq_len * n_hidden,
            },
            LayerSpecKind::Pool { .. } => panic!("pooling layers are not timed"),
        }
    }

    /// Surviving synapse count.
    pub fn surviving_weights(&self) -> u64 {
        ((self.n_in * self.n_out) as f64 * self.static_density).round() as u64
    }

    /// Dense MAC count for the whole layer.
    pub fn dense_macs(&self) -> u64 {
        (self.n_in * self.n_out * self.positions) as u64
    }

    /// Expected MACs actually executed with both sparsities exploited.
    pub fn sparse_macs(&self) -> u64 {
        (self.dense_macs() as f64 * self.static_density * self.dynamic_density).round() as u64
    }
}

/// Result of a timing simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingRun {
    /// Activity counters; `stats.cycles` is the overlapped total.
    pub stats: SimStats,
    /// Pure compute-pipeline cycles (no DMA).
    pub compute_cycles: u64,
    /// Pure DMA cycles (no compute).
    pub dma_cycles: u64,
}

impl TimingRun {
    /// Wall-clock time in microseconds at the configured frequency.
    pub fn micros(&self, freq_ghz: f64) -> f64 {
        self.stats.cycles as f64 / (freq_ghz * 1000.0)
    }
}

/// Per-(position, group) compute cycles under the structural limits.
pub fn group_cycles(
    cfg: &AccelConfig,
    n_in: usize,
    static_survivors: usize,
    needed: usize,
    weight_bits: u8,
) -> u64 {
    let scan = n_in.div_ceil(cfg.nsm_window()) as u64;
    let supply = ssm::supply_cycles(static_survivors, cfg.tm, weight_bits);
    let pefu = (needed.div_ceil(cfg.tm) as u64).max(1);
    scan.max(supply).max(pefu)
}

/// Simulates one layer on Cambricon-S, exploiting both sparsities.
pub fn simulate_layer(cfg: &AccelConfig, layer: &LayerTiming) -> TimingRun {
    simulate_layer_with(cfg, layer, &DramModel::paper_default())
}

/// Simulates one layer with an explicit DRAM model.
pub fn simulate_layer_with(cfg: &AccelConfig, layer: &LayerTiming, dram: &DramModel) -> TimingRun {
    let groups = layer.n_out.div_ceil(cfg.tn);
    let static_surv = (layer.n_in as f64 * layer.static_density).round() as usize;
    let needed = (static_surv as f64 * layer.dynamic_density).round() as usize;
    let per_group = group_cycles(cfg, layer.n_in, static_surv, needed, layer.weight_bits);
    let compute_cycles = per_group * groups as u64 * layer.positions as u64;

    // DMA traffic: weights and indexes once, activations once.
    let weight_bytes = (layer.surviving_weights() * u64::from(layer.weight_bits)).div_ceil(8);
    // Codebook LUTs: one 2^bits-entry, 16-bit table per ~16K weights.
    let lut_bytes = if layer.weight_bits < 16 {
        let luts = layer.surviving_weights().div_ceil(16_384).max(1);
        luts * (1u64 << layer.weight_bits.min(12)) * 2
    } else {
        0
    };
    let index_bytes = (groups as u64 * layer.n_in as u64).div_ceil(8);
    let in_bytes = (layer.input_neurons * cfg.neuron_bytes) as u64;
    let out_bytes = (layer.output_neurons * cfg.neuron_bytes) as u64;
    let read_bytes = weight_bytes + lut_bytes + index_bytes + in_bytes;
    let load_cycles = dram.stream_cycles(read_bytes);
    let store_cycles = dram.stream_cycles(out_bytes);
    let dma_cycles = load_cycles + store_cycles;

    // Overlap via ping-pong buffering across virtual tiles.
    let mut sched = OverlapScheduler::new();
    let tiles = 16u64;
    for _ in 0..tiles {
        sched.tile(
            load_cycles / tiles,
            compute_cycles / tiles,
            store_cycles / tiles,
        );
    }
    let cycles = sched.finish() + dram.latency_cycles;

    let macs = layer.positions as u64 * layer.n_out as u64 * needed as u64;
    let stats = SimStats {
        cycles,
        macs,
        dram_read_bytes: read_bytes,
        dram_write_bytes: out_bytes,
        nbin_bytes: (layer.positions * groups * layer.n_in * cfg.neuron_bytes) as u64,
        nbout_bytes: 2 * (layer.positions * layer.n_out * cfg.neuron_bytes) as u64,
        sb_bytes: (layer.positions as u64)
            * (layer.n_out as u64)
            * ((static_surv as u64 * u64::from(layer.weight_bits)).div_ceil(8)),
        sib_bytes: (layer.positions * groups * layer.n_in / 8) as u64,
        nsm_selections: (layer.positions * groups * needed) as u64,
        ssm_selections: macs,
        wdm_decodes: (layer.positions * layer.n_out * static_surv) as u64,
        compute_busy_cycles: sched.compute_busy_cycles(),
        dram_stall_cycles: cycles.saturating_sub(sched.compute_busy_cycles()),
        // The streamed input is split evenly over the virtual tiles;
        // NBin holds one tile at a time.
        nbin_peak_bytes: in_bytes.div_ceil(tiles),
    };
    TimingRun {
        stats,
        compute_cycles,
        dma_cycles,
    }
}

/// Simulates the accelerator running the *dense* representation
/// (ACC-dense): no sparsity exploited, 16-bit weights.
pub fn simulate_layer_dense(cfg: &AccelConfig, layer: &LayerTiming) -> TimingRun {
    let dense = LayerTiming {
        static_density: 1.0,
        dynamic_density: 1.0,
        weight_bits: 16,
        ..layer.clone()
    };
    simulate_layer(cfg, &dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AccelConfig {
        AccelConfig::paper_default()
    }

    #[test]
    fn dense_fc_is_memory_bound() {
        // AlexNet fc6 dense: 37.7M weights at 16-bit = 75.5MB.
        let l = LayerTiming::fc(9216, 4096, 1.0, 1.0, 16);
        let run = simulate_layer(&cfg(), &l);
        assert!(run.dma_cycles > run.compute_cycles);
        // ~75MB / 256 B/cycle ≈ 295k cycles.
        assert!(run.stats.cycles > 290_000);
    }

    #[test]
    fn sparse_fc_much_faster_than_dense() {
        let dense = simulate_layer(&cfg(), &LayerTiming::fc(9216, 4096, 1.0, 1.0, 16));
        let sparse = simulate_layer(&cfg(), &LayerTiming::fc(9216, 4096, 0.1, 0.6, 4));
        let speedup = dense.stats.cycles as f64 / sparse.stats.cycles as f64;
        assert!(speedup > 10.0, "speedup {speedup}");
    }

    #[test]
    fn conv_sparse_speedup_bounded_by_16x() {
        // Fig. 21: the NSM selects 16 of 256, so conv speedup saturates
        // near 16x.
        let dense = simulate_layer_dense(
            &cfg(),
            &LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 1.0, 1.0, 16),
        );
        let very_sparse = simulate_layer(
            &cfg(),
            &LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 0.02, 0.5, 8),
        );
        let speedup = dense.stats.cycles as f64 / very_sparse.stats.cycles as f64;
        assert!(speedup <= 16.5, "speedup {speedup}");
        assert!(speedup > 8.0, "speedup {speedup}");
    }

    #[test]
    fn group_cycles_limits() {
        let c = cfg();
        // Scan-limited: huge window, almost nothing selected.
        assert_eq!(group_cycles(&c, 2560, 10, 5, 4), 10);
        // Supply-limited: dynamic density below 25%.
        assert_eq!(group_cycles(&c, 256, 640, 16, 4), 10);
        // PEFU-limited.
        assert_eq!(group_cycles(&c, 256, 320, 320, 4), 20);
    }

    #[test]
    fn from_spec_conv_geometry() {
        use cs_nn::spec::{Model, NetworkSpec, Scale};
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let conv2 = spec.layers().iter().find(|l| l.name() == "conv2").unwrap();
        let t = LayerTiming::from_spec(conv2, 0.35, 0.6, 8);
        assert_eq!(t.n_in, 48 * 25); // grouped conv
        assert_eq!(t.n_out, 256);
        assert_eq!(t.positions, 27 * 27);
    }

    #[test]
    fn sparse_macs_expectation() {
        let l = LayerTiming::fc(1000, 100, 0.1, 0.5, 4);
        assert_eq!(l.dense_macs(), 100_000);
        assert_eq!(l.sparse_macs(), 5_000);
    }

    #[test]
    fn lstm_spec_timing() {
        use cs_nn::spec::{Model, NetworkSpec, Scale};
        let spec = NetworkSpec::model(Model::Lstm, Scale::Full);
        let l = LayerTiming::from_spec(&spec.layers()[0], 0.125, 0.7, 4);
        assert_eq!(l.positions, 20);
        assert_eq!(l.n_in, 760 + 600);
        assert_eq!(l.n_out, 4 * 600);
        let run = simulate_layer(&cfg(), &l);
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn quantization_reduces_dma() {
        let l16 = LayerTiming::fc(4096, 4096, 0.1, 1.0, 16);
        let l4 = LayerTiming::fc(4096, 4096, 0.1, 1.0, 4);
        let r16 = simulate_layer(&cfg(), &l16);
        let r4 = simulate_layer(&cfg(), &l4);
        assert!(r4.stats.dram_read_bytes * 3 < r16.stats.dram_read_bytes);
        assert!(r4.stats.cycles < r16.stats.cycles);
    }
}
