//! The Neuron Selector Module (NSM) — Fig. 12.
//!
//! The NSM is the accelerator's key component: it is *shared by all PEs*
//! because coarse-grained pruning gives every output neuron in a group
//! the same synapse indexes. Per window it:
//!
//! 1. computes **neuron indexes** — one bit per input, set when the
//!    neuron's value is non-zero (dynamic sparsity);
//! 2. ANDs them with the shared **synapse indexes** (static sparsity) to
//!    form the **neuron flags** — the inputs that actually need MACs;
//! 3. emits the flagged neuron *values* plus an **indexing string**: for
//!    each selected neuron, its position within the compact synapse
//!    storage (the running popcount of the synapse indexes), which the
//!    per-PE SSMs use to MUX out the matching weights.

/// Output of one NSM selection pass.
#[derive(Debug, Clone, PartialEq)]
pub struct NsmSelection {
    /// Values of the selected (needed) neurons, in input order.
    pub neurons: Vec<f32>,
    /// For each selected neuron, its position in the compact synapse
    /// storage (the paper's *indexing string*).
    pub indexing: Vec<usize>,
    /// Number of input positions scanned.
    pub scanned: usize,
    /// Number of static survivors in the window (`popcount` of the
    /// synapse indexes) — what the SBs must stream.
    pub static_survivors: usize,
}

/// Runs the NSM selection logic over one window of input neurons with the
/// group's shared synapse indexes.
///
/// # Panics
///
/// Panics when `neurons` and `synapse_index` lengths differ.
pub fn select(neurons: &[f32], synapse_index: &[bool]) -> NsmSelection {
    assert_eq!(
        neurons.len(),
        synapse_index.len(),
        "neuron/index width mismatch"
    );
    let mut out_neurons = Vec::new();
    let mut indexing = Vec::new();
    let mut compact_pos = 0usize; // running popcount of synapse indexes
    for (i, &syn) in synapse_index.iter().enumerate() {
        if syn {
            // Neuron flag = synapse index AND neuron index (non-zero).
            if neurons[i] != 0.0 {
                out_neurons.push(neurons[i]);
                indexing.push(compact_pos);
            }
            compact_pos += 1;
        }
    }
    NsmSelection {
        neurons: out_neurons,
        indexing,
        scanned: neurons.len(),
        static_survivors: compact_pos,
    }
}

/// NSM throughput: cycles to process a window, scanning
/// `window` candidates per cycle and emitting `tm` selected neurons per
/// cycle (whichever limit binds).
pub fn cycles(scanned: usize, selected: usize, window: usize, tm: usize) -> u64 {
    let scan = scanned.div_ceil(window.max(1)) as u64;
    let emit = selected.div_ceil(tm.max(1)) as u64;
    scan.max(emit).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Fig. 10/Fig. 12: eight input neurons with
    /// n4 = n6 = n8 = 0, synapses surviving at positions {1, 4, 6, 7}
    /// (index "10010110"). Neuron indexes are "11101010", flags
    /// "10000010": neurons n1 and n7 are selected, and their synapses are
    /// the 1st and 4th entries of the compact storage.
    #[test]
    fn paper_fig12_example() {
        let neurons = [0.5, 0.2, 0.3, 0.0, 0.9, 0.0, 0.7, 0.0];
        let syn = [true, false, false, true, false, true, true, false];
        let sel = select(&neurons, &syn);
        assert_eq!(sel.neurons, vec![0.5, 0.7]); // n1 and n7
        assert_eq!(sel.indexing, vec![0, 3]); // 1st and 4th synapses
        assert_eq!(sel.static_survivors, 4);
        assert_eq!(sel.scanned, 8);
    }

    #[test]
    fn dense_index_selects_all_nonzero() {
        let neurons = [1.0, 0.0, 2.0, 3.0];
        let syn = [true; 4];
        let sel = select(&neurons, &syn);
        assert_eq!(sel.neurons, vec![1.0, 2.0, 3.0]);
        assert_eq!(sel.indexing, vec![0, 2, 3]);
    }

    #[test]
    fn empty_index_selects_nothing() {
        let neurons = [1.0, 2.0];
        let syn = [false, false];
        let sel = select(&neurons, &syn);
        assert!(sel.neurons.is_empty());
        assert_eq!(sel.static_survivors, 0);
    }

    #[test]
    fn indexing_positions_are_compact_storage_offsets() {
        // Synapses at 0,1,2,5; neuron 1 is zero.
        let neurons = [1.0, 0.0, 3.0, 9.0, 9.0, 6.0];
        let syn = [true, true, true, false, false, true];
        let sel = select(&neurons, &syn);
        assert_eq!(sel.neurons, vec![1.0, 3.0, 6.0]);
        assert_eq!(sel.indexing, vec![0, 2, 3]);
    }

    #[test]
    fn throughput_limits() {
        // Scan-limited: 512 candidates at 256/cycle.
        assert_eq!(cycles(512, 10, 256, 16), 2);
        // Emit-limited: 64 selected at 16/cycle.
        assert_eq!(cycles(256, 64, 256, 16), 4);
        // Never zero.
        assert_eq!(cycles(0, 0, 256, 16), 1);
    }
}
