//! A processing element (PE): SB + WDM + SSM + PEFU (Fig. 13/14).
//!
//! Each PE computes one output neuron at a time. The PEFU holds `T_m`
//! multipliers feeding a `T_m`-input adder tree, so an output needing `M`
//! multiplications takes `⌈M / T_m⌉` cycles once its operands are
//! supplied.

use cs_quant::Codebook;

use crate::ssm::{self, Wdm};

/// One processing element executing one output neuron's MACs.
#[derive(Debug, Clone)]
pub struct Pe {
    tm: usize,
    wdm: Wdm,
    /// Compact (static-survivor) quantized weights for the current output
    /// neuron — the PE's local SB contents.
    sb: Vec<u16>,
    /// Decoded weights cache.
    decoded: Vec<f32>,
}

/// Result of evaluating one output neuron on a PE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeResult {
    /// The accumulated output value (pre-activation).
    pub value: f32,
    /// MAC operations executed.
    pub macs: u64,
    /// PEFU cycles consumed (`⌈macs / T_m⌉`).
    pub pefu_cycles: u64,
}

impl Pe {
    /// Creates a PE with its WDM LUT loaded and SB filled with one output
    /// neuron's compact weights.
    pub fn new(tm: usize, codebook: Codebook, compact_weights: Vec<u16>) -> Self {
        let wdm = Wdm::new(codebook);
        let decoded = wdm.decode_all(&compact_weights);
        Pe {
            tm,
            wdm,
            sb: compact_weights,
            decoded,
        }
    }

    /// Number of weights resident in the local SB.
    pub fn sb_len(&self) -> usize {
        self.sb.len()
    }

    /// Borrows the WDM.
    pub fn wdm(&self) -> &Wdm {
        &self.wdm
    }

    /// Evaluates the output neuron against the broadcast selected neurons
    /// and indexing string (from the shared NSM).
    ///
    /// # Panics
    ///
    /// Panics when an indexing position is outside the SB.
    pub fn evaluate(&self, neurons: &[f32], indexing: &[usize]) -> PeResult {
        let weights = ssm::select_weights(&self.decoded, indexing);
        let mut acc = 0.0f32;
        for (n, w) in neurons.iter().zip(&weights) {
            acc += n * w;
        }
        let macs = weights.len() as u64;
        PeResult {
            value: acc,
            macs,
            pefu_cycles: (macs.div_ceil(self.tm as u64)).max(1),
        }
    }
}

/// Nonlinear function unit at the PEFU tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Pass-through.
    None,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation.
    pub fn apply(&self, v: f32) -> f32 {
        match self {
            Activation::None => v,
            Activation::Relu => v.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_computes_sparse_dot_product() {
        // Compact weights (already static-pruned): [w0, w1, w2, w3].
        let cb = Codebook::new(vec![0.0, 1.0, 2.0, 3.0]);
        let pe = Pe::new(16, cb, vec![1, 2, 3, 0]);
        // NSM selected neurons at compact positions 0 and 2.
        let r = pe.evaluate(&[10.0, 100.0], &[0, 2]);
        // 10*1.0 + 100*3.0 = 310
        assert_eq!(r.value, 310.0);
        assert_eq!(r.macs, 2);
        assert_eq!(r.pefu_cycles, 1);
    }

    #[test]
    fn pefu_cycles_scale_with_macs() {
        let cb = Codebook::new(vec![1.0]);
        let pe = Pe::new(16, cb, vec![0; 100]);
        let neurons = vec![1.0; 100];
        let indexing: Vec<usize> = (0..100).collect();
        let r = pe.evaluate(&neurons, &indexing);
        assert_eq!(r.value, 100.0);
        assert_eq!(r.pefu_cycles, 7); // ceil(100/16)
    }

    #[test]
    fn zero_selected_costs_one_cycle() {
        let cb = Codebook::new(vec![1.0]);
        let pe = Pe::new(16, cb, vec![]);
        let r = pe.evaluate(&[], &[]);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.pefu_cycles, 1);
    }

    #[test]
    fn activations() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::None.apply(-2.0), -2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
    }
}
