//! Functional executor: interprets compiled programs against a
//! shared-index layer, producing real output values and activity
//! statistics.
//!
//! The executor emulates the datapath faithfully: the shared NSM performs
//! the Fig. 12 selection per (tile, group), broadcasts selected neurons
//! and the indexing string to all PEs, each PE's SSM muxes its weights
//! out of the WDM-decoded compact storage, and PEFUs accumulate partial
//! sums into NBout across input tiles. Timing comes from the structural
//! throughput limits and the ping-pong DMA overlap.

use cs_compress::format::SharedIndexLayer;
use cs_sim::{DramModel, OverlapScheduler, SimStats};
use cs_tensor::TensorError;

use crate::compiler::compile_layer;
use crate::config::AccelConfig;
use crate::error::AccelError;
use crate::isa::{Instruction, Program};
use crate::nsm;
use crate::pe::Activation;
use crate::ssm;

/// Checks that a shared-index layer is internally consistent: every
/// weight row matches its group's index popcount, dictionary indices fit
/// the codebook, and the groups cover no more than `n_out` outputs.
///
/// The executor runs this before interpreting a program, so serving
/// workers can also call it once at model-registration time to reject
/// malformed layers at admission instead of per request.
///
/// # Errors
///
/// Returns the first inconsistency found.
pub fn validate_layer(layer: &SharedIndexLayer) -> Result<(), AccelError> {
    for (gi, g) in layer.groups.iter().enumerate() {
        if g.index.len() != layer.n_in {
            return Err(AccelError::WindowOutOfRange {
                offset: 0,
                len: g.index.len(),
                n_in: layer.n_in,
            });
        }
        let survivors = g.survivors();
        for row in &g.weights {
            if row.len() != survivors {
                return Err(AccelError::MalformedGroup {
                    group: gi,
                    expected: survivors,
                    actual: row.len(),
                });
            }
            if let Some(&max) = row.iter().max() {
                if usize::from(max) >= g.codebook.len() {
                    return Err(AccelError::CodebookOverflow {
                        group: gi,
                        index: max,
                        entries: g.codebook.len(),
                    });
                }
            }
        }
        let top = gi * layer.group_size + g.weights.len();
        if top > layer.n_out {
            return Err(AccelError::OutputOverflow {
                needed: top,
                n_out: layer.n_out,
            });
        }
    }
    Ok(())
}

/// Result of a functional run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Output neuron values (post-activation).
    pub outputs: Vec<f32>,
    /// Activity counters, with `cycles` from the overlap scheduler.
    pub stats: SimStats,
}

/// The top-level accelerator: configuration + DRAM model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    cfg: AccelConfig,
    dram: DramModel,
}

impl Accelerator {
    /// Creates an accelerator with the paper's DRAM model.
    pub fn new(cfg: AccelConfig) -> Self {
        Accelerator {
            cfg,
            dram: DramModel::paper_default(),
        }
    }

    /// The structural configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Compiles and functionally executes one layer on one input vector.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when `input.len() != layer.n_in`,
    /// or a structural [`AccelError`] when the layer is malformed.
    pub fn run_layer(
        &self,
        layer: &SharedIndexLayer,
        input: &[f32],
        activation: Activation,
    ) -> Result<RunResult, AccelError> {
        let program = compile_layer(layer, &self.cfg, activation);
        self.run_program(&program, layer, input)
    }

    /// Executes a whole network: each layer's outputs (post-activation)
    /// feed the next layer. Returns the final outputs and the summed
    /// activity statistics.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when consecutive layers disagree
    /// on width or the input does not fit the first layer.
    pub fn run_network(
        &self,
        layers: &[(SharedIndexLayer, Activation)],
        input: &[f32],
    ) -> Result<RunResult, AccelError> {
        let mut x = input.to_vec();
        let mut stats = SimStats::new();
        for (layer, activation) in layers {
            let run = self.run_layer(layer, &x, *activation)?;
            stats += run.stats;
            x = run.outputs;
        }
        Ok(RunResult { outputs: x, stats })
    }

    /// Executes a pre-compiled program.
    ///
    /// Every instruction operand is validated against the layer before
    /// the datapath runs, so a corrupted or mismatched program degrades
    /// to an [`AccelError`] instead of a panic — a hard requirement on
    /// the serving path, where a panic would take down a worker thread.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when `input.len() != program.n_in`,
    /// [`AccelError::ProgramMismatch`] when program and layer disagree on
    /// geometry, and the corresponding structural error when an
    /// instruction references groups or windows the layer doesn't have.
    pub fn run_program(
        &self,
        program: &Program,
        layer: &SharedIndexLayer,
        input: &[f32],
    ) -> Result<RunResult, AccelError> {
        if input.len() != program.n_in {
            return Err(AccelError::Tensor(TensorError::LengthMismatch {
                expected: program.n_in,
                actual: input.len(),
            }));
        }
        if program.n_in != layer.n_in {
            return Err(AccelError::ProgramMismatch {
                program_n_in: program.n_in,
                layer_n_in: layer.n_in,
            });
        }
        validate_layer(layer)?;
        let check_group = |group: usize| -> Result<(), AccelError> {
            if group >= layer.groups.len() {
                return Err(AccelError::GroupOutOfRange {
                    group,
                    groups: layer.groups.len(),
                });
            }
            Ok(())
        };
        let check_window = |offset: usize, len: usize| -> Result<(), AccelError> {
            if offset.checked_add(len).is_none_or(|end| end > layer.n_in) {
                return Err(AccelError::WindowOutOfRange {
                    offset,
                    len,
                    n_in: layer.n_in,
                });
            }
            Ok(())
        };
        // Per-group prefix popcounts of the synapse index, so weight
        // slices for input tiles can be located in the compact storage.
        let prefixes: Vec<Vec<usize>> = layer
            .groups
            .iter()
            .map(|g| {
                let mut p = Vec::with_capacity(g.index.len() + 1);
                let mut acc = 0usize;
                p.push(0);
                for b in &g.index {
                    acc += usize::from(*b);
                    p.push(acc);
                }
                p
            })
            .collect();

        let mut outputs = vec![0.0f32; layer.n_out];
        let mut stats = SimStats::new();
        let mut sched = OverlapScheduler::new();
        let mut pending_load: u64 = 0;
        let mut nbin: &[f32] = &[];
        let mut nbin_offset = 0usize;

        for instr in &program.instrs {
            match *instr {
                Instruction::LoadNeurons { offset, len } => {
                    check_window(offset, len)?;
                    nbin = &input[offset..offset + len];
                    nbin_offset = offset;
                    let bytes = (len * self.cfg.neuron_bytes) as u64;
                    stats.dram_read_bytes += bytes;
                    stats.nbin_peak_bytes = stats.nbin_peak_bytes.max(bytes);
                    pending_load += self.dram.stream_cycles(bytes);
                }
                Instruction::LoadIndex { group, len, .. } => {
                    check_group(group)?;
                    let bytes = len.div_ceil(8) as u64;
                    stats.dram_read_bytes += bytes;
                    stats.sib_bytes += bytes;
                    pending_load += self.dram.stream_cycles(bytes);
                }
                Instruction::LoadSynapses { group, offset, len } => {
                    check_group(group)?;
                    check_window(offset, len)?;
                    let g = &layer.groups[group];
                    let pre = &prefixes[group];
                    let slice_survivors = pre[offset + len] - pre[offset];
                    let lanes = g.weights.len();
                    let dict_bits = slice_survivors * lanes * usize::from(layer.quant_bits);
                    let mut bytes = dict_bits.div_ceil(8) as u64;
                    if offset == 0 {
                        bytes += g.codebook.byte_size() as u64;
                    }
                    stats.dram_read_bytes += bytes;
                    stats.sb_bytes += bytes;
                    stats.wdm_decodes += (slice_survivors * lanes) as u64;
                    pending_load += self.dram.stream_cycles(bytes);
                }
                Instruction::Compute { group, offset, len } => {
                    check_group(group)?;
                    check_window(offset, len)?;
                    if offset != nbin_offset || len > nbin.len() {
                        return Err(AccelError::TileMismatch {
                            loaded: nbin_offset,
                            requested: offset,
                        });
                    }
                    let g = &layer.groups[group];
                    let pre = &prefixes[group];
                    let index_slice = &g.index[offset..offset + len];
                    let window = &nbin[..len];
                    let sel = nsm::select(window, index_slice);
                    let base = pre[offset];
                    let lanes = g.weights.len();
                    for (lane, lane_weights) in g.weights.iter().enumerate() {
                        let mut acc = 0.0f32;
                        for (v, pos) in sel.neurons.iter().zip(&sel.indexing) {
                            acc += v * g.codebook.value(lane_weights[base + pos]);
                        }
                        outputs[group * layer.group_size + lane] += acc;
                    }
                    let selected = sel.neurons.len();
                    stats.macs += (selected * lanes) as u64;
                    stats.nsm_selections += selected as u64;
                    stats.ssm_selections += (selected * lanes) as u64;
                    stats.nbin_bytes += (len * self.cfg.neuron_bytes) as u64;
                    stats.nbout_bytes += (lanes * self.cfg.neuron_bytes) as u64;

                    let scan = nsm::cycles(len, selected, self.cfg.nsm_window(), self.cfg.tm);
                    let supply =
                        ssm::supply_cycles(sel.static_survivors, self.cfg.tm, layer.quant_bits);
                    let pefu = (selected.div_ceil(self.cfg.tm) as u64).max(1);
                    let compute = scan.max(supply).max(pefu);
                    sched.tile(pending_load, compute, 0);
                    pending_load = 0;
                }
                Instruction::Activate { group, activation } => {
                    check_group(group)?;
                    let lanes = layer.groups[group].weights.len();
                    for lane in 0..lanes {
                        let o = group * layer.group_size + lane;
                        outputs[o] = activation.apply(outputs[o]);
                    }
                    sched.tile(pending_load, 1, 0);
                    pending_load = 0;
                }
                Instruction::StoreOutputs { count, .. } => {
                    let bytes = (count * self.cfg.neuron_bytes) as u64;
                    stats.dram_write_bytes += bytes;
                    stats.nbout_bytes += bytes;
                    sched.tile(pending_load, 0, self.dram.stream_cycles(bytes));
                    pending_load = 0;
                }
            }
        }
        stats.cycles = sched.finish() + self.dram.latency_cycles;
        // Busy/stall split for the telemetry layer: cycles the pipeline
        // computed vs. cycles exposed waiting on memory (including the
        // fixed DRAM latency, which no compute hides).
        stats.compute_busy_cycles = sched.compute_busy_cycles();
        stats.dram_stall_cycles = stats.cycles.saturating_sub(stats.compute_busy_cycles);
        Ok(RunResult { outputs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
    use cs_tensor::Shape;

    fn layer(n_in: usize, n_out: usize, density: f64, seed: u64) -> SharedIndexLayer {
        let w = local_convergence(
            Shape::d2(n_in, n_out),
            &ConvergenceProfile::with_target_density(density).with_block(16),
            seed,
        );
        let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        SharedIndexLayer::from_fc("t", &w, &mask, 16, 8).unwrap()
    }

    fn input(n: usize, zero_every: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if zero_every > 0 && i % zero_every == 0 {
                    0.0
                } else {
                    ((i * 7) % 13) as f32 * 0.1 - 0.6
                }
            })
            .collect()
    }

    #[test]
    fn functional_output_matches_reference() {
        let l = layer(128, 32, 0.25, 5);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(128, 3);
        let run = acc.run_layer(&l, &x, Activation::None).unwrap();
        let want = l.output(&x);
        assert_eq!(run.outputs.len(), want.len());
        for (got, want) in run.outputs.iter().zip(&want) {
            assert!((got - want).abs() < 1e-4, "got {got} want {want}");
        }
    }

    #[test]
    fn tiled_execution_matches_untiled_reference() {
        // n_in larger than one NBin half (2048) forces multiple tiles.
        let l = layer(4096, 16, 0.2, 9);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(4096, 4);
        let run = acc.run_layer(&l, &x, Activation::Relu).unwrap();
        let want: Vec<f32> = l.output(&x).iter().map(|v| v.max(0.0)).collect();
        for (got, want) in run.outputs.iter().zip(&want) {
            assert!((got - want).abs() < 1e-3, "got {got} want {want}");
        }
    }

    #[test]
    fn dynamic_zeros_reduce_macs() {
        let l = layer(256, 32, 0.25, 7);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let dense_in = input(256, 0);
        let sparse_in = input(256, 2); // half the inputs zero
        let dense_run = acc.run_layer(&l, &dense_in, Activation::None).unwrap();
        let sparse_run = acc.run_layer(&l, &sparse_in, Activation::None).unwrap();
        assert!(
            sparse_run.stats.macs < dense_run.stats.macs * 3 / 4,
            "sparse {} vs dense {}",
            sparse_run.stats.macs,
            dense_run.stats.macs
        );
    }

    #[test]
    fn static_sparsity_reduces_macs_vs_dense_index() {
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(256, 0);
        let sparse = layer(256, 32, 0.125, 3);
        let dense = layer(256, 32, 1.0, 3);
        let rs = acc.run_layer(&sparse, &x, Activation::None).unwrap();
        let rd = acc.run_layer(&dense, &x, Activation::None).unwrap();
        assert!(rs.stats.macs * 4 < rd.stats.macs);
        assert!(rs.stats.cycles < rd.stats.cycles);
    }

    #[test]
    fn stats_account_dram_traffic() {
        let l = layer(256, 32, 0.25, 11);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(256, 3);
        let run = acc.run_layer(&l, &x, Activation::None).unwrap();
        // Input neurons + indexes + weights were read; outputs written.
        assert!(run.stats.dram_read_bytes >= (256 * 2) as u64);
        assert_eq!(run.stats.dram_write_bytes, 64);
        assert!(run.stats.cycles > 0);
        assert!(run.stats.wdm_decodes > 0);
    }

    #[test]
    fn stats_split_cycles_into_compute_and_dram_stall() {
        let l = layer(256, 32, 0.25, 11);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(256, 3);
        let run = acc.run_layer(&l, &x, Activation::None).unwrap();
        let s = run.stats;
        assert!(s.compute_busy_cycles > 0);
        assert_eq!(
            s.compute_busy_cycles + s.dram_stall_cycles,
            s.cycles,
            "busy + stall covers the elapsed cycles exactly"
        );
        // One 256-neuron layer fits a single NBin tile.
        assert_eq!(s.nbin_peak_bytes, (256 * acc.config().neuron_bytes) as u64);
    }

    #[test]
    fn network_breakdown_accumulates_and_occupancy_peaks() {
        let l1 = layer(128, 64, 0.3, 3);
        let l2 = layer(64, 32, 0.4, 4);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(128, 5);
        let run = acc
            .run_network(
                &[
                    (l1.clone(), Activation::Relu),
                    (l2.clone(), Activation::None),
                ],
                &x,
            )
            .unwrap();
        let solo1 = acc.run_layer(&l1, &x, Activation::Relu).unwrap();
        assert!(run.stats.compute_busy_cycles > solo1.stats.compute_busy_cycles);
        assert_eq!(
            run.stats.nbin_peak_bytes, solo1.stats.nbin_peak_bytes,
            "the wider first layer sets the occupancy peak"
        );
    }

    #[test]
    fn network_chains_layers_and_matches_reference() {
        let l1 = layer(128, 64, 0.3, 3);
        let l2 = layer(64, 32, 0.4, 4);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(128, 5);
        let run = acc
            .run_network(
                &[
                    (l1.clone(), Activation::Relu),
                    (l2.clone(), Activation::None),
                ],
                &x,
            )
            .unwrap();
        // Reference: chain the shared-index computes with the same
        // activation between.
        let mid: Vec<f32> = l1.output(&x).iter().map(|v| v.max(0.0)).collect();
        let want = l2.output(&mid);
        assert_eq!(run.outputs.len(), 32);
        for (got, want) in run.outputs.iter().zip(&want) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
        // Stats accumulated across both layers.
        let solo1 = acc.run_layer(&l1, &x, Activation::Relu).unwrap();
        assert!(run.stats.macs > solo1.stats.macs);
        assert!(run.stats.cycles > solo1.stats.cycles);
    }

    #[test]
    fn network_relu_creates_dynamic_sparsity_for_next_layer() {
        // The ReLU between layers zeroes ~half the activations, so layer
        // 2 executes fewer MACs than it would on a dense input.
        let l1 = layer(128, 64, 0.5, 7);
        let l2 = layer(64, 32, 0.5, 8);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(128, 0);
        let run = acc
            .run_network(
                &[
                    (l1.clone(), Activation::Relu),
                    (l2.clone(), Activation::None),
                ],
                &x,
            )
            .unwrap();
        let mid: Vec<f32> = l1.output(&x).iter().map(|v| v.max(0.0)).collect();
        let zeros = mid.iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 0, "ReLU produced no zeros");
        let dense_mid: Vec<f32> = mid.iter().map(|v| v + 1.0).collect();
        let sparse_l2 = acc.run_layer(&l2, &mid, Activation::None).unwrap();
        let dense_l2 = acc.run_layer(&l2, &dense_mid, Activation::None).unwrap();
        assert!(sparse_l2.stats.macs < dense_l2.stats.macs);
        let _ = run;
    }

    #[test]
    fn input_length_validated() {
        let l = layer(64, 16, 0.5, 2);
        let acc = Accelerator::new(AccelConfig::paper_default());
        assert!(acc.run_layer(&l, &[0.0; 63], Activation::None).is_err());
    }

    #[test]
    fn corrupted_program_degrades_to_error_not_panic() {
        use crate::error::AccelError;
        let l = layer(64, 16, 0.5, 2);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(64, 0);
        let mut program = compile_layer(&l, acc.config(), Activation::None);

        // Group index past the layer's groups.
        program.instrs[1] = Instruction::LoadIndex {
            group: 99,
            offset: 0,
            len: 64,
        };
        assert!(matches!(
            acc.run_program(&program, &l, &x),
            Err(AccelError::GroupOutOfRange { group: 99, .. })
        ));

        // Window past the input width.
        program.instrs[1] = Instruction::LoadNeurons {
            offset: 32,
            len: 64,
        };
        assert!(matches!(
            acc.run_program(&program, &l, &x),
            Err(AccelError::WindowOutOfRange { .. })
        ));

        // Compute against a tile that is not resident in NBin.
        let good = compile_layer(&l, acc.config(), Activation::None);
        let mut skewed = good.clone();
        skewed.instrs.insert(
            0,
            Instruction::Compute {
                group: 0,
                offset: 16,
                len: 16,
            },
        );
        assert!(matches!(
            acc.run_program(&skewed, &l, &x),
            Err(AccelError::TileMismatch { .. })
        ));
    }

    #[test]
    fn program_layer_geometry_mismatch_is_an_error() {
        use crate::error::AccelError;
        let l64 = layer(64, 16, 0.5, 2);
        let l128 = layer(128, 16, 0.5, 2);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let program = compile_layer(&l128, acc.config(), Activation::None);
        let x = input(128, 0);
        assert!(matches!(
            acc.run_program(&program, &l64, &x),
            Err(AccelError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn malformed_layer_rejected_by_validation() {
        use crate::error::AccelError;
        let mut l = layer(64, 16, 0.5, 2);
        // Truncate one weight row so it no longer matches the index.
        l.groups[0].weights[3].pop();
        assert!(matches!(
            validate_layer(&l),
            Err(AccelError::MalformedGroup { group: 0, .. })
        ));
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(64, 0);
        assert!(acc.run_layer(&l, &x, Activation::None).is_err());

        // Dictionary index beyond the codebook LUT.
        let mut l2 = layer(64, 16, 0.5, 3);
        if let Some(w) = l2.groups[0].weights[0].first_mut() {
            *w = u16::MAX;
        }
        assert!(matches!(
            validate_layer(&l2),
            Err(AccelError::CodebookOverflow { group: 0, .. })
        ));
    }

    #[test]
    fn relu_applied_at_activate() {
        let l = layer(64, 16, 0.5, 2);
        let acc = Accelerator::new(AccelConfig::paper_default());
        let x = input(64, 0);
        let run = acc.run_layer(&l, &x, Activation::Relu).unwrap();
        assert!(run.outputs.iter().all(|v| *v >= 0.0));
    }
}
