//! The Cambricon-S accelerator simulator.
//!
//! This crate models the accelerator of Section V at two levels:
//!
//! * **Functional** — [`nsm`], [`ssm`], [`pe`] and [`exec`] emulate the
//!   actual bit-level selection logic (Fig. 12's neuron flags, indexing
//!   strings, the SSM's MUX and the WDM's LUT decode) and produce real
//!   output values, validated against the dense reference computation in
//!   `cs-compress`/`cs-nn`.
//! * **Timing** — [`timing`] is a cycle-approximate model driven by layer
//!   geometry and sparsity, mirroring the pipeline's structural limits:
//!   the NSM scans `16·T_m = 256` candidate neurons per cycle and emits
//!   `T_m = 16` selected ones, each PE's SB row supplies `4·T_m = 64`
//!   candidate synapses per cycle from which the SSM picks up to 16, and
//!   each PEFU retires `T_m = 16` MACs per cycle. DMA is overlapped with
//!   compute through `cs-sim`'s ping-pong scheduler.
//!
//! The VLIW-style control path (instruction set + compiler, Section V-C)
//! lives in [`isa`] and [`compiler`]; the functional executor interprets
//! compiled programs.
//!
//! # Example
//!
//! ```
//! use cs_accel::config::AccelConfig;
//! use cs_accel::timing::{simulate_layer, LayerTiming};
//!
//! let cfg = AccelConfig::paper_default();
//! let layer = LayerTiming::fc(4096, 4096, 0.10, 0.60, 4);
//! let run = simulate_layer(&cfg, &layer);
//! assert!(run.stats.cycles > 0);
//! ```

pub mod compiler;
pub mod config;
pub mod error;
pub mod exec;
pub mod isa;
pub mod nsm;
pub mod pe;
pub mod ssm;
pub mod timing;

pub use config::AccelConfig;
pub use error::AccelError;
