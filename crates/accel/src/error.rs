//! Typed errors for the functional executor.
//!
//! The executor sits on the serving request path (`cs-serve` workers call
//! [`crate::exec::Accelerator::run_network`] per request), so malformed
//! programs or layers must surface as values rather than panics that
//! would kill a worker thread.

use std::fmt;

use cs_tensor::TensorError;

/// Error from compiling or executing a program on the accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// An underlying tensor-level failure (e.g. input length mismatch).
    Tensor(TensorError),
    /// An instruction referenced an output group the layer doesn't have.
    GroupOutOfRange {
        /// Referenced group.
        group: usize,
        /// Number of groups in the layer.
        groups: usize,
    },
    /// An instruction's input window exceeds the layer's input width.
    WindowOutOfRange {
        /// Window start.
        offset: usize,
        /// Window length.
        len: usize,
        /// Layer input width.
        n_in: usize,
    },
    /// A `Compute` window does not match the tile currently in NBin.
    TileMismatch {
        /// Offset of the tile resident in NBin.
        loaded: usize,
        /// Offset the compute asked for.
        requested: usize,
    },
    /// A group's compact weight rows disagree with its index popcount.
    MalformedGroup {
        /// Offending group.
        group: usize,
        /// Survivors promised by the shared index.
        expected: usize,
        /// Shortest weight-row length actually present.
        actual: usize,
    },
    /// A group's quantized weights address past the end of its codebook.
    CodebookOverflow {
        /// Offending group.
        group: usize,
        /// Largest dictionary index used.
        index: u16,
        /// Codebook entry count.
        entries: usize,
    },
    /// The layer's groups produce more outputs than `n_out`.
    OutputOverflow {
        /// Outputs addressed by the groups.
        needed: usize,
        /// Declared output count.
        n_out: usize,
    },
    /// The program was compiled for a different layer geometry.
    ProgramMismatch {
        /// Input width the program was compiled for.
        program_n_in: usize,
        /// The layer's input width.
        layer_n_in: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::Tensor(e) => write!(f, "{e}"),
            AccelError::GroupOutOfRange { group, groups } => {
                write!(
                    f,
                    "instruction references group {group}, layer has {groups}"
                )
            }
            AccelError::WindowOutOfRange { offset, len, n_in } => write!(
                f,
                "window [{offset}, {offset}+{len}) exceeds input width {n_in}"
            ),
            AccelError::TileMismatch { loaded, requested } => write!(
                f,
                "compute requested tile at {requested} but NBin holds tile at {loaded}"
            ),
            AccelError::MalformedGroup {
                group,
                expected,
                actual,
            } => write!(
                f,
                "group {group}: weight rows hold {actual} entries, index promises {expected}"
            ),
            AccelError::CodebookOverflow {
                group,
                index,
                entries,
            } => write!(
                f,
                "group {group}: dictionary index {index} exceeds codebook of {entries}"
            ),
            AccelError::OutputOverflow { needed, n_out } => {
                write!(f, "groups address {needed} outputs, layer declares {n_out}")
            }
            AccelError::ProgramMismatch {
                program_n_in,
                layer_n_in,
            } => write!(
                f,
                "program compiled for n_in={program_n_in}, layer has n_in={layer_n_in}"
            ),
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AccelError {
    fn from(e: TensorError) -> Self {
        AccelError::Tensor(e)
    }
}
