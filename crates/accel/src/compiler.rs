//! The library-based compiler: lowers a shared-index layer onto the
//! accelerator as a VLIW instruction stream.
//!
//! Tiling follows the paper's buffer discipline: input neurons are split
//! into NBin-half-sized tiles (loaded once each); for every tile the
//! output groups stream their synapse-index and compact-weight slices
//! through the SIB/SBs while partial sums accumulate in NBout; outputs
//! are stored once every group has seen every tile.

use cs_compress::format::SharedIndexLayer;

use crate::config::AccelConfig;
use crate::isa::{Instruction, Program};
use crate::pe::Activation;

/// Compiles one layer into a program.
///
/// Tiles are `cfg.nbin_neurons()` wide (half the ping-pong NBin). The
/// instruction order is `tile -> [load index, load synapses, compute] per
/// group`, with activation and store once at the end.
pub fn compile_layer(
    layer: &SharedIndexLayer,
    cfg: &AccelConfig,
    activation: Activation,
) -> Program {
    let tile = cfg.nbin_neurons().max(1);
    let mut instrs = Vec::new();
    let mut offset = 0usize;
    while offset < layer.n_in {
        let len = tile.min(layer.n_in - offset);
        instrs.push(Instruction::LoadNeurons { offset, len });
        for g in 0..layer.groups.len() {
            instrs.push(Instruction::LoadIndex {
                group: g,
                offset,
                len,
            });
            instrs.push(Instruction::LoadSynapses {
                group: g,
                offset,
                len,
            });
            instrs.push(Instruction::Compute {
                group: g,
                offset,
                len,
            });
        }
        offset += len;
    }
    for g in 0..layer.groups.len() {
        instrs.push(Instruction::Activate {
            group: g,
            activation,
        });
    }
    // Store outputs in NBout-sized chunks.
    let out_chunk = (cfg.nbout_bytes / 2 / cfg.neuron_bytes).max(1);
    let mut first = 0usize;
    while first < layer.n_out {
        let count = out_chunk.min(layer.n_out - first);
        instrs.push(Instruction::StoreOutputs { first, count });
        first += count;
    }
    Program {
        instrs,
        n_in: layer.n_in,
        n_out: layer.n_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
    use cs_tensor::Shape;

    fn small_layer(n_in: usize, n_out: usize) -> SharedIndexLayer {
        let w = local_convergence(
            Shape::d2(n_in, n_out),
            &ConvergenceProfile::with_target_density(0.25).with_block(16),
            3,
        );
        let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.25).unwrap();
        SharedIndexLayer::from_fc("t", &w, &mask, 16, 4).unwrap()
    }

    #[test]
    fn single_tile_program_structure() {
        let layer = small_layer(64, 32);
        let cfg = AccelConfig::paper_default();
        let p = compile_layer(&layer, &cfg, Activation::Relu);
        // 1 tile: LoadNeurons + 2 groups x 3 instrs + 2 activates + 1 store.
        assert_eq!(p.len(), 1 + 2 * 3 + 2 + 1);
        assert!(matches!(p.instrs[0], Instruction::LoadNeurons { .. }));
        assert!(matches!(
            p.instrs.last(),
            Some(Instruction::StoreOutputs { .. })
        ));
    }

    #[test]
    fn large_input_is_tiled() {
        let layer = small_layer(5000, 16);
        let cfg = AccelConfig::paper_default();
        let p = compile_layer(&layer, &cfg, Activation::None);
        let loads = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instruction::LoadNeurons { .. }))
            .count();
        // 5000 inputs at 2048 per tile -> 3 tiles.
        assert_eq!(loads, 3);
        // Every tile computes every group.
        let computes = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instruction::Compute { .. }))
            .count();
        assert_eq!(computes, 3 * layer.groups.len());
    }

    #[test]
    fn tile_offsets_cover_input_exactly() {
        let layer = small_layer(5000, 16);
        let cfg = AccelConfig::paper_default();
        let p = compile_layer(&layer, &cfg, Activation::None);
        let total: usize = p
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instruction::LoadNeurons { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(total, 5000);
    }
}
