//! The Synapse Selector Module (SSM) and Weight Decoder Module (WDM).
//!
//! Each PE holds a local SSM and WDM (Fig. 13/14):
//!
//! * the **WDM** expands compressed dictionary indices from the SB into
//!   actual weights via a LUT loaded with the group's quantization
//!   codebook (local quantization support);
//! * the **SSM** MUXes the weights named by the NSM's indexing string out
//!   of the candidate window, discarding synapses whose input neuron was
//!   zero (dynamic sparsity).

use cs_quant::Codebook;

/// The WDM: a codebook LUT.
///
/// The hardware aliases stored weights to 4-bit lanes and decodes
/// `T_m × 16`, `T_m × 8` or `T_m × 4` weights per cycle for 4-bit, 8-bit
/// and wider dictionaries respectively; [`wdm_decodes_per_cycle`]
/// exposes that rate to the timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct Wdm {
    codebook: Codebook,
}

impl Wdm {
    /// Loads the LUT with a group's codebook.
    pub fn new(codebook: Codebook) -> Self {
        Wdm { codebook }
    }

    /// Decodes one dictionary index into a weight.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the LUT.
    pub fn decode(&self, index: u16) -> f32 {
        self.codebook.value(index)
    }

    /// Decodes a slice of indices.
    pub fn decode_all(&self, indices: &[u16]) -> Vec<f32> {
        indices.iter().map(|i| self.decode(*i)).collect()
    }
}

/// Weights the WDM can decode per cycle per PE, given `T_m` and the
/// dictionary bit width (Section V-B's 4-bit aliasing).
pub fn wdm_decodes_per_cycle(tm: usize, bits: u8) -> usize {
    if bits <= 4 {
        tm * 16
    } else if bits <= 8 {
        tm * 8
    } else {
        tm * 4
    }
}

/// The SSM: selects the weights at the positions named by the NSM's
/// indexing string from the PE's compact (static-survivor) weight
/// storage.
///
/// # Panics
///
/// Panics when an indexing position exceeds the storage.
pub fn select_weights(compact_weights: &[f32], indexing: &[usize]) -> Vec<f32> {
    indexing.iter().map(|&p| compact_weights[p]).collect()
}

/// SSM/SB supply throughput: cycles to stream `static_survivors`
/// candidate synapses at `4 · T_m` per cycle, bounded below by the WDM
/// decode rate.
pub fn supply_cycles(static_survivors: usize, tm: usize, bits: u8) -> u64 {
    let candidates = 4 * tm;
    let decode = wdm_decodes_per_cycle(tm, bits);
    let rate = candidates.min(decode).max(1);
    (static_survivors.div_ceil(rate) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wdm_decodes_through_lut() {
        let wdm = Wdm::new(Codebook::new(vec![-0.5, 0.0, 0.25, 1.0]));
        assert_eq!(wdm.decode(0), -0.5);
        assert_eq!(wdm.decode(3), 1.0);
        assert_eq!(wdm.decode_all(&[1, 2]), vec![0.0, 0.25]);
    }

    #[test]
    fn wdm_rates_follow_bit_aliasing() {
        assert_eq!(wdm_decodes_per_cycle(16, 4), 256);
        assert_eq!(wdm_decodes_per_cycle(16, 8), 128);
        assert_eq!(wdm_decodes_per_cycle(16, 16), 64);
        assert_eq!(wdm_decodes_per_cycle(16, 3), 256);
    }

    #[test]
    fn ssm_muxes_indexed_positions() {
        // Fig. 14: compact storage holds the static survivors; the
        // indexing string picks the 1st and 4th (positions 0 and 3).
        let compact = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(select_weights(&compact, &[0, 3]), vec![0.1, 0.4]);
        assert_eq!(select_weights(&compact, &[]), Vec::<f32>::new());
    }

    #[test]
    fn supply_rate_is_64_candidates_for_paper_build() {
        // 4-bit weights: SB row supplies 64 candidates, WDM can decode
        // 256 -> candidate-limited.
        assert_eq!(supply_cycles(640, 16, 4), 10);
        // 16-bit weights: WDM decodes 64 -> same 64/cycle.
        assert_eq!(supply_cycles(640, 16, 16), 10);
        assert_eq!(supply_cycles(0, 16, 4), 1);
    }
}
