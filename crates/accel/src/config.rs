//! Accelerator configuration (the paper's Section V / Table VI build).

/// Structural parameters of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Number of PEs (`T_n`); each computes one output neuron at a time.
    pub tn: usize,
    /// Multipliers per PE (`T_m`); also the adder-tree fan-in.
    pub tm: usize,
    /// Input neuron buffer size in bytes (NBin, ping-pong total).
    pub nbin_bytes: usize,
    /// Output neuron buffer size in bytes (NBout).
    pub nbout_bytes: usize,
    /// Total synapse buffer size in bytes (all `T_n` SBs together).
    pub sb_bytes: usize,
    /// Synapse index buffer size in bytes (SIB).
    pub sib_bytes: usize,
    /// Instruction buffer size in bytes (IB).
    pub ib_bytes: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Bytes per 16-bit neuron value.
    pub neuron_bytes: usize,
}

impl AccelConfig {
    /// The paper's implementation: `T_m = T_n = 16`, 1 GHz, 53 KB SRAM
    /// (NBin 8 KB, NBout 8 KB, SB 32 KB, SIB 1 KB), 512 GOP/s peak.
    pub fn paper_default() -> Self {
        AccelConfig {
            tn: 16,
            tm: 16,
            nbin_bytes: 8 * 1024,
            nbout_bytes: 8 * 1024,
            sb_bytes: 32 * 1024,
            sib_bytes: 1024,
            ib_bytes: 4 * 1024,
            freq_ghz: 1.0,
            neuron_bytes: 2,
        }
    }

    /// Candidate neurons the NSM scans per cycle (`16 · T_m`).
    pub fn nsm_window(&self) -> usize {
        16 * self.tm
    }

    /// Candidate synapses each PE's SB row supplies per cycle (`4 · T_m`).
    pub fn ssm_candidates(&self) -> usize {
        4 * self.tm
    }

    /// Peak MACs per cycle across the NFU (`T_n · T_m`).
    pub fn peak_macs_per_cycle(&self) -> usize {
        self.tn * self.tm
    }

    /// Peak throughput in GOP/s (2 ops per MAC).
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.peak_macs_per_cycle() as f64 * self.freq_ghz
    }

    /// Neurons that fit in one NBin half (ping half of the pair).
    pub fn nbin_neurons(&self) -> usize {
        self.nbin_bytes / 2 / self.neuron_bytes
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_build_peaks_at_512_gops() {
        let c = AccelConfig::paper_default();
        assert_eq!(c.peak_macs_per_cycle(), 256);
        assert!((c.peak_gops() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn structural_widths() {
        let c = AccelConfig::paper_default();
        assert_eq!(c.nsm_window(), 256);
        assert_eq!(c.ssm_candidates(), 64);
        assert_eq!(c.nbin_neurons(), 2048);
    }

    #[test]
    fn total_sram_is_53kb() {
        let c = AccelConfig::paper_default();
        let total = c.nbin_bytes + c.nbout_bytes + c.sb_bytes + c.sib_bytes + c.ib_bytes;
        assert_eq!(total / 1024, 53);
    }
}
