//! Property-based tests for the accelerator's datapath and timing model.

use cs_accel::config::AccelConfig;
use cs_accel::isa::{Instruction, Program};
use cs_accel::pe::Activation;
use cs_accel::timing::{group_cycles, simulate_layer, LayerTiming};
use cs_accel::{nsm, ssm};
use proptest::prelude::*;

proptest! {
    /// NSM selection count equals the AND of the two sparsity sources.
    #[test]
    fn nsm_count_is_intersection(data in proptest::collection::vec(
        (any::<bool>(), any::<bool>()), 1..500)) {
        let index: Vec<bool> = data.iter().map(|(b, _)| *b).collect();
        let neurons: Vec<f32> = data.iter()
            .map(|(_, nz)| if *nz { 1.0 } else { 0.0 })
            .collect();
        let sel = nsm::select(&neurons, &index);
        let expected = data.iter().filter(|(b, nz)| *b && *nz).count();
        prop_assert_eq!(sel.neurons.len(), expected);
        prop_assert_eq!(sel.indexing.len(), expected);
    }

    /// SSM selection preserves order and values.
    #[test]
    fn ssm_is_a_projection(weights in proptest::collection::vec(-5.0f32..5.0, 1..200),
                           picks in proptest::collection::vec(any::<proptest::sample::Index>(), 0..50)) {
        let mut indexing: Vec<usize> = picks.iter().map(|i| i.index(weights.len())).collect();
        indexing.sort_unstable();
        indexing.dedup();
        let out = ssm::select_weights(&weights, &indexing);
        prop_assert_eq!(out.len(), indexing.len());
        for (o, i) in out.iter().zip(&indexing) {
            prop_assert_eq!(*o, weights[*i]);
        }
    }

    /// Group cycles respect all three structural limits.
    #[test]
    fn group_cycles_respect_limits(n_in in 1usize..100_000,
                                   surv_frac in 0.0f64..1.0,
                                   need_frac in 0.0f64..1.0,
                                   bits in prop::sample::select(vec![4u8, 8, 16])) {
        let cfg = AccelConfig::paper_default();
        let surv = (n_in as f64 * surv_frac) as usize;
        let needed = (surv as f64 * need_frac) as usize;
        let c = group_cycles(&cfg, n_in, surv, needed, bits);
        prop_assert!(c >= (n_in.div_ceil(256)) as u64);
        prop_assert!(c >= (needed.div_ceil(16)) as u64);
        prop_assert!(c >= (surv.div_ceil(64)) as u64);
        prop_assert!(c >= 1);
    }

    /// Timing is monotone: more sparsity (lower densities) never makes a
    /// layer slower, and never moves more DRAM bytes.
    #[test]
    fn timing_monotone_in_sparsity(n_in in 64usize..4096, n_out in 16usize..512,
                                   d1 in 0.05f64..1.0, d2 in 0.05f64..1.0,
                                   dd in 0.1f64..1.0) {
        let cfg = AccelConfig::paper_default();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let sparse = simulate_layer(&cfg, &LayerTiming::fc(n_in, n_out, lo, dd, 4));
        let dense = simulate_layer(&cfg, &LayerTiming::fc(n_in, n_out, hi, dd, 4));
        prop_assert!(sparse.stats.cycles <= dense.stats.cycles,
                     "{} > {}", sparse.stats.cycles, dense.stats.cycles);
        prop_assert!(sparse.stats.dram_read_bytes <= dense.stats.dram_read_bytes);
        prop_assert!(sparse.stats.macs <= dense.stats.macs);
    }

    /// Every generated instruction stream round-trips through the IB
    /// binary format.
    #[test]
    fn isa_stream_roundtrip(ops in proptest::collection::vec(
        (0u8..6, 0usize..256, 0usize..100_000, 0usize..100_000), 0..100)) {
        let instrs: Vec<Instruction> = ops.iter().map(|(op, g, a, b)| match op {
            0 => Instruction::LoadNeurons { offset: *a, len: *b },
            1 => Instruction::LoadIndex { group: *g, offset: *a, len: *b },
            2 => Instruction::LoadSynapses { group: *g, offset: *a, len: *b },
            3 => Instruction::Compute { group: *g, offset: *a, len: *b },
            4 => Instruction::Activate {
                group: *g,
                activation: match a % 3 {
                    0 => Activation::None,
                    1 => Activation::Relu,
                    _ => Activation::Sigmoid,
                },
            },
            _ => Instruction::StoreOutputs { first: *a, count: *b },
        }).collect();
        let p = Program { instrs: instrs.clone(), n_in: 0, n_out: 0 };
        prop_assert_eq!(Program::decode_stream(&p.encode()).unwrap(), instrs);
    }

    /// WDM decode rate is monotone non-increasing in bit width.
    #[test]
    fn wdm_rate_monotone(bits1 in 1u8..16, bits2 in 1u8..16) {
        let (lo, hi) = if bits1 <= bits2 { (bits1, bits2) } else { (bits2, bits1) };
        prop_assert!(ssm::wdm_decodes_per_cycle(16, lo) >= ssm::wdm_decodes_per_cycle(16, hi));
    }
}
