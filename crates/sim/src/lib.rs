//! Simulation substrate: cycle accounting, DRAM bandwidth model,
//! ping-pong (double-buffered) DMA/compute overlap, and activity
//! counters.
//!
//! All accelerator models in this workspace (Cambricon-S, DianNao,
//! Cambricon-X, EIE) are *cycle-approximate*: per layer tile they compute
//! how many cycles the compute pipeline and the DMA engine each need and
//! combine them with the overlap rules implemented here, mirroring the
//! paper's ping-pong buffering ("hiding the DMA memory access behind the
//! computation", Section VII-D).
//!
//! # Example
//!
//! ```
//! use cs_sim::pingpong::OverlapScheduler;
//!
//! // Three tiles, compute-bound: DMA hides behind compute.
//! let mut s = OverlapScheduler::new();
//! for _ in 0..3 {
//!     s.tile(10, 100, 0);
//! }
//! assert_eq!(s.finish(), 10 + 300);
//! ```

pub mod dram;
pub mod pingpong;
pub mod stats;

pub use dram::DramModel;
pub use pingpong::OverlapScheduler;
pub use stats::SimStats;
