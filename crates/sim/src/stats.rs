//! Activity counters collected during simulation.
//!
//! The energy model (`cs-energy`) converts these counts into picojoules;
//! the performance comparisons read `cycles` directly.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Activity counters for one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Bytes read from main memory.
    pub dram_read_bytes: u64,
    /// Bytes written to main memory.
    pub dram_write_bytes: u64,
    /// Bytes read from the input neuron buffer (NBin).
    pub nbin_bytes: u64,
    /// Bytes read/written at the output neuron buffer (NBout).
    pub nbout_bytes: u64,
    /// Bytes read from the synapse buffers (SB).
    pub sb_bytes: u64,
    /// Bytes read from the synapse index buffer (SIB).
    pub sib_bytes: u64,
    /// Neuron-selection operations performed by the NSM (selected
    /// neurons produced).
    pub nsm_selections: u64,
    /// Synapse-selection operations performed by SSMs.
    pub ssm_selections: u64,
    /// Weight decodes performed by WDMs (LUT lookups).
    pub wdm_decodes: u64,
    /// Cycles the compute pipeline was actually busy (from the overlap
    /// scheduler); the rest of `cycles` is exposed memory time.
    pub compute_busy_cycles: u64,
    /// Cycles the pipeline spent stalled on DRAM: elapsed cycles not
    /// covered by compute (`cycles - compute_busy_cycles`).
    pub dram_stall_cycles: u64,
    /// Peak bytes resident in the NBin input-neuron buffer across the
    /// run (buffer occupancy; combines as a max, not a sum).
    pub nbin_peak_bytes: u64,
}

impl SimStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Total bytes moved to/from main memory.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total on-chip SRAM traffic in bytes.
    pub fn sram_bytes(&self) -> u64 {
        self.nbin_bytes + self.nbout_bytes + self.sb_bytes + self.sib_bytes
    }
}

impl Add for SimStats {
    type Output = SimStats;

    fn add(self, o: SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles + o.cycles,
            macs: self.macs + o.macs,
            dram_read_bytes: self.dram_read_bytes + o.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + o.dram_write_bytes,
            nbin_bytes: self.nbin_bytes + o.nbin_bytes,
            nbout_bytes: self.nbout_bytes + o.nbout_bytes,
            sb_bytes: self.sb_bytes + o.sb_bytes,
            sib_bytes: self.sib_bytes + o.sib_bytes,
            nsm_selections: self.nsm_selections + o.nsm_selections,
            ssm_selections: self.ssm_selections + o.ssm_selections,
            wdm_decodes: self.wdm_decodes + o.wdm_decodes,
            compute_busy_cycles: self.compute_busy_cycles + o.compute_busy_cycles,
            dram_stall_cycles: self.dram_stall_cycles + o.dram_stall_cycles,
            // Occupancy is a level, not a flow: chaining layers keeps
            // the highest peak either side reached.
            nbin_peak_bytes: self.nbin_peak_bytes.max(o.nbin_peak_bytes),
        }
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, o: SimStats) {
        *self = *self + o;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} macs={} dram={}B sram={}B",
            self.cycles,
            self.macs,
            self.dram_bytes(),
            self.sram_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_fieldwise() {
        let a = SimStats {
            cycles: 10,
            macs: 5,
            dram_read_bytes: 100,
            ..SimStats::new()
        };
        let b = SimStats {
            cycles: 1,
            dram_write_bytes: 50,
            ..SimStats::new()
        };
        let c = a + b;
        assert_eq!(c.cycles, 11);
        assert_eq!(c.macs, 5);
        assert_eq!(c.dram_bytes(), 150);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn breakdown_sums_but_occupancy_peaks() {
        let a = SimStats {
            compute_busy_cycles: 70,
            dram_stall_cycles: 30,
            nbin_peak_bytes: 4096,
            ..SimStats::new()
        };
        let b = SimStats {
            compute_busy_cycles: 10,
            dram_stall_cycles: 5,
            nbin_peak_bytes: 1024,
            ..SimStats::new()
        };
        let c = a + b;
        assert_eq!(c.compute_busy_cycles, 80);
        assert_eq!(c.dram_stall_cycles, 35);
        assert_eq!(c.nbin_peak_bytes, 4096, "peak is a max, not a sum");
    }

    #[test]
    fn display_nonempty() {
        assert!(!SimStats::new().to_string().is_empty());
    }

    #[test]
    fn sram_totals() {
        let s = SimStats {
            nbin_bytes: 1,
            nbout_bytes: 2,
            sb_bytes: 3,
            sib_bytes: 4,
            ..SimStats::new()
        };
        assert_eq!(s.sram_bytes(), 10);
    }
}
