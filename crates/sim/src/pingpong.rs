//! Double-buffered DMA/compute overlap accounting.
//!
//! The accelerator's NBin/NBout/SB buffers are ping-pong pairs: while one
//! half is being computed from, the DMA engine fills the other half. The
//! scheduler here tracks two resources — a serial memory channel and the
//! compute pipeline — with a buffer depth of two, which yields the
//! classic result: steady-state time per tile is `max(load, compute)` and
//! only the first load is exposed.

/// Cycle-level scheduler for a sequence of `(load, compute, store)` tiles
/// under double buffering. Loads and stores travel on separate DMA
/// queues (reads must not stall behind writes waiting on compute), so a
/// pending store never delays the next tile's prefetch.
#[derive(Debug, Clone, Default)]
pub struct OverlapScheduler {
    /// When the read DMA queue becomes free.
    mem_free: u64,
    /// When the write DMA queue becomes free.
    write_free: u64,
    /// When the compute pipeline becomes free.
    comp_free: u64,
    /// Completion time of the compute consuming each in-flight buffer
    /// (ping-pong depth 2: a new load must wait for the compute two tiles
    /// back to release its buffer).
    inflight: [u64; 2],
    tiles: usize,
    /// Total cycles the compute pipeline was busy (for utilization).
    compute_busy: u64,
    /// Total cycles the memory channel was busy.
    mem_busy: u64,
}

impl OverlapScheduler {
    /// Creates an idle scheduler.
    pub fn new() -> Self {
        OverlapScheduler::default()
    }

    /// Accounts one tile: `load` cycles of input DMA, `compute` cycles of
    /// pipeline work, `store` cycles of output DMA. Returns the cycle at
    /// which the tile's compute completes.
    pub fn tile(&mut self, load: u64, compute: u64, store: u64) -> u64 {
        let slot = self.tiles % 2;
        // The load may start once the memory channel is free and the
        // buffer slot has been released by the compute two tiles ago.
        let load_start = self.mem_free.max(self.inflight[slot]);
        let load_end = load_start + load;
        self.mem_free = load_end;
        self.mem_busy += load;

        // Compute starts when its data is loaded and the pipeline is free.
        let comp_start = load_end.max(self.comp_free);
        let comp_end = comp_start + compute;
        self.comp_free = comp_end;
        self.compute_busy += compute;
        self.inflight[slot] = comp_end;

        // The store uses the write queue after compute finishes.
        if store > 0 {
            let store_start = self.write_free.max(comp_end);
            self.write_free = store_start + store;
            self.mem_busy += store;
        }
        self.tiles += 1;
        comp_end
    }

    /// Total elapsed cycles once all queued work drains.
    pub fn finish(&self) -> u64 {
        self.mem_free.max(self.comp_free).max(self.write_free)
    }

    /// Number of tiles accounted.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Total cycles the compute pipeline was busy.
    pub fn compute_busy_cycles(&self) -> u64 {
        self.compute_busy
    }

    /// Total cycles the memory channel was busy (loads + stores).
    pub fn memory_busy_cycles(&self) -> u64 {
        self.mem_busy
    }

    /// Fraction of elapsed time the compute pipeline was busy.
    pub fn compute_utilization(&self) -> f64 {
        let total = self.finish();
        if total == 0 {
            return 0.0;
        }
        self.compute_busy as f64 / total as f64
    }

    /// Fraction of elapsed time the memory channel was busy.
    pub fn memory_utilization(&self) -> f64 {
        let total = self.finish();
        if total == 0 {
            return 0.0;
        }
        self.mem_busy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_hides_dma() {
        let mut s = OverlapScheduler::new();
        for _ in 0..10 {
            s.tile(10, 100, 0);
        }
        // First load exposed, then compute dominates.
        assert_eq!(s.finish(), 10 + 10 * 100);
        assert!(s.compute_utilization() > 0.98);
    }

    #[test]
    fn memory_bound_hides_compute() {
        let mut s = OverlapScheduler::new();
        for _ in 0..10 {
            s.tile(100, 10, 0);
        }
        // Loads are serial on the channel; the final compute is exposed.
        assert_eq!(s.finish(), 10 * 100 + 10);
        assert!(s.memory_utilization() > 0.98);
    }

    #[test]
    fn stores_do_not_block_prefetch() {
        let mut s = OverlapScheduler::new();
        s.tile(10, 10, 10);
        assert_eq!(s.finish(), 30);
        // Write traffic drains on its own queue: loads stream
        // back-to-back and the last store is the only exposed tail.
        let mut s2 = OverlapScheduler::new();
        for _ in 0..10 {
            s2.tile(50, 10, 50);
        }
        // Loads: 500 cycles; final compute ends at 510; its store +50.
        assert_eq!(s2.finish(), 560);
    }

    #[test]
    fn single_tile_is_serial() {
        let mut s = OverlapScheduler::new();
        let end = s.tile(5, 7, 3);
        assert_eq!(end, 12);
        assert_eq!(s.finish(), 15);
    }

    #[test]
    fn depth_two_buffering_blocks_third_load() {
        // Long computes: the 3rd load must wait for tile-1's compute to
        // release its buffer slot.
        let mut s = OverlapScheduler::new();
        s.tile(10, 1000, 0); // load [0,10) compute [10,1010)
        s.tile(10, 1000, 0); // load [10,20) compute [1010,2010)
        s.tile(10, 1000, 0); // load waits for slot 0 free at 1010
                             // Load 3 starts at 1010 -> compute [2010, 3010).
        assert_eq!(s.finish(), 3010);
    }

    #[test]
    fn empty_scheduler() {
        let s = OverlapScheduler::new();
        assert_eq!(s.finish(), 0);
        assert_eq!(s.compute_utilization(), 0.0);
    }
}
