//! Main-memory model: bandwidth-limited transfers with per-byte energy.
//!
//! The paper plugs every accelerator into "a main memory model allowing a
//! bandwidth up to 256 GB/s" and uses CACTI 6.0 for DRAM energy. At the
//! accelerator's 1 GHz clock, 256 GB/s is 256 bytes per cycle. Energy is
//! charged per byte moved; the default (20 pJ/bit) is in the range CACTI
//! reports for DDR-class parts and makes off-chip accesses dominate total
//! energy exactly as in the paper's Fig. 19.

/// Error constructing a DRAM model from user-provided parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DramModelError {
    /// Bandwidth must be a finite, strictly positive byte/cycle rate.
    InvalidBandwidth(f64),
    /// Per-byte energy must be finite and non-negative.
    InvalidEnergy(f64),
}

impl std::fmt::Display for DramModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramModelError::InvalidBandwidth(b) => {
                write!(f, "DRAM bandwidth must be finite and positive, got {b}")
            }
            DramModelError::InvalidEnergy(e) => {
                write!(
                    f,
                    "DRAM energy/byte must be finite and non-negative, got {e}"
                )
            }
        }
    }
}

impl std::error::Error for DramModelError {}

/// Bandwidth-limited DRAM with per-byte access energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Fixed latency added to the first transfer of a burst, in cycles.
    pub latency_cycles: u64,
    /// Access energy in picojoules per byte.
    pub energy_pj_per_byte: f64,
}

impl DramModel {
    /// The paper's configuration: 256 GB/s at a 1 GHz accelerator clock,
    /// 100-cycle first-access latency, 20 pJ/bit.
    pub fn paper_default() -> Self {
        DramModel {
            bytes_per_cycle: 256.0,
            latency_cycles: 100,
            energy_pj_per_byte: 160.0,
        }
    }

    /// Validated constructor for custom memory systems (the serving
    /// layer builds these from operator-supplied config, so garbage
    /// parameters must be rejected as values, not trusted into the
    /// cycle math).
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive bandwidth and non-finite or
    /// negative per-byte energy.
    pub fn new(
        bytes_per_cycle: f64,
        latency_cycles: u64,
        energy_pj_per_byte: f64,
    ) -> Result<Self, DramModelError> {
        if !bytes_per_cycle.is_finite() || bytes_per_cycle <= 0.0 {
            return Err(DramModelError::InvalidBandwidth(bytes_per_cycle));
        }
        if !energy_pj_per_byte.is_finite() || energy_pj_per_byte < 0.0 {
            return Err(DramModelError::InvalidEnergy(energy_pj_per_byte));
        }
        Ok(DramModel {
            bytes_per_cycle,
            latency_cycles,
            energy_pj_per_byte,
        })
    }

    /// Cycles to stream `bytes` (excluding the burst latency).
    ///
    /// Saturates rather than overflowing: a degenerate bandwidth (the
    /// fields are public, so a caller can still construct one) yields
    /// `u64::MAX` instead of a platform-dependent float-to-int cast.
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        let cycles = (bytes as f64 / self.bytes_per_cycle).ceil();
        if cycles.is_finite() && cycles >= 0.0 {
            if cycles >= u64::MAX as f64 {
                u64::MAX
            } else {
                cycles as u64
            }
        } else if bytes == 0 {
            0
        } else {
            u64::MAX
        }
    }

    /// Cycles for one burst of `bytes` including the first-access latency.
    pub fn burst_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            self.latency_cycles + self.stream_cycles(bytes)
        }
    }

    /// Energy in picojoules to move `bytes`.
    pub fn energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_pj_per_byte
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_cycles_scale_with_bytes() {
        let d = DramModel::paper_default();
        assert_eq!(d.stream_cycles(256), 1);
        assert_eq!(d.stream_cycles(257), 2);
        assert_eq!(d.stream_cycles(0), 0);
        assert_eq!(d.stream_cycles(256 * 1000), 1000);
    }

    #[test]
    fn burst_adds_latency_only_when_nonempty() {
        let d = DramModel::paper_default();
        assert_eq!(d.burst_cycles(0), 0);
        assert_eq!(d.burst_cycles(256), 101);
    }

    #[test]
    fn energy_is_linear() {
        let d = DramModel::paper_default();
        assert_eq!(d.energy_pj(0), 0.0);
        assert_eq!(d.energy_pj(100), 16_000.0);
    }

    #[test]
    fn constructor_rejects_degenerate_parameters() {
        assert!(DramModel::new(0.0, 10, 1.0).is_err());
        assert!(DramModel::new(-4.0, 10, 1.0).is_err());
        assert!(DramModel::new(f64::NAN, 10, 1.0).is_err());
        assert!(DramModel::new(64.0, 10, f64::INFINITY).is_err());
        assert!(DramModel::new(64.0, 10, -1.0).is_err());
        let d = DramModel::new(64.0, 10, 1.0).unwrap();
        assert_eq!(d.stream_cycles(128), 2);
    }

    #[test]
    fn stream_cycles_saturate_instead_of_overflowing() {
        let degenerate = DramModel {
            bytes_per_cycle: 0.0,
            latency_cycles: 0,
            energy_pj_per_byte: 0.0,
        };
        assert_eq!(degenerate.stream_cycles(0), 0);
        assert_eq!(degenerate.stream_cycles(1), u64::MAX);
    }
}
