//! Main-memory model: bandwidth-limited transfers with per-byte energy.
//!
//! The paper plugs every accelerator into "a main memory model allowing a
//! bandwidth up to 256 GB/s" and uses CACTI 6.0 for DRAM energy. At the
//! accelerator's 1 GHz clock, 256 GB/s is 256 bytes per cycle. Energy is
//! charged per byte moved; the default (20 pJ/bit) is in the range CACTI
//! reports for DDR-class parts and makes off-chip accesses dominate total
//! energy exactly as in the paper's Fig. 19.

/// Bandwidth-limited DRAM with per-byte access energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Fixed latency added to the first transfer of a burst, in cycles.
    pub latency_cycles: u64,
    /// Access energy in picojoules per byte.
    pub energy_pj_per_byte: f64,
}

impl DramModel {
    /// The paper's configuration: 256 GB/s at a 1 GHz accelerator clock,
    /// 100-cycle first-access latency, 20 pJ/bit.
    pub fn paper_default() -> Self {
        DramModel {
            bytes_per_cycle: 256.0,
            latency_cycles: 100,
            energy_pj_per_byte: 160.0,
        }
    }

    /// Cycles to stream `bytes` (excluding the burst latency).
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Cycles for one burst of `bytes` including the first-access latency.
    pub fn burst_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            self.latency_cycles + self.stream_cycles(bytes)
        }
    }

    /// Energy in picojoules to move `bytes`.
    pub fn energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_pj_per_byte
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_cycles_scale_with_bytes() {
        let d = DramModel::paper_default();
        assert_eq!(d.stream_cycles(256), 1);
        assert_eq!(d.stream_cycles(257), 2);
        assert_eq!(d.stream_cycles(0), 0);
        assert_eq!(d.stream_cycles(256 * 1000), 1000);
    }

    #[test]
    fn burst_adds_latency_only_when_nonempty() {
        let d = DramModel::paper_default();
        assert_eq!(d.burst_cycles(0), 0);
        assert_eq!(d.burst_cycles(256), 101);
    }

    #[test]
    fn energy_is_linear() {
        let d = DramModel::paper_default();
        assert_eq!(d.energy_pj(0), 0.0);
        assert_eq!(d.energy_pj(100), 16_000.0);
    }
}
