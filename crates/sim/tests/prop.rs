//! Property-based tests for the overlap scheduler and DRAM model.

use cs_sim::{DramModel, OverlapScheduler};
use proptest::prelude::*;

proptest! {
    /// Total time is bounded below by each resource's busy time and
    /// above by fully-serial execution.
    #[test]
    fn scheduler_bounds(tiles in proptest::collection::vec(
        (0u64..1000, 0u64..1000, 0u64..1000), 1..50)) {
        let mut s = OverlapScheduler::new();
        for (l, c, st) in &tiles {
            s.tile(*l, *c, *st);
        }
        let total_load: u64 = tiles.iter().map(|t| t.0).sum();
        let total_compute: u64 = tiles.iter().map(|t| t.1).sum();
        let total_store: u64 = tiles.iter().map(|t| t.2).sum();
        let serial: u64 = tiles.iter().map(|t| t.0 + t.1 + t.2).sum();
        let finish = s.finish();
        prop_assert!(finish >= total_load.max(total_compute).max(total_store));
        prop_assert!(finish <= serial);
    }

    /// Adding a tile never makes the schedule finish earlier.
    #[test]
    fn scheduler_monotone(tiles in proptest::collection::vec(
        (0u64..500, 0u64..500, 0u64..500), 2..30)) {
        let mut partial = OverlapScheduler::new();
        let mut full = OverlapScheduler::new();
        for (i, (l, c, st)) in tiles.iter().enumerate() {
            if i + 1 < tiles.len() {
                partial.tile(*l, *c, *st);
            }
            full.tile(*l, *c, *st);
        }
        prop_assert!(full.finish() >= partial.finish());
    }

    /// Compute completion times returned by tile() are non-decreasing.
    #[test]
    fn tile_completions_are_ordered(tiles in proptest::collection::vec(
        (0u64..500, 1u64..500), 1..30)) {
        let mut s = OverlapScheduler::new();
        let mut last = 0u64;
        for (l, c) in &tiles {
            let end = s.tile(*l, *c, 0);
            prop_assert!(end >= last);
            last = end;
        }
    }

    /// DRAM cycles are monotone in bytes and energy is exactly linear.
    #[test]
    fn dram_monotonicity(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let d = DramModel::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.stream_cycles(lo) <= d.stream_cycles(hi));
        prop_assert!((d.energy_pj(a) + d.energy_pj(b) - d.energy_pj(a + b)).abs() < 1e-6);
    }

    /// Utilizations are proper fractions.
    #[test]
    fn utilizations_bounded(tiles in proptest::collection::vec(
        (0u64..200, 0u64..200, 0u64..200), 1..20)) {
        let mut s = OverlapScheduler::new();
        for (l, c, st) in &tiles {
            s.tile(*l, *c, *st);
        }
        prop_assert!((0.0..=1.0).contains(&s.compute_utilization()));
        // Memory busy counts two queues against one wall clock, so the
        // combined utilization can reach 2.0 but no more.
        prop_assert!((0.0..=2.0).contains(&s.memory_utilization()));
    }
}
