//! A small scoped thread pool with a chunked parallel-for.
//!
//! The build environment has no crates.io access, so the workspace
//! cannot pull in `rayon` or `crossbeam`; this crate provides the thin
//! slice of those libraries the execution engine actually needs, with
//! zero dependencies:
//!
//! * [`ThreadPool::run_chunks`] — split `0..n` into fixed-size chunks
//!   and execute them on all pool threads (the caller participates, so
//!   a pool of `threads = 1` runs entirely on the calling thread).
//! * [`ThreadPool::parallel_chunks_mut`] — the same, but handing each
//!   task a disjoint `&mut [T]` window of one output buffer, which is
//!   how the tensor kernels parallelize over output rows.
//!
//! The pool is *scoped*: the closure passed to `run_chunks` may borrow
//! from the caller's stack. Safety rests on a strict protocol — the
//! job slot holds a lifetime-erased pointer to the closure only for the
//! duration of one `run_chunks` call, workers register themselves in an
//! `active` count under the pool mutex before touching the job, and the
//! caller does not return until the slot is cleared **and** the active
//! count has drained back to zero. Panics inside a task are caught,
//! carried back, and re-raised on the calling thread.
//!
//! Determinism: chunk *boundaries* are fixed by `(n, chunk)` alone and
//! tasks write only to their own chunk, so any kernel whose per-chunk
//! computation is deterministic produces bit-identical results at every
//! thread count — the property the dense-vs-sparse equivalence tests
//! rely on.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Acquires a mutex, recovering the data from a poisoned lock (the
/// pool's own invariants do not depend on the poison flag: panics are
/// tracked explicitly per job).
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One in-flight parallel-for, shared between the caller and every
/// worker that adopts it. The `task` pointer is lifetime-erased; it is
/// only dereferenced by threads counted in `State::active` (or by the
/// caller itself), and the caller waits for that count to reach zero
/// before its stack frame — and therefore the closure — can die.
struct Job {
    task: *const (dyn Fn(usize, usize) + Sync),
    next: Arc<AtomicUsize>,
    n: usize,
    chunk: usize,
    panicked: Arc<AtomicBool>,
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

// SAFETY: the raw pointer targets a `Sync` closure, and the adoption
// protocol (see `Job` docs) guarantees it is never dereferenced after
// `run_chunks` returns.
unsafe impl Send for Job {}

impl Clone for Job {
    fn clone(&self) -> Self {
        Job {
            task: self.task,
            next: Arc::clone(&self.next),
            n: self.n,
            chunk: self.chunk,
            panicked: Arc::clone(&self.panicked),
            panic: Arc::clone(&self.panic),
        }
    }
}

impl Job {
    /// Pulls chunks off the shared cursor until the range is exhausted
    /// or a sibling (or this thread) panics.
    fn execute(&self) {
        // SAFETY: see `Job` — callers of `execute` are either the
        // `run_chunks` caller itself or a worker registered in the
        // active count, so the closure is alive.
        let task = unsafe { &*self.task };
        while !self.panicked.load(Ordering::Relaxed) {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                break;
            }
            let end = (start + self.chunk).min(self.n);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(start, end))) {
                self.panicked.store(true, Ordering::Relaxed);
                let mut slot = lock_or_recover(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
                break;
            }
        }
    }
}

/// Pool state guarded by the mutex in [`Shared`].
struct State {
    /// The current job, present only while a `run_chunks` call is in
    /// flight. Cleared by the caller before it starts waiting for the
    /// active count to drain, so late-waking workers never adopt a job
    /// whose chunks are already exhausted *after* the caller returned.
    job: Option<Job>,
    /// Bumped once per job so a worker never re-adopts the same one.
    generation: u64,
    /// Workers currently executing the job.
    active: usize,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new job (or shutdown) is available.
    work_ready: Condvar,
    /// Signals the caller that the active count reached zero.
    work_done: Condvar,
}

/// A persistent scoped thread pool.
///
/// `threads` counts the *total* parallelism including the calling
/// thread, so `ThreadPool::new(1)` spawns nothing and runs every job
/// inline — handy both as a baseline in benchmarks and to keep tests
/// deterministic on single-core hosts.
///
/// # Example
///
/// ```
/// use cs_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let mut out = vec![0u64; 1000];
/// pool.parallel_chunks_mut(&mut out, 100, |ci, chunk| {
///     for (i, v) in chunk.iter_mut().enumerate() {
///         *v = (ci * 100 + i) as u64 * 2;
///     }
/// });
/// assert_eq!(out[123], 246);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes concurrent `run_chunks` calls: the pool has a single
    /// job slot, so overlapping calls from different threads queue here
    /// instead of corrupting each other.
    run_lock: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads())
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes of parallelism
    /// (`threads - 1` spawned workers plus the caller). `threads == 0`
    /// is treated as 1.
    pub fn new(threads: usize) -> Self {
        let spawned = threads.max(1) - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let workers = (0..spawned)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cs-parallel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("spawning pool worker failed: {e}"))
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            run_lock: Mutex::new(()),
        }
    }

    /// A pool sized to the host (`available_parallelism`, min 1).
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        ThreadPool::new(threads)
    }

    /// Total parallelism (spawned workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// A reasonable default chunk size for `n` items on this pool:
    /// about four chunks per thread, never zero.
    pub fn default_chunk(&self, n: usize) -> usize {
        n.div_ceil(self.threads() * 4).max(1)
    }

    /// Runs `f(start, end)` for every chunk `[start, end)` of `0..n`,
    /// where chunks are `[0, c), [c, 2c), …` for `c = chunk.max(1)`.
    /// Blocks until every chunk completed. Chunks run concurrently in
    /// an unspecified order; `f` must therefore only write state owned
    /// by its own chunk (or otherwise synchronized).
    ///
    /// # Panics
    ///
    /// Re-raises (one of) the panic payload(s) if `f` panicked on any
    /// thread; remaining chunks are abandoned.
    pub fn run_chunks(&self, n: usize, chunk: usize, f: impl Fn(usize, usize) + Sync) {
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        if self.workers.is_empty() || n <= chunk {
            // Inline fast path; chunk boundaries match the pooled path.
            let mut start = 0usize;
            while start < n {
                let end = (start + chunk).min(n);
                f(start, end);
                start = end;
            }
            return;
        }

        let _serialize = lock_or_recover(&self.run_lock);
        let task: &(dyn Fn(usize, usize) + Sync) = &f;
        // SAFETY: erasing the lifetime is sound because this function
        // clears the job slot and drains the active count before
        // returning, so no thread can hold the pointer afterwards.
        let task: *const (dyn Fn(usize, usize) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(task as *const _)
        };
        let job = Job {
            task,
            next: Arc::new(AtomicUsize::new(0)),
            n,
            chunk,
            panicked: Arc::new(AtomicBool::new(false)),
            panic: Arc::new(Mutex::new(None)),
        };
        {
            let mut st = lock_or_recover(&self.shared.state);
            st.job = Some(job.clone());
            st.generation = st.generation.wrapping_add(1);
        }
        self.shared.work_ready.notify_all();

        // The caller is a full participant.
        job.execute();

        // Close the slot, then wait out every worker that adopted the
        // job. Ordering matters: clearing first guarantees late wakers
        // see `None` and go back to sleep instead of racing the drop of
        // this stack frame.
        {
            let mut st = lock_or_recover(&self.shared.state);
            st.job = None;
            while st.active > 0 {
                st = self
                    .shared
                    .work_done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        let payload = lock_or_recover(&job.panic).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }

    /// Runs `f(i)` for every `i` in `0..n` with an automatically chosen
    /// chunk size.
    ///
    /// # Panics
    ///
    /// Re-raises panics from `f` like [`ThreadPool::run_chunks`].
    pub fn parallel_for(&self, n: usize, f: impl Fn(usize) + Sync) {
        let chunk = self.default_chunk(n);
        self.run_chunks(n, chunk, |start, end| {
            for i in start..end {
                f(i);
            }
        });
    }

    /// Splits `data` into consecutive windows of `chunk_len` elements
    /// (the last may be shorter) and runs `f(window_index, window)`
    /// concurrently. Windows are disjoint, so each invocation owns its
    /// slice exclusively — the safe route to parallel writes into one
    /// output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`; re-raises panics from `f`.
    pub fn parallel_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk_len > 0, "chunk_len must be positive");
        // Hand out the windows through per-window mutexed slots: each
        // task takes its window exactly once, which proves disjointness
        // to the borrow checker without unsafe code here.
        let slots: Vec<Mutex<Option<&mut [T]>>> = data
            .chunks_mut(chunk_len)
            .map(|c| Mutex::new(Some(c)))
            .collect();
        self.run_chunks(slots.len(), 1, |start, end| {
            for (off, slot) in slots[start..end].iter().enumerate() {
                if let Some(w) = lock_or_recover(slot).take() {
                    f(start + off, w);
                }
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock_or_recover(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut st = lock_or_recover(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != last_gen {
                    last_gen = st.generation;
                    if let Some(job) = st.job.clone() {
                        st.active += 1;
                        break job;
                    }
                    // The job was already retired; keep waiting.
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job.execute();
        let mut st = lock_or_recover(&shared.state);
        st.active -= 1;
        if st.active == 0 {
            shared.work_done.notify_all();
        }
        drop(st);
        // Waking the caller outside the lock avoids a pointless
        // immediate block on `state`.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 7, 100, 1023] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run_chunks(n, 13, |start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n = {n}"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for round in 0..50u64 {
            pool.parallel_for(100, |i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        // sum over rounds of (100*round + 4950)
        let want: u64 = (0..50u64).map(|r| 100 * r + 4950).sum();
        assert_eq!(total.load(Ordering::Relaxed), want);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        pool.parallel_for(32, |_| {
            assert_eq!(std::thread::current().id(), main_id);
        });
    }

    #[test]
    fn chunks_mut_windows_are_disjoint_and_complete() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u32; 997]; // deliberately not a multiple
        pool.parallel_chunks_mut(&mut data, 64, |ci, w| {
            for (i, v) in w.iter_mut().enumerate() {
                *v = (ci * 64 + i) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        // A chunk-deterministic kernel must give the same bytes on any
        // pool size.
        let kernel = |threads: usize| {
            let pool = ThreadPool::new(threads);
            let mut out = vec![0.0f32; 512];
            pool.parallel_chunks_mut(&mut out, 32, |ci, w| {
                for (i, v) in w.iter_mut().enumerate() {
                    let x = (ci * 32 + i) as f32;
                    *v = (x * 0.37).sin() * 1e-3 + x;
                }
            });
            out
        };
        let base = kernel(1);
        for t in [2, 3, 8] {
            assert_eq!(kernel(t), base, "threads = {t}");
        }
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(100, 1, |start, _| {
                if start == 57 {
                    panic!("boom at {start}");
                }
            });
        }));
        assert!(caught.is_err(), "panic must cross run_chunks");
        // The pool must still work afterwards.
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let count = AtomicUsize::new(0);
        pool.run_chunks(5, 2, |s, e| {
            count.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_run_calls_serialize_cleanly() {
        let pool = Arc::new(ThreadPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    pool.parallel_for(50, |i| {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 1225);
    }

    #[test]
    fn default_chunk_is_sane() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.default_chunk(0), 1);
        assert!(pool.default_chunk(16) >= 1);
        assert!(pool.default_chunk(1_000_000) >= 1_000_000 / 64);
    }
}
