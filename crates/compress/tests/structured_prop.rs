//! Property tests: structured-sparsity metadata round-trips through the
//! packed formats, and the specialized kernels stay bit-identical to a
//! dense reference on arbitrary geometries.

use cs_compress::engine::FcKernel;
use cs_compress::format::{BankBalancedFcLayer, FcLayerFormat, TwoFourFcLayer};
use cs_sparsity::structured;
use cs_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn weights(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut x = seed | 1;
    Tensor::from_fn(Shape::d2(rows, cols), |_| {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    })
}

fn input(n: usize, seed: u64) -> Vec<f32> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// Dense reference: accumulate every input in ascending order, the exact
/// k-order the sparse kernels claim bit-identity against.
fn dense_forward(w: &Tensor, input: &[f32]) -> Vec<f32> {
    let n_out = w.shape().dim(1);
    let mut out = vec![0.0f32; n_out];
    for (o, slot) in out.iter_mut().enumerate() {
        for (i, x) in input.iter().enumerate() {
            *slot += x * w.as_slice()[i * n_out + o];
        }
    }
    out
}

fn masked(w: &Tensor, mask: &cs_sparsity::Mask) -> Tensor {
    Tensor::from_fn(w.shape().clone(), |i| {
        if mask.bits()[i] {
            w.as_slice()[i]
        } else {
            0.0
        }
    })
}

proptest! {
    /// 2:4 survivor positions and values round-trip exactly through the
    /// packed 2-bit metadata for any geometry, ragged tails included.
    #[test]
    fn two_four_metadata_roundtrip(rows in 1usize..48, cols in 1usize..10,
                                   seed in 0u64..200) {
        let w = weights(rows, cols, seed);
        let mask = structured::two_four_mask(&w).unwrap();
        let layer = TwoFourFcLayer::from_fc("p", &w, &mask).unwrap();
        for o in 0..cols {
            let want_pos: Vec<u32> = (0..rows)
                .filter(|i| mask.bits()[i * cols + o])
                .map(|i| i as u32)
                .collect();
            let want_vals: Vec<f32> = want_pos.iter()
                .map(|i| w.as_slice()[*i as usize * cols + o])
                .collect();
            prop_assert_eq!(layer.lane_positions(o), want_pos);
            prop_assert_eq!(layer.lane_values(o), &want_vals[..]);
        }
        let dense = layer.to_dense();
        let want = masked(&w, &mask);
        for (a, b) in dense.as_slice().iter().zip(want.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Bank-balanced survivor positions and values round-trip exactly
    /// through the byte-offset metadata for any bank geometry.
    #[test]
    fn bank_balanced_metadata_roundtrip(rows in 1usize..48, cols in 1usize..8,
                                        bank in 2usize..12, k in 1usize..12,
                                        seed in 0u64..200) {
        prop_assume!(k <= bank);
        let w = weights(rows, cols, seed);
        let mask = structured::bank_balanced_mask(&w, bank, k).unwrap();
        let layer = BankBalancedFcLayer::from_fc("p", &w, &mask, bank, k).unwrap();
        for o in 0..cols {
            let want_pos: Vec<u32> = (0..rows)
                .filter(|i| mask.bits()[i * cols + o])
                .map(|i| i as u32)
                .collect();
            prop_assert_eq!(layer.lane_positions(o), want_pos);
        }
        let dense = layer.to_dense();
        let want = masked(&w, &mask);
        for (a, b) in dense.as_slice().iter().zip(want.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The compiled 2:4 kernel is bit-identical to the dense ascending-
    /// order reference over the *masked* weights, for any shape and input.
    #[test]
    fn two_four_kernel_matches_dense_reference(rows in 1usize..32, cols in 1usize..10,
                                               seed in 0u64..100) {
        let w = weights(rows, cols, seed);
        let mask = structured::two_four_mask(&w).unwrap();
        let layer = TwoFourFcLayer::from_fc("p", &w, &mask).unwrap();
        let kernel = FcKernel::compile(&FcLayerFormat::TwoFour(layer));
        let x = input(rows, seed ^ 0xA5A5);
        let got = kernel.forward_alloc(&x);
        let want = dense_forward(&masked(&w, &mask), &x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Same bit-identity for the compiled bank-balanced kernel.
    #[test]
    fn bank_balanced_kernel_matches_dense_reference(rows in 1usize..32, cols in 1usize..10,
                                                    bank in 2usize..10, k in 1usize..10,
                                                    seed in 0u64..100) {
        prop_assume!(k <= bank);
        let w = weights(rows, cols, seed);
        let mask = structured::bank_balanced_mask(&w, bank, k).unwrap();
        let layer = BankBalancedFcLayer::from_fc("p", &w, &mask, bank, k).unwrap();
        let kernel = FcKernel::compile(&FcLayerFormat::BankBalanced(layer));
        let x = input(rows, seed ^ 0x5A5A);
        let got = kernel.forward_alloc(&x);
        let want = dense_forward(&masked(&w, &mask), &x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
