//! The full Cambricon-S compression pipeline (the paper's Fig. 5):
//! coarse-grained pruning → local quantization → entropy coding.
//!
//! * [`config`] — per-layer-class pruning/quantization settings, with the
//!   paper's published per-network targets (Table IV).
//! * [`pipeline`] — runs the flow over a network spec, producing the size
//!   accounting the paper reports (`W_p`, `r_p`, `W_q`, `r_q`, `W_c`,
//!   `r_c`, index sizes).
//! * [`irregularity`] — the reduced-irregularity metric `R(Irr)` (Eq. 1),
//!   using the bilevel codec in `cs-coding` as the JBIG stand-in.
//! * [`mod@format`] — the compact shared-index storage format consumed by the
//!   accelerator simulator: per output-neuron-group synapse indexes shared
//!   by all PEs, plus quantized weights and codebooks for the WDM.
//! * [`engine`] — the compiled block-CSR sparse execution engine: the
//!   storage format lowered into run-length strips with pre-decoded
//!   weights, with FC and conv kernels bit-identical to the dense
//!   reference on finite inputs.
//! * [`gate`] — dynamic activation sparsity: the prescan-and-skip
//!   occupancy bitmap, the `bits == +0.0` skip-eligibility rule, and
//!   the per-layer benefit model behind the gated kernels in
//!   [`engine`].
//!
//! # Example
//!
//! ```
//! use cs_compress::config::ModelCompressionConfig;
//! use cs_compress::pipeline;
//! use cs_nn::spec::{Model, NetworkSpec, Scale};
//!
//! let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
//! let cfg = ModelCompressionConfig::paper(Model::Mlp);
//! let report = pipeline::compress_model(&spec, &cfg, 42).unwrap();
//! assert!(report.overall_ratio() > 10.0);
//! ```

pub mod config;
pub mod engine;
pub mod format;
pub mod gate;
pub mod irregularity;
pub mod pipeline;

use std::fmt;

/// Error type for the compression pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// Propagated tensor error.
    Tensor(cs_tensor::TensorError),
    /// Propagated quantization error.
    Quant(cs_quant::QuantError),
    /// Propagated coding error.
    Coding(cs_coding::CodingError),
    /// A layer has no surviving weights after pruning.
    EmptyLayer(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Tensor(e) => write!(f, "tensor error: {e}"),
            CompressError::Quant(e) => write!(f, "quantization error: {e}"),
            CompressError::Coding(e) => write!(f, "coding error: {e}"),
            CompressError::EmptyLayer(n) => write!(f, "layer {n} has no surviving weights"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<cs_tensor::TensorError> for CompressError {
    fn from(e: cs_tensor::TensorError) -> Self {
        CompressError::Tensor(e)
    }
}

impl From<cs_quant::QuantError> for CompressError {
    fn from(e: cs_quant::QuantError) -> Self {
        CompressError::Quant(e)
    }
}

impl From<cs_coding::CodingError> for CompressError {
    fn from(e: cs_coding::CodingError) -> Self {
        CompressError::Coding(e)
    }
}
