//! The reduced-irregularity metric `R(Irr)` (the paper's Eq. 1).
//!
//! `R(Irr) = JBIG(I_f) / JBIG(I_c)`: both the fine-grained per-synapse
//! index and the coarse-grained block index are treated as bilevel images
//! and compressed; the ratio of their compressed sizes measures how much
//! regularity coarse-grained pruning recovered. Regular (blocky) bitmaps
//! carry redundant information and compress small, so a large ratio means
//! much-reduced irregularity.

use cs_coding::bilevel::{self, BiLevelImage};
use cs_sparsity::coarse::{self, CoarseConfig};
use cs_sparsity::{fine, Mask};
use cs_tensor::Tensor;

use crate::CompressError;

/// Compressed sizes of both index representations plus the ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrregularityReport {
    /// Compressed fine-grained index size in bytes.
    pub fine_bytes: usize,
    /// Compressed coarse-grained (block) index size in bytes.
    pub coarse_bytes: usize,
    /// `R(Irr)`.
    pub ratio: f64,
}

/// Measures `R(Irr)` for one layer: prunes `weights` both coarse-grained
/// (under `cfg`) and fine-grained at the same density, compresses both
/// index bitmaps and returns the size ratio.
///
/// # Errors
///
/// Propagates pruning and codec errors.
pub fn measure(
    weights: &Tensor,
    cfg: &CoarseConfig,
    density: f64,
) -> Result<IrregularityReport, CompressError> {
    let coarse_mask = coarse::prune_to_density(weights, cfg, density)?;
    let fine_mask = fine::prune_to_density(weights, density)?;
    measure_masks(&coarse_mask, &fine_mask, cfg)
}

/// Measures `R(Irr)` from pre-computed masks.
///
/// # Errors
///
/// Propagates codec errors.
pub fn measure_masks(
    coarse_mask: &Mask,
    fine_mask: &Mask,
    cfg: &CoarseConfig,
) -> Result<IrregularityReport, CompressError> {
    let bk = coarse::block_keep(coarse_mask, cfg);
    let (_, cols) = bk.as_2d();
    let coarse_img = BiLevelImage::from_bits(&bk.keep, cols.max(1))?;
    let coarse_bytes = bilevel::compressed_size(&coarse_img);

    let (_, fcols) = mask_2d(fine_mask);
    let fine_img = BiLevelImage::from_bits(fine_mask.bits(), fcols)?;
    let fine_bytes = bilevel::compressed_size(&fine_img);

    Ok(IrregularityReport {
        fine_bytes,
        coarse_bytes,
        ratio: fine_bytes as f64 / coarse_bytes.max(1) as f64,
    })
}

fn mask_2d(mask: &Mask) -> (usize, usize) {
    let s = mask.shape();
    match s.rank() {
        2 => (s.dim(0), s.dim(1)),
        4 => (s.dim(0) * s.dim(2) * s.dim(3), s.dim(1)),
        _ => (1, mask.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::PruneMetric;
    use cs_tensor::Shape;

    #[test]
    fn coarse_pruning_reduces_irregularity_substantially() {
        let w = local_convergence(
            Shape::d2(256, 256),
            &ConvergenceProfile::with_target_density(0.1).with_block(16),
            3,
        );
        let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
        let rep = measure(&w, &cfg, 0.1).unwrap();
        assert!(rep.ratio > 5.0, "R(Irr) = {}", rep.ratio);
        assert!(rep.coarse_bytes < rep.fine_bytes);
    }

    #[test]
    fn block_size_one_gives_ratio_near_one() {
        let w = local_convergence(
            Shape::d2(128, 128),
            &ConvergenceProfile::with_target_density(0.1),
            5,
        );
        let cfg = CoarseConfig::fc(1, 1, PruneMetric::Average);
        let rep = measure(&w, &cfg, 0.1).unwrap();
        // Coarse == fine at block 1, both compress the same bitmap.
        assert!((rep.ratio - 1.0).abs() < 0.2, "R(Irr) = {}", rep.ratio);
    }

    #[test]
    fn larger_blocks_reduce_more() {
        let w = local_convergence(
            Shape::d2(256, 256),
            &ConvergenceProfile::with_target_density(0.1).with_block(32),
            7,
        );
        let r8 = measure(&w, &CoarseConfig::fc(8, 8, PruneMetric::Average), 0.1)
            .unwrap()
            .ratio;
        let r32 = measure(&w, &CoarseConfig::fc(32, 32, PruneMetric::Average), 0.1)
            .unwrap()
            .ratio;
        assert!(r32 > r8, "r32 {r32} <= r8 {r8}");
    }
}
