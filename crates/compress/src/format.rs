//! Compact shared-index storage — the on-device format of Section V-A.
//!
//! After coarse-grained pruning, all output neurons inside a block group
//! share the same connection topology, so one synapse index (one bit per
//! input position) serves a whole group of `B_out` outputs — in hardware,
//! the 16 PEs fed by the shared NSM. Weights are stored compactly (only
//! surviving synapses) as quantized dictionary indices, with a per-group
//! codebook that the PE's Weight Decoder Module (WDM) holds as a LUT.
//!
//! Convolutional layers lower to the same structure: each output-map
//! group shares an index over the `(n_fin, kx, ky)` window positions, and
//! one "output" here is one output feature map evaluated at a spatial
//! position (exactly how the accelerator time-shares its PEs).

use cs_quant::{kmeans_1d, Codebook};
use cs_sparsity::Mask;
use cs_tensor::{Tensor, TensorError};

use crate::CompressError;

/// One group of output neurons sharing a synapse index.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputGroup {
    /// Shared synapse index: one bit per input position, `true` when the
    /// connection survives (broadcast by the NSM).
    pub index: Vec<bool>,
    /// Per output neuron: quantized weights for the surviving positions,
    /// in input order. All rows have length `index.count_ones()`.
    pub weights: Vec<Vec<u16>>,
    /// The group's weight codebook (the WDM LUT contents).
    pub codebook: Codebook,
}

impl OutputGroup {
    /// Surviving synapses per output neuron.
    pub fn survivors(&self) -> usize {
        self.index.iter().filter(|b| **b).count()
    }
}

/// A layer stored in the accelerator's compact shared-index format.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedIndexLayer {
    /// Layer name.
    pub name: String,
    /// Input positions per output computation (FC: `n_in`; conv:
    /// `n_fin · kx · ky`).
    pub n_in: usize,
    /// Total output neurons (FC) or output feature maps (conv).
    pub n_out: usize,
    /// Outputs per shared index (`B_out`; the hardware shares across
    /// `T_n = 16` PEs).
    pub group_size: usize,
    /// Dictionary width in bits (decoded by the WDM).
    pub quant_bits: u8,
    /// The output groups in order.
    pub groups: Vec<OutputGroup>,
}

impl SharedIndexLayer {
    /// Builds the format from a fully-connected weight matrix
    /// `(n_in, n_out)` and its block-aligned mask.
    ///
    /// # Errors
    ///
    /// Returns an error when the mask is not shared within each output
    /// group (i.e. pruning was not coarse over `group_size` outputs) or
    /// shapes disagree.
    pub fn from_fc(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        group_size: usize,
        quant_bits: u8,
    ) -> Result<Self, CompressError> {
        if weights.shape().rank() != 2 {
            return Err(CompressError::Tensor(TensorError::RankMismatch {
                expected: 2,
                actual: weights.shape().rank(),
                op: "shared-index fc",
            }));
        }
        let (n_in, n_out) = (weights.shape().dim(0), weights.shape().dim(1));
        let get_mask = |i: usize, o: usize| mask.bits()[i * n_out + o];
        let get_w = |i: usize, o: usize| weights.as_slice()[i * n_out + o];
        Self::build(
            name.into(),
            n_in,
            n_out,
            group_size,
            quant_bits,
            get_mask,
            get_w,
        )
    }

    /// Builds the format from convolutional weights
    /// `(n_fin, n_fout, kx, ky)` and a mask that is coarse over
    /// `group_size` output maps (the paper's `(1, N, 1, 1)` blocks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedIndexLayer::from_fc`].
    pub fn from_conv(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        group_size: usize,
        quant_bits: u8,
    ) -> Result<Self, CompressError> {
        if weights.shape().rank() != 4 {
            return Err(CompressError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: weights.shape().rank(),
                op: "shared-index conv",
            }));
        }
        let (fi, fo, kx, ky) = (
            weights.shape().dim(0),
            weights.shape().dim(1),
            weights.shape().dim(2),
            weights.shape().dim(3),
        );
        let n_in = fi * kx * ky;
        // Input position p = (f * kx + x) * ky + y.
        let get_mask = move |p: usize, o: usize| {
            let f = p / (kx * ky);
            let rem = p % (kx * ky);
            mask.bits()[((f * fo + o) * kx + rem / ky) * ky + rem % ky]
        };
        let get_w = move |p: usize, o: usize| {
            let f = p / (kx * ky);
            let rem = p % (kx * ky);
            weights.as_slice()[((f * fo + o) * kx + rem / ky) * ky + rem % ky]
        };
        Self::build(
            name.into(),
            n_in,
            fo,
            group_size,
            quant_bits,
            get_mask,
            get_w,
        )
    }

    fn build(
        name: String,
        n_in: usize,
        n_out: usize,
        group_size: usize,
        quant_bits: u8,
        get_mask: impl Fn(usize, usize) -> bool,
        get_w: impl Fn(usize, usize) -> f32,
    ) -> Result<Self, CompressError> {
        let group_size = group_size.max(1).min(n_out);
        let mut groups = Vec::with_capacity(n_out.div_ceil(group_size));
        for g0 in (0..n_out).step_by(group_size) {
            let g1 = (g0 + group_size).min(n_out);
            // Shared index from the first output; verify the rest agree.
            let index: Vec<bool> = (0..n_in).map(|i| get_mask(i, g0)).collect();
            for o in g0 + 1..g1 {
                for (i, bit) in index.iter().enumerate() {
                    if get_mask(i, o) != *bit {
                        return Err(CompressError::Coding(cs_coding::CodingError::InvalidInput(
                            format!("mask not shared within output group at ({i}, {o})"),
                        )));
                    }
                }
            }
            // Gather surviving weights for the group and quantize with a
            // per-group codebook (local quantization at group scope).
            let mut all: Vec<f32> = Vec::new();
            for o in g0..g1 {
                for (i, bit) in index.iter().enumerate() {
                    if *bit {
                        all.push(get_w(i, o));
                    }
                }
            }
            if all.is_empty() {
                // Fully-pruned group: keep an empty codebook.
                groups.push(OutputGroup {
                    index,
                    weights: vec![Vec::new(); g1 - g0],
                    codebook: Codebook::new(vec![0.0]),
                });
                continue;
            }
            let k = 1usize << quant_bits.min(12);
            let km = kmeans_1d(&all, k, 20);
            let codebook = Codebook::new(km.centroids);
            let per_out = all.len() / (g1 - g0);
            let weights: Vec<Vec<u16>> = (0..g1 - g0)
                .map(|oi| km.assignments[oi * per_out..(oi + 1) * per_out].to_vec())
                .collect();
            groups.push(OutputGroup {
                index,
                weights,
                codebook,
            });
        }
        Ok(SharedIndexLayer {
            name,
            n_in,
            n_out,
            group_size,
            quant_bits,
            groups,
        })
    }

    /// Fraction of surviving synapses.
    pub fn density(&self) -> f64 {
        let total = self.n_in * self.n_out;
        if total == 0 {
            return 0.0;
        }
        let surv: usize = self
            .groups
            .iter()
            .map(|g| g.survivors() * g.weights.len())
            .sum();
        surv as f64 / total as f64
    }

    /// Total surviving synapse count.
    pub fn surviving(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.survivors() * g.weights.len())
            .sum()
    }

    /// Index storage in bits: one bit per input position per *group*
    /// (shared across the group's outputs).
    pub fn index_bits(&self) -> usize {
        self.groups.len() * self.n_in
    }

    /// Compact weight storage in bytes at the dictionary width, plus the
    /// codebook LUTs (2 bytes per entry).
    pub fn weight_bytes(&self) -> usize {
        let dict_bits: usize = self.surviving() * usize::from(self.quant_bits);
        let luts: usize = self.groups.iter().map(|g| g.codebook.byte_size()).sum();
        dict_bits.div_ceil(8) + luts
    }

    /// Decodes the weight for `(group, lane, pos)` through the group's
    /// codebook — what the WDM does in hardware.
    pub fn decode_weight(&self, group: usize, lane: usize, pos: usize) -> f32 {
        let g = &self.groups[group];
        g.codebook.value(g.weights[lane][pos])
    }

    /// Reference computation: dense input (length `n_in`) to all outputs,
    /// using only surviving synapses. This is the functional ground truth
    /// the accelerator simulator is validated against.
    ///
    /// # Panics
    ///
    /// Panics when `input.len() != n_in`.
    pub fn output(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        let mut out = Vec::with_capacity(self.n_out);
        for g in &self.groups {
            let selected: Vec<usize> = g
                .index
                .iter()
                .enumerate()
                .filter(|(_, b)| **b)
                .map(|(i, _)| i)
                .collect();
            for lane in &g.weights {
                let mut acc = 0.0f32;
                for (pos, &i) in selected.iter().enumerate() {
                    acc += g.codebook.value(lane[pos]) * input[i];
                }
                out.push(acc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
    use cs_tensor::Shape;

    fn fc_layer(n_in: usize, n_out: usize, group: usize, density: f64) -> (Tensor, Mask) {
        let w = local_convergence(
            Shape::d2(n_in, n_out),
            &ConvergenceProfile::with_target_density(density).with_block(group),
            3,
        );
        let cfg = CoarseConfig::fc(group, group, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        (w, mask)
    }

    #[test]
    fn fc_roundtrip_matches_dense_reference() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let mut pruned = w.clone();
        mask.apply(&mut pruned);
        let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 8).unwrap();
        let input: Vec<f32> = (0..64).map(|i| ((i * 13) % 7) as f32 * 0.1).collect();
        let got = sil.output(&input);
        // Dense reference with pruned weights (quantization adds error).
        for (o, got_o) in got.iter().enumerate() {
            let mut want = 0.0f32;
            for (i, x) in input.iter().enumerate() {
                want += pruned.as_slice()[i * 32 + o] * x;
            }
            let tolerance = 0.05 * want.abs().max(0.5);
            assert!(
                (got_o - want).abs() < tolerance,
                "output {o}: got {got_o} want {want}"
            );
        }
    }

    #[test]
    fn group_shares_index() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 4).unwrap();
        assert_eq!(sil.groups.len(), 2);
        for g in &sil.groups {
            assert_eq!(g.weights.len(), 16);
            for lane in &g.weights {
                assert_eq!(lane.len(), g.survivors());
            }
        }
        // Index bits: 2 groups x 64 inputs, vs fine-grained 64x32.
        assert_eq!(sil.index_bits(), 128);
    }

    #[test]
    fn unshared_mask_rejected() {
        let w = Tensor::full(Shape::d2(8, 8), 1.0);
        // A mask that differs within an 8-wide output group.
        let mut bits = vec![true; 64];
        bits[3] = false; // (0,3) pruned but (0,0) kept
        let mask = Mask::from_bits(Shape::d2(8, 8), bits).unwrap();
        assert!(SharedIndexLayer::from_fc("bad", &w, &mask, 8, 4).is_err());
    }

    #[test]
    fn conv_lowering_matches_mask() {
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            9,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let sil = SharedIndexLayer::from_conv("conv", &w, &mask, 16, 8).unwrap();
        assert_eq!(sil.n_in, 2 * 9);
        assert_eq!(sil.n_out, 32);
        assert_eq!(sil.groups.len(), 2);
        assert!((sil.density() - mask.density()).abs() < 1e-9);
    }

    #[test]
    fn density_and_sizes() {
        let (w, mask) = fc_layer(128, 64, 16, 0.125);
        let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 4).unwrap();
        assert!((sil.density() - mask.density()).abs() < 1e-9);
        assert!(sil.weight_bytes() < 128 * 64 * 2 / 4);
    }

    #[test]
    fn fully_pruned_group_is_empty_but_valid() {
        let w = Tensor::full(Shape::d2(4, 4), 1.0);
        let mask = Mask::zeros_like(Shape::d2(4, 4));
        let sil = SharedIndexLayer::from_fc("empty", &w, &mask, 4, 4).unwrap();
        assert_eq!(sil.surviving(), 0);
        let out = sil.output(&[1.0; 4]);
        assert_eq!(out, vec![0.0; 4]);
    }
}
